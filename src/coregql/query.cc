#include "src/coregql/query.h"

#include <set>

#include "src/coregql/algebra.h"

namespace gqzoo {

namespace {

// Extracts the element bindings of a row (attr → element) for condition
// evaluation; path- and value-typed cells are not addressable by θ.
CoreBinding RowBinding(const CoreRelation& rel,
                       const std::vector<CoreCell>& row) {
  CoreBinding mu;
  for (size_t i = 0; i < rel.schema().size(); ++i) {
    if (std::holds_alternative<ObjectRef>(row[i])) {
      mu[rel.schema()[i]] = std::get<ObjectRef>(row[i]);
    }
  }
  return mu;
}

Result<CoreRelation> EvalPatternEntry(const PropertyGraph& g,
                                      const CoreMatchBlock::PatternEntry& entry,
                                      const CoreQueryEvalOptions& options,
                                      bool* truncated) {
  std::vector<std::string> fv = entry.pattern->FreeVariables();
  if (!entry.path_var.has_value()) {
    Result<std::vector<CorePairRow>> rows =
        EvalPatternPairs(g, *entry.pattern, options.path_options.cancel,
                         options.path_options.snapshot);
    if (!rows.ok()) return rows.error();
    CoreRelation rel(fv);
    for (const CorePairRow& row : rows.value()) {
      std::vector<CoreCell> cells;
      cells.reserve(fv.size());
      bool complete = true;
      for (const std::string& x : fv) {
        auto it = row.mu.find(x);
        if (it == row.mu.end()) {
          complete = false;  // cannot happen for validated patterns
          break;
        }
        cells.push_back(it->second);
      }
      if (complete) rel.AddRow(std::move(cells));
    }
    rel.Normalize(options.path_options.cancel);
    return rel;
  }
  // Path-binding entry: enumerative evaluation.
  Result<CorePathEvalResult> paths =
      EvalPatternPaths(g, *entry.pattern, options.path_options);
  if (!paths.ok()) return paths.error();
  if (paths.value().truncated) *truncated = true;
  std::vector<std::string> schema = {*entry.path_var};
  schema.insert(schema.end(), fv.begin(), fv.end());
  CoreRelation rel(std::move(schema));
  for (const CorePathRow& row : paths.value().rows) {
    std::vector<CoreCell> cells;
    cells.reserve(fv.size() + 1);
    cells.push_back(row.path);
    bool complete = true;
    for (const std::string& x : fv) {
      auto it = row.mu.find(x);
      if (it == row.mu.end()) {
        complete = false;
        break;
      }
      cells.push_back(it->second);
    }
    if (complete) rel.AddRow(std::move(cells));
  }
  rel.Normalize(options.path_options.cancel);
  return rel;
}

// The wcoj group of a block as a CoreRelation: one node-ref column per
// core variable, rows already sorted and duplicate-free (WcojEval emits
// them in elimination-order lexicographic order). Shares the crpq path's
// "crpq.wcoj.alloc" fail point.
CoreRelation WcojBlockRelation(const GraphSnapshot& snap,
                               const rel::WcojSpec& spec,
                               const QueryContext* ctx) {
  CoreRelation out(spec.vars);
  uint64_t tuple_bytes = spec.vars.size() * sizeof(CoreCell) + 32;
  std::vector<std::vector<NodeId>> rows =
      rel::WcojEval(snap, spec, tuple_bytes, ctx, "crpq.wcoj.alloc");
  for (const std::vector<NodeId>& row : rows) {
    std::vector<CoreCell> cells;
    cells.reserve(row.size());
    for (NodeId v : row) cells.emplace_back(ObjectRef::Node(v));
    out.AddRow(std::move(cells));
  }
  return out;
}

Result<CoreRelation> EvalBlock(const PropertyGraph& g,
                               const CoreMatchBlock& block,
                               const std::vector<size_t>* order,
                               const rel::WcojSpec* wcoj,
                               const CoreQueryEvalOptions& options,
                               bool* truncated) {
  if (block.patterns.empty()) return Error("MATCH block has no patterns");
  const QueryContext* ctx = options.path_options.cancel;
  // A planned wcoj group needs the snapshot's label slices; without one
  // the binary join path silently serves the whole block.
  if (options.path_options.snapshot == nullptr) wcoj = nullptr;
  std::vector<bool> in_core(block.patterns.size(), false);
  if (wcoj != nullptr) {
    for (size_t i : wcoj->conjuncts) {
      if (i < block.patterns.size()) in_core[i] = true;
    }
  }
  // All entries are evaluated in textual order first, so which error
  // surfaces never depends on the planner's join order (or on the wcoj
  // replacing some of them).
  std::vector<CoreRelation> entry_rels;
  entry_rels.reserve(block.patterns.size());
  for (const CoreMatchBlock::PatternEntry& entry : block.patterns) {
    Result<CoreRelation> rel = EvalPatternEntry(g, entry, options, truncated);
    if (!rel.ok()) return rel;
    entry_rels.push_back(std::move(rel).value());
  }
  bool use_order = order != nullptr && order->size() == block.patterns.size();
  CoreRelation joined;
  bool first = true;
  if (wcoj != nullptr) {
    joined = WcojBlockRelation(*options.path_options.snapshot, *wcoj, ctx);
    first = false;
  }
  for (size_t step = 0; step < entry_rels.size(); ++step) {
    size_t idx = use_order ? (*order)[step] : step;
    if (wcoj != nullptr && in_core[idx]) continue;  // served by the wcoj
    if (first) {
      joined = std::move(entry_rels[idx]);
      first = false;
    } else {
      joined = NaturalJoinRel(joined, entry_rels[idx], ctx, options.use_batch);
    }
  }
  if (block.where != nullptr) {
    joined = Select(
        joined,
        [&](const std::vector<CoreCell>& row) {
          return EvalCoreCondition(g, *block.where, RowBinding(joined, row));
        },
        ctx);
  }
  // RETURN: the Ω projection of Section 4.1.2.
  std::vector<std::string> out_schema;
  for (const CoreReturnItem& item : block.returns) {
    out_schema.push_back(item.Name());
  }
  CoreRelation out(std::move(out_schema));
  for (const auto& row : joined.rows()) {
    std::vector<CoreCell> cells;
    bool compatible = true;
    for (const CoreReturnItem& item : block.returns) {
      size_t i = joined.AttrIndex(item.var);
      if (i == SIZE_MAX) {
        return Error("RETURN references unknown variable '" + item.var + "'");
      }
      if (item.kind == CoreReturnItem::Kind::kVar) {
        cells.push_back(row[i]);
        continue;
      }
      // item.kind == kProp: µ must be compatible with Ω — ρ(µ(x), k) must
      // be defined, otherwise the row is dropped (no nulls).
      if (!std::holds_alternative<ObjectRef>(row[i])) {
        return Error("property access on non-element variable '" + item.var +
                     "'");
      }
      std::optional<Value> v =
          g.GetProperty(std::get<ObjectRef>(row[i]), item.key);
      if (!v.has_value()) {
        compatible = false;
        break;
      }
      cells.push_back(std::move(*v));
    }
    if (compatible) out.AddRow(std::move(cells));
  }
  out.Normalize(ctx);
  return out;
}

}  // namespace

Result<CoreQueryResult> EvalCoreGqlQuery(const PropertyGraph& g,
                                         const CoreGqlQuery& query,
                                         const CoreQueryEvalOptions& options) {
  if (query.blocks.empty()) return Error("query has no blocks");
  if (query.ops.size() + 1 != query.blocks.size()) {
    return Error("malformed query: block/operator count mismatch");
  }
  CoreQueryResult result;
  auto block_order = [&](size_t i) -> const std::vector<size_t>* {
    if (options.block_orders == nullptr ||
        i >= options.block_orders->size()) {
      return nullptr;
    }
    return &(*options.block_orders)[i];
  };
  auto block_wcoj = [&](size_t i) -> const rel::WcojSpec* {
    if (options.block_wcoj == nullptr || i >= options.block_wcoj->size() ||
        !(*options.block_wcoj)[i].has_value()) {
      return nullptr;
    }
    return &*(*options.block_wcoj)[i];
  };
  Result<CoreRelation> acc =
      EvalBlock(g, query.blocks[0], block_order(0), block_wcoj(0), options,
                &result.truncated);
  if (!acc.ok()) return acc.error();
  CoreRelation current = std::move(acc).value();
  for (size_t i = 0; i < query.ops.size(); ++i) {
    Result<CoreRelation> next = EvalBlock(g, query.blocks[i + 1],
                                          block_order(i + 1),
                                          block_wcoj(i + 1), options,
                                          &result.truncated);
    if (!next.ok()) return next.error();
    Result<CoreRelation> combined = [&]() {
      switch (query.ops[i]) {
        case CoreSetOp::kUnion:
          return UnionRel(current, next.value());
        case CoreSetOp::kExcept:
          return DifferenceRel(current, next.value());
        case CoreSetOp::kIntersect:
          return IntersectRel(current, next.value());
      }
      return Result<CoreRelation>(Error("unknown set operation"));
    }();
    if (!combined.ok()) return combined.error();
    current = std::move(combined).value();
  }
  result.relation = std::move(current);
  return result;
}

Result<CoreQueryResult> RunCoreGql(const PropertyGraph& g,
                                   const std::string& text,
                                   const CoreQueryEvalOptions& options) {
  Result<CoreGqlQuery> query = ParseCoreGqlQuery(text);
  if (!query.ok()) return query.error();
  return EvalCoreGqlQuery(g, query.value(), options);
}

}  // namespace gqzoo
