#include "src/coregql/relation.h"

#include <algorithm>
#include <cassert>

namespace gqzoo {

std::string CoreCellToString(const EdgeLabeledGraph& g, const CoreCell& cell) {
  if (std::holds_alternative<ObjectRef>(cell)) {
    return g.ObjectName(std::get<ObjectRef>(cell));
  }
  if (std::holds_alternative<Value>(cell)) {
    return std::get<Value>(cell).ToString();
  }
  return std::get<Path>(cell).ToString(g);
}

size_t CoreRelation::AttrIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == name) return i;
  }
  return SIZE_MAX;
}

void CoreRelation::AddRow(std::vector<CoreCell> row) {
  assert(row.size() == schema_.size());
  rows_.push_back(std::move(row));
}

void CoreRelation::Normalize() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

std::string CoreRelation::ToString(const EdgeLabeledGraph& g) const {
  std::string out;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema_[i];
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += CoreCellToString(g, row[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace gqzoo
