#include "src/coregql/relation.h"

#include <cassert>

namespace gqzoo {

std::string CoreCellToString(const EdgeLabeledGraph& g, const CoreCell& cell) {
  if (std::holds_alternative<ObjectRef>(cell)) {
    return std::string(g.ObjectName(std::get<ObjectRef>(cell)));
  }
  if (std::holds_alternative<Value>(cell)) {
    return std::get<Value>(cell).ToString();
  }
  return std::get<Path>(cell).ToString(g);
}

void CoreRelation::AddRow(std::vector<CoreCell> row) {
  assert(row.size() == table_.schema.size());
  table_.rows.push_back(std::move(row));
}

std::string CoreRelation::ToString(const EdgeLabeledGraph& g) const {
  std::string out;
  for (size_t i = 0; i < schema().size(); ++i) {
    if (i > 0) out += " | ";
    out += schema()[i];
  }
  out += "\n";
  for (const auto& row : rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += CoreCellToString(g, row[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace gqzoo
