#include "src/coregql/pattern_parser.h"

#include <cstdlib>

namespace gqzoo {

namespace {

bool IsCompareOp(const Token& t, CompareOp* op) {
  if (t.kind != Token::Kind::kPunct) return false;
  if (t.text == "=") {
    *op = CompareOp::kEq;
  } else if (t.text == "!=") {
    *op = CompareOp::kNe;
  } else if (t.text == "<") {
    *op = CompareOp::kLt;
  } else if (t.text == ">") {
    *op = CompareOp::kGt;
  } else if (t.text == "<=") {
    *op = CompareOp::kLe;
  } else if (t.text == ">=") {
    *op = CompareOp::kGe;
  } else {
    return false;
  }
  return true;
}

bool IsKeyword(const Token& t, const char* upper, const char* lower) {
  return t.IsIdent(upper) || t.IsIdent(lower);
}

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, size_t pos)
      : tokens_(tokens), pos_(pos) {}

  size_t pos() const { return pos_; }

  // pattern := seq ('|' seq)*
  Result<CorePatternPtr> ParsePattern() {
    Result<CorePatternPtr> lhs = ParseSeq();
    if (!lhs.ok()) return lhs;
    CorePatternPtr result = std::move(lhs).value();
    while (Cur().IsPunct("|")) {
      ++pos_;
      Result<CorePatternPtr> rhs = ParseSeq();
      if (!rhs.ok()) return rhs;
      result = CorePattern::Union(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  // cond := and (OR and)*
  Result<CoreCondPtr> ParseCondition() {
    Result<CoreCondPtr> lhs = ParseCondAnd();
    if (!lhs.ok()) return lhs;
    CoreCondPtr result = std::move(lhs).value();
    while (IsKeyword(Cur(), "OR", "or")) {
      ++pos_;
      Result<CoreCondPtr> rhs = ParseCondAnd();
      if (!rhs.ok()) return rhs;
      result = CoreCondition::Or(std::move(result), std::move(rhs).value());
    }
    return result;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t k = 1) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Error Err(const std::string& message) {
    return Error("pattern parse error at offset " +
                 std::to_string(Cur().offset) + " ('" + Cur().text +
                 "'): " + message);
  }

  bool StartsFactor() const {
    const Token& t = Cur();
    return t.IsPunct("(") || t.IsPunct("-") || t.IsPunct("->");
  }

  Result<CorePatternPtr> ParseSeq() {
    Result<CorePatternPtr> first = ParseFactor();
    if (!first.ok()) return first;
    CorePatternPtr result = std::move(first).value();
    while (StartsFactor()) {
      Result<CorePatternPtr> next = ParseFactor();
      if (!next.ok()) return next;
      result = CorePattern::Concat(std::move(result), std::move(next).value());
    }
    return result;
  }

  Result<CorePatternPtr> ParseFactor() {
    Result<CorePatternPtr> base = ParseBase();
    if (!base.ok()) return base;
    CorePatternPtr result = std::move(base).value();
    for (;;) {
      if (Cur().IsPunct("*")) {
        ++pos_;
        result = CorePattern::Repeat(std::move(result), 0,
                                     CorePattern::kUnbounded);
      } else if (Cur().IsPunct("+")) {
        ++pos_;
        result = CorePattern::Repeat(std::move(result), 1,
                                     CorePattern::kUnbounded);
      } else if (Cur().IsPunct("?")) {
        ++pos_;
        result = CorePattern::Repeat(std::move(result), 0, 1);
      } else if (Cur().IsPunct("{")) {
        ++pos_;
        if (Cur().kind != Token::Kind::kNumber) {
          return Err("expected number in repetition bounds");
        }
        size_t lo = std::strtoull(Cur().text.c_str(), nullptr, 10);
        size_t hi = lo;
        ++pos_;
        if (Cur().IsPunct(",")) {
          ++pos_;
          if (Cur().kind == Token::Kind::kNumber) {
            hi = std::strtoull(Cur().text.c_str(), nullptr, 10);
            ++pos_;
          } else {
            hi = CorePattern::kUnbounded;
          }
        }
        if (!Cur().IsPunct("}")) return Err("expected '}'");
        ++pos_;
        if (hi != CorePattern::kUnbounded && hi < lo) {
          return Err("bad repetition bounds");
        }
        result = CorePattern::Repeat(std::move(result), lo, hi);
      } else {
        break;
      }
    }
    return result;
  }

  Result<CorePatternPtr> ParseBase() {
    const Token& t = Cur();
    if (t.IsPunct("->")) {
      ++pos_;
      return CorePattern::Edge(std::nullopt, std::nullopt);
    }
    if (t.IsPunct("-")) return ParseBracketEdge();
    if (!t.IsPunct("(")) return Err("expected '(', '-[', or '->'");
    // '(': a node atom or a group.
    const Token& next = Peek();
    if (next.IsPunct(")")) {  // ()
      pos_ += 2;
      return CorePattern::Node(std::nullopt, std::nullopt);
    }
    if (next.IsPunct(":") ||
        (next.kind == Token::Kind::kIdent &&
         (Peek(2).IsPunct(")") || Peek(2).IsPunct(":")))) {
      return ParseNodeAtom();
    }
    // Group.
    ++pos_;
    Result<CorePatternPtr> inner = ParsePattern();
    if (!inner.ok()) return inner;
    CorePatternPtr result = std::move(inner).value();
    if (IsKeyword(Cur(), "WHERE", "where")) {
      ++pos_;
      Result<CoreCondPtr> cond = ParseCondition();
      if (!cond.ok()) return cond.error();
      result = CorePattern::Where(std::move(result), std::move(cond).value());
    }
    if (!Cur().IsPunct(")")) return Err("expected ')' after group");
    ++pos_;
    return result;
  }

  Result<CorePatternPtr> ParseNodeAtom() {
    ++pos_;  // '('
    std::optional<std::string> var;
    std::optional<std::string> label;
    if (Cur().kind == Token::Kind::kIdent) {
      var = Cur().text;
      ++pos_;
    }
    if (Cur().IsPunct(":")) {
      ++pos_;
      if (Cur().kind != Token::Kind::kIdent) return Err("expected label");
      label = Cur().text;
      ++pos_;
    }
    if (!Cur().IsPunct(")")) return Err("expected ')' in node atom");
    ++pos_;
    return CorePattern::Node(std::move(var), std::move(label));
  }

  // "-[" [var] [":" label] "]" "->"
  Result<CorePatternPtr> ParseBracketEdge() {
    ++pos_;  // '-'
    if (!Cur().IsPunct("[")) return Err("expected '[' after '-'");
    ++pos_;
    std::optional<std::string> var;
    std::optional<std::string> label;
    if (Cur().kind == Token::Kind::kIdent) {
      var = Cur().text;
      ++pos_;
    }
    if (Cur().IsPunct(":")) {
      ++pos_;
      if (Cur().kind != Token::Kind::kIdent) return Err("expected label");
      label = Cur().text;
      ++pos_;
    }
    if (!Cur().IsPunct("]")) return Err("expected ']' in edge atom");
    ++pos_;
    if (!Cur().IsPunct("->")) return Err("expected '->' after edge atom");
    ++pos_;
    return CorePattern::Edge(std::move(var), std::move(label));
  }

  // --- Conditions ---

  Result<CoreCondPtr> ParseCondAnd() {
    Result<CoreCondPtr> lhs = ParseCondUnary();
    if (!lhs.ok()) return lhs;
    CoreCondPtr result = std::move(lhs).value();
    while (IsKeyword(Cur(), "AND", "and")) {
      ++pos_;
      Result<CoreCondPtr> rhs = ParseCondUnary();
      if (!rhs.ok()) return rhs;
      result = CoreCondition::And(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  Result<CoreCondPtr> ParseCondUnary() {
    if (IsKeyword(Cur(), "NOT", "not")) {
      ++pos_;
      Result<CoreCondPtr> inner = ParseCondUnary();
      if (!inner.ok()) return inner;
      return CoreCondition::Not(std::move(inner).value());
    }
    if (Cur().IsPunct("(")) {
      ++pos_;
      Result<CoreCondPtr> inner = ParseCondition();
      if (!inner.ok()) return inner;
      if (!Cur().IsPunct(")")) return Err("expected ')' in condition");
      ++pos_;
      return inner;
    }
    return ParseCondAtom();
  }

  Result<CoreCondPtr> ParseCondAtom() {
    if (Cur().kind != Token::Kind::kIdent) {
      return Err("expected condition");
    }
    // label(x) = L
    if (IsKeyword(Cur(), "LABEL", "label") && Peek().IsPunct("(")) {
      pos_ += 2;
      if (Cur().kind != Token::Kind::kIdent) return Err("expected variable");
      std::string var = Cur().text;
      ++pos_;
      if (!Cur().IsPunct(")")) return Err("expected ')'");
      ++pos_;
      if (!Cur().IsPunct("=")) return Err("expected '=' after label(x)");
      ++pos_;
      if (Cur().kind != Token::Kind::kIdent &&
          Cur().kind != Token::Kind::kString) {
        return Err("expected label name");
      }
      std::string label = Cur().text;
      ++pos_;
      return CoreCondition::LabelIs(std::move(var), std::move(label));
    }
    std::string var = Cur().text;
    ++pos_;
    // x:Label
    if (Cur().IsPunct(":")) {
      ++pos_;
      if (Cur().kind != Token::Kind::kIdent) return Err("expected label");
      std::string label = Cur().text;
      ++pos_;
      return CoreCondition::LabelIs(std::move(var), std::move(label));
    }
    if (!Cur().IsPunct(".")) return Err("expected '.' or ':' after variable");
    ++pos_;
    if (Cur().kind != Token::Kind::kIdent) return Err("expected property");
    std::string key = Cur().text;
    ++pos_;
    CompareOp op;
    if (!IsCompareOp(Cur(), &op)) return Err("expected comparison operator");
    ++pos_;
    // Right-hand side: y.k | constant.
    if (Cur().kind == Token::Kind::kIdent && Peek().IsPunct(".")) {
      std::string var2 = Cur().text;
      pos_ += 2;
      if (Cur().kind != Token::Kind::kIdent) return Err("expected property");
      std::string key2 = Cur().text;
      ++pos_;
      return CoreCondition::CompareProps(std::move(var), std::move(key), op,
                                         std::move(var2), std::move(key2));
    }
    Result<Value> constant = ParseConstant();
    if (!constant.ok()) return constant.error();
    return CoreCondition::CompareConst(std::move(var), std::move(key), op,
                                       std::move(constant).value());
  }

  Result<Value> ParseConstant() {
    const Token& t = Cur();
    if (t.kind == Token::Kind::kString) {
      ++pos_;
      return Value(t.text);
    }
    if (t.IsIdent("true") || t.IsIdent("false")) {
      ++pos_;
      return Value(t.text == "true");
    }
    bool negative = t.IsPunct("-");
    if (negative) ++pos_;
    if (Cur().kind != Token::Kind::kNumber) {
      return Err("expected constant value");
    }
    const std::string& text = Cur().text;
    ++pos_;
    if (text.find('.') != std::string::npos ||
        text.find('e') != std::string::npos ||
        text.find('E') != std::string::npos) {
      double v = std::strtod(text.c_str(), nullptr);
      return Value(negative ? -v : v);
    }
    int64_t v = std::strtoll(text.c_str(), nullptr, 10);
    return Value(negative ? -v : v);
  }

  const std::vector<Token>& tokens_;
  size_t pos_;
};

}  // namespace

Result<CorePatternPtr> ParseCorePattern(const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.error();
  size_t pos = 0;
  Result<CorePatternPtr> p = ParseCorePatternTokens(tokens.value(), &pos);
  if (!p.ok()) return p;
  if (tokens.value()[pos].kind != Token::Kind::kEnd) {
    return Error("pattern parse error: trailing input at offset " +
                 std::to_string(tokens.value()[pos].offset));
  }
  Result<bool> valid = p.value()->Validate();
  if (!valid.ok()) return valid.error();
  return p;
}

Result<CorePatternPtr> ParseCorePatternTokens(const std::vector<Token>& tokens,
                                              size_t* pos) {
  Parser parser(tokens, *pos);
  Result<CorePatternPtr> result = parser.ParsePattern();
  if (result.ok()) *pos = parser.pos();
  return result;
}

Result<CoreCondPtr> ParseCoreCondition(const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.error();
  size_t pos = 0;
  Result<CoreCondPtr> c = ParseCoreConditionTokens(tokens.value(), &pos);
  if (!c.ok()) return c;
  if (tokens.value()[pos].kind != Token::Kind::kEnd) {
    return Error("condition parse error: trailing input");
  }
  return c;
}

Result<CoreCondPtr> ParseCoreConditionTokens(const std::vector<Token>& tokens,
                                             size_t* pos) {
  Parser parser(tokens, *pos);
  Result<CoreCondPtr> result = parser.ParseCondition();
  if (result.ok()) *pos = parser.pos();
  return result;
}

}  // namespace gqzoo
