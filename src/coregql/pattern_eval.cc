#include "src/coregql/pattern_eval.h"

#include <algorithm>
#include <set>

namespace gqzoo {

namespace {

// Looks up ρ(µ(x), k); nullopt when x is unbound or the property undefined.
std::optional<Value> PropOf(const PropertyGraph& g, const CoreBinding& mu,
                            const std::string& var, const std::string& key) {
  auto it = mu.find(var);
  if (it == mu.end()) return std::nullopt;
  return g.GetProperty(it->second, key);
}

}  // namespace

bool EvalCoreCondition(const PropertyGraph& g, const CoreCondition& cond,
                       const CoreBinding& mu) {
  switch (cond.kind()) {
    case CoreCondition::Kind::kCompareProps: {
      std::optional<Value> lhs = PropOf(g, mu, cond.var1(), cond.key1());
      std::optional<Value> rhs = PropOf(g, mu, cond.var2(), cond.key2());
      if (!lhs.has_value() || !rhs.has_value()) return false;
      return Value::Compare(*lhs, cond.op(), *rhs);
    }
    case CoreCondition::Kind::kCompareConst: {
      std::optional<Value> lhs = PropOf(g, mu, cond.var1(), cond.key1());
      if (!lhs.has_value()) return false;
      return Value::Compare(*lhs, cond.op(), cond.constant());
    }
    case CoreCondition::Kind::kLabelIs: {
      auto it = mu.find(cond.var1());
      if (it == mu.end()) return false;
      std::optional<LabelId> label = g.FindLabel(cond.label());
      return label.has_value() && g.ObjectLabel(it->second) == *label;
    }
    case CoreCondition::Kind::kAnd:
      return EvalCoreCondition(g, *cond.left(), mu) &&
             EvalCoreCondition(g, *cond.right(), mu);
    case CoreCondition::Kind::kOr:
      return EvalCoreCondition(g, *cond.left(), mu) ||
             EvalCoreCondition(g, *cond.right(), mu);
    case CoreCondition::Kind::kNot:
      return !EvalCoreCondition(g, *cond.child(), mu);
  }
  return false;
}

namespace {

// Are µ1 and µ2 compatible (µ1 ~ µ2), and if so what is µ1 ⋈ µ2?
bool MergeBindings(const CoreBinding& a, const CoreBinding& b,
                   CoreBinding* out) {
  *out = a;
  for (const auto& [var, obj] : b) {
    auto [it, inserted] = out->try_emplace(var, obj);
    if (!inserted && it->second != obj) return false;
  }
  return true;
}

bool LabelMatches(const PropertyGraph& g, ObjectRef o,
                  const std::optional<std::string>& label) {
  if (!label.has_value()) return true;
  std::optional<LabelId> l = g.FindLabel(*label);
  return l.has_value() && g.ObjectLabel(o) == *l;
}

void SortUnique(std::vector<CorePairRow>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

// Endpoint pairs reachable by composing the pair relation `step` between
// lo and hi times (hi may be kUnbounded). j = 0 contributes the identity
// over all nodes ([[π]]^0 in Figure 4).
std::vector<std::pair<NodeId, NodeId>> ComposeSteps(
    const PropertyGraph& g, const std::set<std::pair<NodeId, NodeId>>& step,
    size_t lo, size_t hi, const CancellationToken* cancel) {
  const size_t n = g.NumNodes();
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& [u, v] : step) adj[u].push_back(v);

  std::set<std::pair<NodeId, NodeId>> result;
  for (NodeId u = 0; u < n; ++u) {
    if (ShouldStop(cancel)) break;
    // BFS layers from u; layer[j] = nodes reachable in exactly j steps.
    // Accumulate nodes whose step count can land in [lo, hi]. To decide
    // "exactly j" membership without exponential bookkeeping we track, for
    // every node, the set of step counts ≤ cutoff at which it is reachable;
    // counts beyond n² can be folded because reachability with ≥ n² steps
    // implies reachability with some count in [j, j + period] — instead we
    // simply iterate layers up to min(hi, lo + n²) and additionally, for
    // unbounded hi, saturate: once a node is seen at some count ≥ lo it is
    // in the answer.
    size_t cutoff = hi == CorePattern::kUnbounded
                        ? lo + n * n + 1
                        : std::min(hi, lo + n * n + 1);
    std::set<NodeId> current = {u};
    if (lo == 0) result.insert({u, u});
    for (size_t j = 1; j <= cutoff && !current.empty(); ++j) {
      std::set<NodeId> next;
      for (NodeId x : current) {
        for (NodeId y : adj[x]) next.insert(y);
      }
      if (j >= lo) {
        for (NodeId y : next) result.insert({u, y});
      }
      if (next == current && j >= lo) break;  // fixpoint layer
      current = std::move(next);
    }
  }
  return std::vector<std::pair<NodeId, NodeId>>(result.begin(), result.end());
}

Result<std::vector<CorePairRow>> EvalPairsRec(const PropertyGraph& g,
                                              const GraphSnapshot* snap,
                                              const CorePattern& p,
                                              const CancellationToken* cancel) {
  if (ShouldStop(cancel)) return std::vector<CorePairRow>{};
  switch (p.kind()) {
    case CorePattern::Kind::kNode: {
      std::vector<CorePairRow> rows;
      auto emit = [&](NodeId n) {
        CoreBinding mu;
        if (p.var().has_value()) mu[*p.var()] = ObjectRef::Node(n);
        rows.push_back({n, n, std::move(mu)});
      };
      if (snap != nullptr && snap->has_node_labels() &&
          p.label().has_value()) {
        // Index lookup instead of an all-nodes scan; ids ascend, matching
        // the scan's emission order.
        std::optional<LabelId> l = g.FindLabel(*p.label());
        if (l.has_value()) {
          for (NodeId n : snap->NodesWithLabel(*l)) emit(n);
        }
        return rows;
      }
      for (NodeId n = 0; n < g.NumNodes(); ++n) {
        if (!LabelMatches(g, ObjectRef::Node(n), p.label())) continue;
        emit(n);
      }
      return rows;
    }
    case CorePattern::Kind::kEdge: {
      std::vector<CorePairRow> rows;
      auto emit = [&](EdgeId e) {
        CoreBinding mu;
        if (p.var().has_value()) mu[*p.var()] = ObjectRef::Edge(e);
        rows.push_back({g.Src(e), g.Tgt(e), std::move(mu)});
      };
      if (snap != nullptr && p.label().has_value()) {
        std::optional<LabelId> l = g.FindLabel(*p.label());
        if (l.has_value()) {
          // Graph-wide label slice, sorted by edge id like the scan.
          for (const GraphSnapshot::Hop& hop : snap->EdgesWithLabel(*l)) {
            emit(hop.edge);
          }
        }
        return rows;
      }
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        if (!LabelMatches(g, ObjectRef::Edge(e), p.label())) continue;
        emit(e);
      }
      return rows;
    }
    case CorePattern::Kind::kConcat: {
      Result<std::vector<CorePairRow>> lhs =
          EvalPairsRec(g, snap, *p.left(), cancel);
      if (!lhs.ok()) return lhs;
      Result<std::vector<CorePairRow>> rhs =
          EvalPairsRec(g, snap, *p.right(), cancel);
      if (!rhs.ok()) return rhs;
      // Index the right-hand rows by source node.
      std::vector<std::vector<const CorePairRow*>> by_src(g.NumNodes());
      for (const CorePairRow& r : rhs.value()) by_src[r.src].push_back(&r);
      std::vector<CorePairRow> rows;
      for (const CorePairRow& l : lhs.value()) {
        if (ShouldStop(cancel)) break;
        for (const CorePairRow* r : by_src[l.tgt]) {
          CoreBinding merged;
          if (!MergeBindings(l.mu, r->mu, &merged)) continue;
          if (!ChargeMemory(cancel, 48 + merged.size() * 48)) break;
          rows.push_back({l.src, r->tgt, std::move(merged)});
        }
      }
      SortUnique(&rows);
      return rows;
    }
    case CorePattern::Kind::kUnion: {
      Result<std::vector<CorePairRow>> lhs =
          EvalPairsRec(g, snap, *p.left(), cancel);
      if (!lhs.ok()) return lhs;
      Result<std::vector<CorePairRow>> rhs =
          EvalPairsRec(g, snap, *p.right(), cancel);
      if (!rhs.ok()) return rhs;
      std::vector<CorePairRow> rows = std::move(lhs).value();
      rows.insert(rows.end(), rhs.value().begin(), rhs.value().end());
      SortUnique(&rows);
      return rows;
    }
    case CorePattern::Kind::kRepeat: {
      Result<std::vector<CorePairRow>> inner =
          EvalPairsRec(g, snap, *p.child(), cancel);
      if (!inner.ok()) return inner;
      std::set<std::pair<NodeId, NodeId>> step;
      for (const CorePairRow& r : inner.value()) step.insert({r.src, r.tgt});
      std::vector<CorePairRow> rows;
      for (const auto& [u, v] : ComposeSteps(g, step, p.lo(), p.hi(), cancel)) {
        rows.push_back({u, v, {}});  // µ∅: repetition erases bindings
      }
      return rows;
    }
    case CorePattern::Kind::kCondition: {
      Result<std::vector<CorePairRow>> inner =
          EvalPairsRec(g, snap, *p.child(), cancel);
      if (!inner.ok()) return inner;
      std::vector<CorePairRow> rows;
      for (CorePairRow& r : inner.value()) {
        if (EvalCoreCondition(g, *p.cond(), r.mu)) {
          rows.push_back(std::move(r));
        }
      }
      return rows;
    }
  }
  return Error("unknown pattern kind");
}

void SortUniquePaths(std::vector<CorePathRow>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

struct PathEvalContext {
  const PropertyGraph& g;
  const CorePathEvalOptions& options;
  bool truncated = false;
};

Result<std::vector<CorePathRow>> EvalPathsRec(PathEvalContext* ctx,
                                              const CorePattern& p) {
  const PropertyGraph& g = ctx->g;
  if (ShouldStop(ctx->options.cancel)) {
    ctx->truncated = true;
    return std::vector<CorePathRow>{};
  }
  const GraphSnapshot* snap = ctx->options.snapshot;
  switch (p.kind()) {
    case CorePattern::Kind::kNode: {
      std::vector<CorePathRow> rows;
      auto emit = [&](NodeId n) {
        CoreBinding mu;
        if (p.var().has_value()) mu[*p.var()] = ObjectRef::Node(n);
        rows.push_back({Path::OfNode(n), std::move(mu)});
      };
      if (snap != nullptr && snap->has_node_labels() &&
          p.label().has_value()) {
        std::optional<LabelId> l = g.FindLabel(*p.label());
        if (l.has_value()) {
          for (NodeId n : snap->NodesWithLabel(*l)) emit(n);
        }
        return rows;
      }
      for (NodeId n = 0; n < g.NumNodes(); ++n) {
        if (!LabelMatches(g, ObjectRef::Node(n), p.label())) continue;
        emit(n);
      }
      return rows;
    }
    case CorePattern::Kind::kEdge: {
      std::vector<CorePathRow> rows;
      auto emit = [&](EdgeId e) {
        ObjectRef o = ObjectRef::Edge(e);
        CoreBinding mu;
        if (p.var().has_value()) mu[*p.var()] = o;
        rows.push_back({Path::MakeUnchecked({ObjectRef::Node(g.Src(e)), o,
                                             ObjectRef::Node(g.Tgt(e))}),
                        std::move(mu)});
      };
      if (snap != nullptr && p.label().has_value()) {
        std::optional<LabelId> l = g.FindLabel(*p.label());
        if (l.has_value()) {
          for (const GraphSnapshot::Hop& hop : snap->EdgesWithLabel(*l)) {
            emit(hop.edge);
          }
        }
        return rows;
      }
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        if (!LabelMatches(g, ObjectRef::Edge(e), p.label())) continue;
        emit(e);
      }
      return rows;
    }
    case CorePattern::Kind::kConcat: {
      Result<std::vector<CorePathRow>> lhs = EvalPathsRec(ctx, *p.left());
      if (!lhs.ok()) return lhs;
      Result<std::vector<CorePathRow>> rhs = EvalPathsRec(ctx, *p.right());
      if (!rhs.ok()) return rhs;
      std::vector<std::vector<const CorePathRow*>> by_src(g.NumNodes());
      for (const CorePathRow& r : rhs.value()) {
        by_src[r.path.Src(g.skeleton())].push_back(&r);
      }
      std::vector<CorePathRow> rows;
      for (const CorePathRow& l : lhs.value()) {
        if (ShouldStop(ctx->options.cancel)) {
          ctx->truncated = true;
          break;
        }
        for (const CorePathRow* r : by_src[l.path.Tgt(g.skeleton())]) {
          if (l.path.Length() + r->path.Length() >
              ctx->options.max_path_length) {
            ctx->truncated = true;
            continue;
          }
          CoreBinding merged;
          if (!MergeBindings(l.mu, r->mu, &merged)) continue;
          Result<Path> joined = Path::Concat(g.skeleton(), l.path, r->path);
          if (!joined.ok()) continue;
          if (!ChargeMemory(ctx->options.cancel,
                            96 + joined.value().objects().size() *
                                     sizeof(ObjectRef))) {
            ctx->truncated = true;
            break;
          }
          rows.push_back({std::move(joined).value(), std::move(merged)});
          if (rows.size() > ctx->options.max_results) {
            ctx->truncated = true;
            SortUniquePaths(&rows);
            if (rows.size() > ctx->options.max_results) {
              rows.resize(ctx->options.max_results);
              return rows;
            }
          }
        }
      }
      SortUniquePaths(&rows);
      return rows;
    }
    case CorePattern::Kind::kUnion: {
      Result<std::vector<CorePathRow>> lhs = EvalPathsRec(ctx, *p.left());
      if (!lhs.ok()) return lhs;
      Result<std::vector<CorePathRow>> rhs = EvalPathsRec(ctx, *p.right());
      if (!rhs.ok()) return rhs;
      std::vector<CorePathRow> rows = std::move(lhs).value();
      rows.insert(rows.end(), rhs.value().begin(), rhs.value().end());
      SortUniquePaths(&rows);
      return rows;
    }
    case CorePattern::Kind::kRepeat: {
      Result<std::vector<CorePathRow>> inner = EvalPathsRec(ctx, *p.child());
      if (!inner.ok()) return inner;
      // Strip bindings: [[π]]^j has µ∅.
      std::vector<std::vector<const CorePathRow*>> by_src(g.NumNodes());
      for (const CorePathRow& r : inner.value()) {
        by_src[r.path.Src(g.skeleton())].push_back(&r);
      }
      std::set<Path> result_paths;
      // Layer j = 0: single-node paths over all nodes.
      std::set<Path> current;
      for (NodeId n = 0; n < g.NumNodes(); ++n) current.insert(Path::OfNode(n));
      if (p.lo() == 0) result_paths = current;
      for (size_t j = 1; j <= p.hi(); ++j) {
        std::set<Path> next;
        for (const Path& prefix : current) {
          if (ShouldStop(ctx->options.cancel)) {
            ctx->truncated = true;
            break;
          }
          for (const CorePathRow* r : by_src[prefix.Tgt(g.skeleton())]) {
            if (prefix.Length() + r->path.Length() >
                ctx->options.max_path_length) {
              ctx->truncated = true;
              continue;
            }
            Result<Path> joined =
                Path::Concat(g.skeleton(), prefix, r->path);
            if (!joined.ok()) continue;
            if (!ChargeMemory(ctx->options.cancel,
                              96 + joined.value().objects().size() *
                                       sizeof(ObjectRef))) {
              ctx->truncated = true;
              break;
            }
            next.insert(std::move(joined).value());
          }
        }
        if (j >= p.lo()) {
          result_paths.insert(next.begin(), next.end());
        }
        if (next.empty()) break;
        if (next == current) break;  // fixpoint (all-zero-length iteration)
        current = std::move(next);
        if (result_paths.size() > ctx->options.max_results) {
          ctx->truncated = true;
          break;
        }
      }
      std::vector<CorePathRow> rows;
      for (const Path& path : result_paths) rows.push_back({path, {}});
      return rows;
    }
    case CorePattern::Kind::kCondition: {
      Result<std::vector<CorePathRow>> inner = EvalPathsRec(ctx, *p.child());
      if (!inner.ok()) return inner;
      std::vector<CorePathRow> rows;
      for (CorePathRow& r : inner.value()) {
        if (EvalCoreCondition(g, *p.cond(), r.mu)) {
          rows.push_back(std::move(r));
        }
      }
      return rows;
    }
  }
  return Error("unknown pattern kind");
}

}  // namespace

Result<std::vector<CorePairRow>> EvalPatternPairs(
    const PropertyGraph& g, const CorePattern& pattern,
    const CancellationToken* cancel, const GraphSnapshot* snapshot) {
  Result<bool> valid = pattern.Validate();
  if (!valid.ok()) return valid.error();
  Result<std::vector<CorePairRow>> rows =
      EvalPairsRec(g, snapshot, pattern, cancel);
  if (!rows.ok()) return rows;
  std::vector<CorePairRow> out = std::move(rows).value();
  // A partial result left by a trip is discarded by the caller; skip the
  // final ordering pass (same contract as the RPQ evaluator).
  if (!HasStopped(cancel)) SortUnique(&out);
  return out;
}

Result<CorePathEvalResult> EvalPatternPaths(const PropertyGraph& g,
                                            const CorePattern& pattern,
                                            const CorePathEvalOptions& options) {
  Result<bool> valid = pattern.Validate();
  if (!valid.ok()) return valid.error();
  PathEvalContext ctx{g, options};
  Result<std::vector<CorePathRow>> rows = EvalPathsRec(&ctx, pattern);
  if (!rows.ok()) return rows.error();
  CorePathEvalResult result;
  result.rows = std::move(rows).value();
  // Skip the final ordering pass only when the *context tripped* (result
  // to be discarded) — a merely truncated enumeration is still returned
  // to the user and stays sorted.
  if (!HasStopped(options.cancel)) SortUniquePaths(&result.rows);
  result.truncated = ctx.truncated;
  return result;
}

}  // namespace gqzoo
