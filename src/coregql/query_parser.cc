#include "src/coregql/query.h"

#include "src/coregql/pattern_parser.h"
#include "src/regex/lexer.h"

namespace gqzoo {

namespace {

bool IsKw(const Token& t, const char* upper, const char* lower) {
  return t.IsIdent(upper) || t.IsIdent(lower);
}

Error ErrAt(const Token& t, const std::string& message) {
  return Error("query parse error at offset " + std::to_string(t.offset) +
               " ('" + t.text + "'): " + message);
}

class QueryParser {
 public:
  explicit QueryParser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<CoreGqlQuery> Parse() {
    CoreGqlQuery query;
    Result<CoreMatchBlock> block = ParseBlock();
    if (!block.ok()) return block.error();
    query.blocks.push_back(std::move(block).value());
    while (tokens_[pos_].kind != Token::Kind::kEnd) {
      CoreSetOp op;
      if (IsKw(Cur(), "UNION", "union")) {
        op = CoreSetOp::kUnion;
      } else if (IsKw(Cur(), "EXCEPT", "except")) {
        op = CoreSetOp::kExcept;
      } else if (IsKw(Cur(), "INTERSECT", "intersect")) {
        op = CoreSetOp::kIntersect;
      } else {
        return ErrAt(Cur(), "expected UNION, EXCEPT, INTERSECT, or end");
      }
      ++pos_;
      Result<CoreMatchBlock> next = ParseBlock();
      if (!next.ok()) return next.error();
      query.ops.push_back(op);
      query.blocks.push_back(std::move(next).value());
    }
    return query;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t k = 1) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Result<CoreMatchBlock> ParseBlock() {
    CoreMatchBlock block;
    if (!IsKw(Cur(), "MATCH", "match")) {
      return ErrAt(Cur(), "expected MATCH");
    }
    ++pos_;
    // Patterns.
    while (true) {
      CoreMatchBlock::PatternEntry entry;
      if (Cur().kind == Token::Kind::kIdent && Peek().IsPunct("=")) {
        entry.path_var = Cur().text;
        pos_ += 2;
      }
      Result<CorePatternPtr> pattern = ParseCorePatternTokens(tokens_, &pos_);
      if (!pattern.ok()) return pattern.error();
      Result<bool> valid = pattern.value()->Validate();
      if (!valid.ok()) return valid.error();
      entry.pattern = std::move(pattern).value();
      block.patterns.push_back(std::move(entry));
      if (Cur().IsPunct(",")) {
        ++pos_;
        continue;
      }
      break;
    }
    // Optional WHERE.
    if (IsKw(Cur(), "WHERE", "where")) {
      ++pos_;
      Result<CoreCondPtr> cond = ParseCoreConditionTokens(tokens_, &pos_);
      if (!cond.ok()) return cond.error();
      block.where = std::move(cond).value();
    }
    // RETURN.
    if (!IsKw(Cur(), "RETURN", "return")) {
      return ErrAt(Cur(), "expected RETURN");
    }
    ++pos_;
    while (true) {
      if (Cur().kind != Token::Kind::kIdent) {
        return ErrAt(Cur(), "expected RETURN item");
      }
      CoreReturnItem item;
      item.var = Cur().text;
      ++pos_;
      if (Cur().IsPunct(".")) {
        ++pos_;
        if (Cur().kind != Token::Kind::kIdent) {
          return ErrAt(Cur(), "expected property after '.'");
        }
        item.kind = CoreReturnItem::Kind::kProp;
        item.key = Cur().text;
        ++pos_;
      }
      block.returns.push_back(std::move(item));
      if (Cur().IsPunct(",")) {
        ++pos_;
        continue;
      }
      break;
    }
    return block;
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<CoreGqlQuery> ParseCoreGqlQuery(const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.error();
  QueryParser parser(tokens.value());
  return parser.Parse();
}

}  // namespace gqzoo
