#ifndef GQZOO_COREGQL_GROUP_EVAL_H_
#define GQZOO_COREGQL_GROUP_EVAL_H_

#include <map>
#include <memory>

#include "src/coregql/pattern.h"
#include "src/coregql/pattern_eval.h"
#include "src/graph/path.h"
#include "src/util/result.h"

namespace gqzoo {

/// GQL's *group variable* semantics (Examples 1–2 of the paper): the same
/// syntax as CoreGQL patterns, but instead of erasing variables under
/// repetition (CoreGQL's first-normal-form discipline), a repetition turns
/// every inner variable into a group variable that collects one value per
/// iteration into a list — nested repetitions produce nested lists, the
/// "monsters" of Figure 1.
///
/// This module exists to make the paper's Examples 1 and 2 executable
/// exactly as GQL behaves, so the contrast with l-RPQ list variables
/// ([[R]]² = [[R·R]], no anomaly) is demonstrable. See group_eval tests.

/// A GQL value: a graph element, or a (possibly nested) list of values.
class GqlValue {
 public:
  GqlValue() = default;
  explicit GqlValue(ObjectRef element) : element_(element) {}
  explicit GqlValue(std::vector<GqlValue> list)
      : is_list_(true), list_(std::move(list)) {}

  bool is_element() const { return !is_list_; }
  bool is_list() const { return is_list_; }
  ObjectRef element() const { return element_; }
  const std::vector<GqlValue>& list() const { return list_; }

  bool operator==(const GqlValue& o) const {
    if (is_list_ != o.is_list_) return false;
    return is_list_ ? list_ == o.list_ : element_ == o.element_;
  }
  bool operator<(const GqlValue& o) const {
    if (is_list_ != o.is_list_) return is_list_ < o.is_list_;
    if (is_list_) return list_ < o.list_;
    return element_ < o.element_;
  }

  /// "a1" for elements, "list(a1, list(t1, t2))" for lists.
  std::string ToString(const EdgeLabeledGraph& g) const;

 private:
  bool is_list_ = false;
  ObjectRef element_{ObjectKind::kNode, 0};
  std::vector<GqlValue> list_;
};

using GqlBinding = std::map<std::string, GqlValue>;

struct GqlPathRow {
  Path path;
  GqlBinding mu;

  bool operator==(const GqlPathRow& o) const {
    return path == o.path && mu == o.mu;
  }
  bool operator<(const GqlPathRow& o) const {
    if (path != o.path) return path < o.path;
    return mu < o.mu;
  }
};

struct GqlEvalResult {
  std::vector<GqlPathRow> rows;
  bool truncated = false;
};

/// Evaluates `pattern` under group-variable semantics:
///  * atoms bind singleton elements;
///  * concatenation joins variables that are singletons on both sides
///    (same element required) and fails with an error if a variable is a
///    group on one side — GQL's "same variable in incompatible degrees"
///    restriction;
///  * π^{n..m} turns every variable of π into a group collecting one value
///    per iteration (lists may nest);
///  * conditions see singleton variables only (a θ over a group variable
///    is simply false, like an unbound variable).
///
/// Enumerative and bounded like EvalPatternPaths.
Result<GqlEvalResult> EvalGqlGroupPattern(
    const PropertyGraph& g, const CorePattern& pattern,
    const CorePathEvalOptions& options = {});

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_GROUP_EVAL_H_
