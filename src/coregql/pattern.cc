#include "src/coregql/pattern.h"

#include <algorithm>
#include <set>

namespace gqzoo {

namespace {

struct CondAccess : CoreCondition {};
struct PatternAccess : CorePattern {};

template <typename T, typename Base>
std::shared_ptr<T> MakeMutable() {
  return std::make_shared<T>();
}

}  // namespace

// --- CoreCondition -----------------------------------------------------

#define GQZOO_MUTABLE_COND(ptr) auto ptr = std::make_shared<CondAccess>()

CoreCondPtr CoreCondition::CompareProps(std::string x, std::string k,
                                        CompareOp op, std::string y,
                                        std::string k2) {
  GQZOO_MUTABLE_COND(c);
  c->kind_ = Kind::kCompareProps;
  c->var1_ = std::move(x);
  c->key1_ = std::move(k);
  c->op_ = op;
  c->var2_ = std::move(y);
  c->key2_ = std::move(k2);
  return c;
}

CoreCondPtr CoreCondition::CompareConst(std::string x, std::string k,
                                        CompareOp op, Value v) {
  GQZOO_MUTABLE_COND(c);
  c->kind_ = Kind::kCompareConst;
  c->var1_ = std::move(x);
  c->key1_ = std::move(k);
  c->op_ = op;
  c->constant_ = std::move(v);
  return c;
}

CoreCondPtr CoreCondition::LabelIs(std::string x, std::string label) {
  GQZOO_MUTABLE_COND(c);
  c->kind_ = Kind::kLabelIs;
  c->var1_ = std::move(x);
  c->label_ = std::move(label);
  return c;
}

CoreCondPtr CoreCondition::And(CoreCondPtr a, CoreCondPtr b) {
  GQZOO_MUTABLE_COND(c);
  c->kind_ = Kind::kAnd;
  c->children_ = {std::move(a), std::move(b)};
  return c;
}

CoreCondPtr CoreCondition::Or(CoreCondPtr a, CoreCondPtr b) {
  GQZOO_MUTABLE_COND(c);
  c->kind_ = Kind::kOr;
  c->children_ = {std::move(a), std::move(b)};
  return c;
}

CoreCondPtr CoreCondition::Not(CoreCondPtr a) {
  GQZOO_MUTABLE_COND(c);
  c->kind_ = Kind::kNot;
  c->children_ = {std::move(a)};
  return c;
}

std::string CoreCondition::ToString() const {
  switch (kind_) {
    case Kind::kCompareProps:
      return var1_ + "." + key1_ + " " + CompareOpName(op_) + " " + var2_ +
             "." + key2_;
    case Kind::kCompareConst:
      return var1_ + "." + key1_ + " " + CompareOpName(op_) + " " +
             constant_.ToString();
    case Kind::kLabelIs:
      return var1_ + ":" + label_;
    case Kind::kAnd:
      return "(" + left()->ToString() + " AND " + right()->ToString() + ")";
    case Kind::kOr:
      return "(" + left()->ToString() + " OR " + right()->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + child()->ToString() + ")";
  }
  return "?";
}

// --- CorePattern --------------------------------------------------------

#define GQZOO_MUTABLE_PATTERN(ptr) auto ptr = std::make_shared<PatternAccess>()

CorePatternPtr CorePattern::Node(std::optional<std::string> var,
                                 std::optional<std::string> label) {
  GQZOO_MUTABLE_PATTERN(p);
  p->kind_ = Kind::kNode;
  p->var_ = std::move(var);
  p->label_ = std::move(label);
  return p;
}

CorePatternPtr CorePattern::Edge(std::optional<std::string> var,
                                 std::optional<std::string> label) {
  GQZOO_MUTABLE_PATTERN(p);
  p->kind_ = Kind::kEdge;
  p->var_ = std::move(var);
  p->label_ = std::move(label);
  return p;
}

CorePatternPtr CorePattern::Concat(CorePatternPtr a, CorePatternPtr b) {
  GQZOO_MUTABLE_PATTERN(p);
  p->kind_ = Kind::kConcat;
  p->children_ = {std::move(a), std::move(b)};
  return p;
}

CorePatternPtr CorePattern::Union(CorePatternPtr a, CorePatternPtr b) {
  GQZOO_MUTABLE_PATTERN(p);
  p->kind_ = Kind::kUnion;
  p->children_ = {std::move(a), std::move(b)};
  return p;
}

CorePatternPtr CorePattern::Repeat(CorePatternPtr inner, size_t lo,
                                   size_t hi) {
  GQZOO_MUTABLE_PATTERN(p);
  p->kind_ = Kind::kRepeat;
  p->lo_ = lo;
  p->hi_ = hi;
  p->children_ = {std::move(inner)};
  return p;
}

CorePatternPtr CorePattern::Where(CorePatternPtr inner, CoreCondPtr cond) {
  GQZOO_MUTABLE_PATTERN(p);
  p->kind_ = Kind::kCondition;
  p->cond_ = std::move(cond);
  p->children_ = {std::move(inner)};
  return p;
}

namespace {

void CollectFree(const CorePattern& p, std::vector<std::string>* out) {
  switch (p.kind()) {
    case CorePattern::Kind::kNode:
    case CorePattern::Kind::kEdge:
      if (p.var().has_value() &&
          std::find(out->begin(), out->end(), *p.var()) == out->end()) {
        out->push_back(*p.var());
      }
      return;
    case CorePattern::Kind::kConcat:
      CollectFree(*p.left(), out);
      CollectFree(*p.right(), out);
      return;
    case CorePattern::Kind::kUnion:
      // FV(π1 + π2) := FV(π1) (the side condition makes both arms equal).
      CollectFree(*p.left(), out);
      return;
    case CorePattern::Kind::kRepeat:
      // FV(π^{n..m}) := ∅ — repetition erases free variables, keeping
      // outputs first-normal-form (no lists).
      return;
    case CorePattern::Kind::kCondition:
      CollectFree(*p.child(), out);
      return;
  }
}

void CollectAll(const CorePattern& p, std::vector<std::string>* out) {
  switch (p.kind()) {
    case CorePattern::Kind::kNode:
    case CorePattern::Kind::kEdge:
      if (p.var().has_value() &&
          std::find(out->begin(), out->end(), *p.var()) == out->end()) {
        out->push_back(*p.var());
      }
      return;
    case CorePattern::Kind::kConcat:
    case CorePattern::Kind::kUnion:
      CollectAll(*p.left(), out);
      CollectAll(*p.right(), out);
      return;
    case CorePattern::Kind::kRepeat:
    case CorePattern::Kind::kCondition:
      CollectAll(*p.child(), out);
      return;
  }
}

Result<bool> ValidateRec(const CorePattern& p) {
  switch (p.kind()) {
    case CorePattern::Kind::kNode:
    case CorePattern::Kind::kEdge:
      return true;
    case CorePattern::Kind::kConcat: {
      Result<bool> l = ValidateRec(*p.left());
      if (!l.ok()) return l;
      return ValidateRec(*p.right());
    }
    case CorePattern::Kind::kUnion: {
      std::vector<std::string> lhs = p.left()->FreeVariables();
      std::vector<std::string> rhs = p.right()->FreeVariables();
      std::set<std::string> ls(lhs.begin(), lhs.end());
      std::set<std::string> rs(rhs.begin(), rhs.end());
      if (ls != rs) {
        return Error(
            "disjunction arms must have the same free variables "
            "(CoreGQL forbids nulls): " +
            p.ToString());
      }
      Result<bool> l = ValidateRec(*p.left());
      if (!l.ok()) return l;
      return ValidateRec(*p.right());
    }
    case CorePattern::Kind::kRepeat:
    case CorePattern::Kind::kCondition:
      return ValidateRec(*p.child());
  }
  return true;
}

}  // namespace

std::vector<std::string> CorePattern::FreeVariables() const {
  std::vector<std::string> out;
  CollectFree(*this, &out);
  return out;
}

std::vector<std::string> CorePattern::AllVariables() const {
  std::vector<std::string> out;
  CollectAll(*this, &out);
  return out;
}

Result<bool> CorePattern::Validate() const { return ValidateRec(*this); }

std::string CorePattern::ToString() const {
  switch (kind_) {
    case Kind::kNode: {
      std::string out = "(" + var_.value_or("");
      if (label_.has_value()) out += ":" + *label_;
      return out + ")";
    }
    case Kind::kEdge: {
      if (!var_.has_value() && !label_.has_value()) return "->";
      std::string out = "-[" + var_.value_or("");
      if (label_.has_value()) out += ":" + *label_;
      return out + "]->";
    }
    case Kind::kConcat:
      return left()->ToString() + " " + right()->ToString();
    case Kind::kUnion:
      return "(" + left()->ToString() + " | " + right()->ToString() + ")";
    case Kind::kRepeat: {
      std::string bounds;
      if (lo_ == 0 && hi_ == kUnbounded) {
        bounds = "*";
      } else if (lo_ == 1 && hi_ == kUnbounded) {
        bounds = "+";
      } else if (lo_ == 0 && hi_ == 1) {
        bounds = "?";
      } else if (hi_ == kUnbounded) {
        bounds = "{" + std::to_string(lo_) + ",}";
      } else if (lo_ == hi_) {
        bounds = "{" + std::to_string(lo_) + "}";
      } else {
        bounds = "{" + std::to_string(lo_) + "," + std::to_string(hi_) + "}";
      }
      return "(" + child()->ToString() + ")" + bounds;
    }
    case Kind::kCondition:
      return "(" + child()->ToString() + " WHERE " + cond_->ToString() + ")";
  }
  return "?";
}

}  // namespace gqzoo
