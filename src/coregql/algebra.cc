#include "src/coregql/algebra.h"

#include <algorithm>
#include <set>

#include "src/rel/batch.h"

namespace gqzoo {

CoreRelation Select(
    const CoreRelation& r,
    const std::function<bool(const std::vector<CoreCell>&)>& pred,
    const QueryContext* ctx) {
  CoreRelation out(r.schema());
  for (const auto& row : r.rows()) {
    if (ShouldStop(ctx)) break;
    if (pred(row)) out.AddRow(row);
  }
  out.Normalize(ctx);
  return out;
}

Result<CoreRelation> Project(const CoreRelation& r,
                             const std::vector<std::string>& attrs) {
  std::vector<size_t> indices;
  for (const std::string& a : attrs) {
    size_t i = r.AttrIndex(a);
    if (i == SIZE_MAX) return Error("unknown attribute '" + a + "'");
    indices.push_back(i);
  }
  CoreRelation out(attrs);
  for (const auto& row : r.rows()) {
    std::vector<CoreCell> cells;
    cells.reserve(indices.size());
    for (size_t i : indices) cells.push_back(row[i]);
    out.AddRow(std::move(cells));
  }
  out.Normalize();
  return out;
}

CoreRelation NaturalJoinRel(const CoreRelation& a, const CoreRelation& b,
                            const QueryContext* ctx, bool use_batch) {
  CoreRelation out(use_batch
                       ? rel::NaturalJoinBatched(a.table(), b.table(), ctx)
                       : rel::NaturalJoin(a.table(), b.table(), ctx));
  out.Normalize(ctx);
  return out;
}

namespace {

Result<bool> CheckSchemasMatch(const CoreRelation& a, const CoreRelation& b) {
  if (a.schema() != b.schema()) {
    return Error("set operation requires identical schemas");
  }
  return true;
}

}  // namespace

Result<CoreRelation> UnionRel(const CoreRelation& a, const CoreRelation& b) {
  Result<bool> ok = CheckSchemasMatch(a, b);
  if (!ok.ok()) return ok.error();
  CoreRelation out(a.schema());
  for (const auto& row : a.rows()) out.AddRow(row);
  for (const auto& row : b.rows()) out.AddRow(row);
  out.Normalize();
  return out;
}

Result<CoreRelation> DifferenceRel(const CoreRelation& a,
                                   const CoreRelation& b) {
  Result<bool> ok = CheckSchemasMatch(a, b);
  if (!ok.ok()) return ok.error();
  std::set<std::vector<CoreCell>> exclude(b.rows().begin(), b.rows().end());
  CoreRelation out(a.schema());
  for (const auto& row : a.rows()) {
    if (exclude.count(row) == 0) out.AddRow(row);
  }
  out.Normalize();
  return out;
}

Result<CoreRelation> IntersectRel(const CoreRelation& a,
                                  const CoreRelation& b) {
  Result<bool> ok = CheckSchemasMatch(a, b);
  if (!ok.ok()) return ok.error();
  std::set<std::vector<CoreCell>> keep(b.rows().begin(), b.rows().end());
  CoreRelation out(a.schema());
  for (const auto& row : a.rows()) {
    if (keep.count(row) > 0) out.AddRow(row);
  }
  out.Normalize();
  return out;
}

Result<CoreRelation> Rename(const CoreRelation& r, const std::string& from,
                            const std::string& to) {
  size_t i = r.AttrIndex(from);
  if (i == SIZE_MAX) return Error("unknown attribute '" + from + "'");
  if (r.AttrIndex(to) != SIZE_MAX) {
    return Error("attribute '" + to + "' already exists");
  }
  std::vector<std::string> schema = r.schema();
  schema[i] = to;
  CoreRelation out(std::move(schema));
  for (const auto& row : r.rows()) out.AddRow(row);
  out.Normalize();
  return out;
}

}  // namespace gqzoo
