#include "src/coregql/algebra.h"

#include <algorithm>
#include <map>
#include <set>

namespace gqzoo {

CoreRelation Select(
    const CoreRelation& r,
    const std::function<bool(const std::vector<CoreCell>&)>& pred) {
  CoreRelation out(r.schema());
  for (const auto& row : r.rows()) {
    if (pred(row)) out.AddRow(row);
  }
  out.Normalize();
  return out;
}

Result<CoreRelation> Project(const CoreRelation& r,
                             const std::vector<std::string>& attrs) {
  std::vector<size_t> indices;
  for (const std::string& a : attrs) {
    size_t i = r.AttrIndex(a);
    if (i == SIZE_MAX) return Error("unknown attribute '" + a + "'");
    indices.push_back(i);
  }
  CoreRelation out(attrs);
  for (const auto& row : r.rows()) {
    std::vector<CoreCell> cells;
    cells.reserve(indices.size());
    for (size_t i : indices) cells.push_back(row[i]);
    out.AddRow(std::move(cells));
  }
  out.Normalize();
  return out;
}

CoreRelation NaturalJoinRel(const CoreRelation& a, const CoreRelation& b) {
  std::vector<size_t> shared_a, shared_b, b_only;
  for (size_t j = 0; j < b.schema().size(); ++j) {
    size_t i = a.AttrIndex(b.schema()[j]);
    if (i != SIZE_MAX) {
      shared_a.push_back(i);
      shared_b.push_back(j);
    } else {
      b_only.push_back(j);
    }
  }
  std::vector<std::string> schema = a.schema();
  for (size_t j : b_only) schema.push_back(b.schema()[j]);
  CoreRelation out(std::move(schema));

  std::map<std::vector<CoreCell>, std::vector<size_t>> index;
  for (size_t i = 0; i < b.rows().size(); ++i) {
    std::vector<CoreCell> key;
    for (size_t j : shared_b) key.push_back(b.rows()[i][j]);
    index[std::move(key)].push_back(i);
  }
  for (const auto& row_a : a.rows()) {
    std::vector<CoreCell> key;
    for (size_t j : shared_a) key.push_back(row_a[j]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t i : it->second) {
      std::vector<CoreCell> row = row_a;
      for (size_t j : b_only) row.push_back(b.rows()[i][j]);
      out.AddRow(std::move(row));
    }
  }
  out.Normalize();
  return out;
}

namespace {

Result<bool> CheckSchemasMatch(const CoreRelation& a, const CoreRelation& b) {
  if (a.schema() != b.schema()) {
    return Error("set operation requires identical schemas");
  }
  return true;
}

}  // namespace

Result<CoreRelation> UnionRel(const CoreRelation& a, const CoreRelation& b) {
  Result<bool> ok = CheckSchemasMatch(a, b);
  if (!ok.ok()) return ok.error();
  CoreRelation out(a.schema());
  for (const auto& row : a.rows()) out.AddRow(row);
  for (const auto& row : b.rows()) out.AddRow(row);
  out.Normalize();
  return out;
}

Result<CoreRelation> DifferenceRel(const CoreRelation& a,
                                   const CoreRelation& b) {
  Result<bool> ok = CheckSchemasMatch(a, b);
  if (!ok.ok()) return ok.error();
  std::set<std::vector<CoreCell>> exclude(b.rows().begin(), b.rows().end());
  CoreRelation out(a.schema());
  for (const auto& row : a.rows()) {
    if (exclude.count(row) == 0) out.AddRow(row);
  }
  out.Normalize();
  return out;
}

Result<CoreRelation> IntersectRel(const CoreRelation& a,
                                  const CoreRelation& b) {
  Result<bool> ok = CheckSchemasMatch(a, b);
  if (!ok.ok()) return ok.error();
  std::set<std::vector<CoreCell>> keep(b.rows().begin(), b.rows().end());
  CoreRelation out(a.schema());
  for (const auto& row : a.rows()) {
    if (keep.count(row) > 0) out.AddRow(row);
  }
  out.Normalize();
  return out;
}

Result<CoreRelation> Rename(const CoreRelation& r, const std::string& from,
                            const std::string& to) {
  size_t i = r.AttrIndex(from);
  if (i == SIZE_MAX) return Error("unknown attribute '" + from + "'");
  if (r.AttrIndex(to) != SIZE_MAX) {
    return Error("attribute '" + to + "' already exists");
  }
  std::vector<std::string> schema = r.schema();
  schema[i] = to;
  CoreRelation out(std::move(schema));
  for (const auto& row : r.rows()) out.AddRow(row);
  out.Normalize();
  return out;
}

}  // namespace gqzoo
