#ifndef GQZOO_COREGQL_PATTERN_EVAL_H_
#define GQZOO_COREGQL_PATTERN_EVAL_H_

#include <map>

#include "src/coregql/pattern.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/util/cancellation.h"
#include "src/util/result.h"

namespace gqzoo {

/// A CoreGQL binding µ: free variables to graph elements (Figure 4).
using CoreBinding = std::map<std::string, ObjectRef>;

/// Evaluates a condition θ against µ per Figure 4. Comparisons involving an
/// unbound variable or an undefined property are false (CoreGQL has no
/// nulls; ¬ flips as usual).
bool EvalCoreCondition(const PropertyGraph& g, const CoreCondition& cond,
                       const CoreBinding& mu);

/// One result of pair-level pattern evaluation: the endpoints of the
/// matched path and the binding of the pattern's free variables.
struct CorePairRow {
  NodeId src;
  NodeId tgt;
  CoreBinding mu;

  bool operator==(const CorePairRow& o) const {
    return src == o.src && tgt == o.tgt && mu == o.mu;
  }
  bool operator<(const CorePairRow& o) const {
    if (src != o.src) return src < o.src;
    if (tgt != o.tgt) return tgt < o.tgt;
    return mu < o.mu;
  }
};

/// Exact, always-terminating evaluation of `{(src(p), tgt(p), µ) | (p, µ) ∈
/// [[π]]_G}` — finite even when [[π]]_G is infinite, because paths are
/// projected to endpoints (repetition contributes endpoint pairs computed
/// by reachability over the one-iteration pair relation). This is all a
/// CoreGQL *relation* needs (Section 4.1.2: outputs are first-normal-form).
/// `snapshot` (optional, not owned, over the same graph) turns the node
/// and edge atom scans into index lookups: a label-filtered node atom
/// reads `NodesWithLabel`, a label-filtered edge atom reads
/// `EdgesWithLabel`, instead of scanning and filtering every element.
/// Results are identical.
Result<std::vector<CorePairRow>> EvalPatternPairs(
    const PropertyGraph& g, const CorePattern& pattern,
    const CancellationToken* cancel = nullptr,
    const GraphSnapshot* snapshot = nullptr);

/// One result of path-level evaluation: the matched path itself plus µ.
/// Needed for the `p = π` path-binding extension of Section 5.2.
struct CorePathRow {
  Path path;
  CoreBinding mu;

  bool operator==(const CorePathRow& o) const {
    return path == o.path && mu == o.mu;
  }
  bool operator<(const CorePathRow& o) const {
    if (path != o.path) return path < o.path;
    return mu < o.mu;
  }
};

struct CorePathEvalOptions {
  size_t max_path_length = 32;
  size_t max_results = 200000;
  /// Optional cooperative cancellation (deadlines); enumeration returns a
  /// truncated result once the token trips. Not owned.
  const CancellationToken* cancel = nullptr;
  /// Optional label-partitioned view of the same graph (not owned); see
  /// EvalPatternPairs.
  const GraphSnapshot* snapshot = nullptr;
};

struct CorePathEvalResult {
  std::vector<CorePathRow> rows;
  bool truncated = false;
};

/// Reference (enumerative) evaluation of [[π]]_G as a set of (path, µ)
/// pairs, truncated at the limits — [[π]]_G can be infinite on cyclic
/// graphs. This is the engine behind path outputs; its cost on
/// `→* ... EXCEPT ...` pipelines is exactly the compositional-evaluation
/// penalty the paper observes (Section 5.2).
Result<CorePathEvalResult> EvalPatternPaths(
    const PropertyGraph& g, const CorePattern& pattern,
    const CorePathEvalOptions& options = {});

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_PATTERN_EVAL_H_
