#ifndef GQZOO_COREGQL_RELATION_H_
#define GQZOO_COREGQL_RELATION_H_

#include <string>
#include <variant>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/util/value.h"

namespace gqzoo {

/// A cell of a CoreGQL relation: a graph element, an atomic property value,
/// or — in the Section 5.2 extension — a path. (No nulls, no lists: the
/// first-normal-form requirement of Section 4.1.2, with paths as the one
/// sanctioned extension.)
using CoreCell = std::variant<ObjectRef, Value, Path>;

std::string CoreCellToString(const EdgeLabeledGraph& g, const CoreCell& cell);

/// A relation over named attributes, under set semantics.
class CoreRelation {
 public:
  CoreRelation() = default;
  explicit CoreRelation(std::vector<std::string> schema)
      : schema_(std::move(schema)) {}

  const std::vector<std::string>& schema() const { return schema_; }
  const std::vector<std::vector<CoreCell>>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  /// Index of an attribute, or SIZE_MAX.
  size_t AttrIndex(const std::string& name) const;

  /// Adds a row (arity-checked in debug builds). Call Normalize() after a
  /// batch of inserts to restore set semantics.
  void AddRow(std::vector<CoreCell> row);

  /// Sorts rows and removes duplicates (set semantics).
  void Normalize();

  std::string ToString(const EdgeLabeledGraph& g) const;

 private:
  std::vector<std::string> schema_;
  std::vector<std::vector<CoreCell>> rows_;
};

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_RELATION_H_
