#ifndef GQZOO_COREGQL_RELATION_H_
#define GQZOO_COREGQL_RELATION_H_

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/rel/rel.h"
#include "src/util/query_context.h"
#include "src/util/value.h"

namespace gqzoo {

/// A cell of a CoreGQL relation: a graph element, an atomic property value,
/// or — in the Section 5.2 extension — a path. (No nulls, no lists: the
/// first-normal-form requirement of Section 4.1.2, with paths as the one
/// sanctioned extension.)
using CoreCell = std::variant<ObjectRef, Value, Path>;

std::string CoreCellToString(const EdgeLabeledGraph& g, const CoreCell& cell);

/// A relation over named attributes, under set semantics — a thin facade
/// over the shared relational kernel (`rel::Table<CoreCell>`), which the
/// algebra operators (algebra.h) evaluate through.
class CoreRelation {
 public:
  CoreRelation() = default;
  explicit CoreRelation(std::vector<std::string> schema) {
    table_.schema = std::move(schema);
  }
  explicit CoreRelation(rel::Table<CoreCell> table)
      : table_(std::move(table)) {}

  const std::vector<std::string>& schema() const { return table_.schema; }
  const std::vector<std::vector<CoreCell>>& rows() const {
    return table_.rows;
  }
  size_t NumRows() const { return table_.rows.size(); }

  /// Index of an attribute, or SIZE_MAX.
  size_t AttrIndex(const std::string& name) const {
    return table_.AttrIndex(name);
  }

  /// Adds a row (arity-checked in debug builds). Call Normalize() after a
  /// batch of inserts to restore set semantics.
  void AddRow(std::vector<CoreCell> row);

  /// Sorts rows and removes duplicates (set semantics). Skipped on a
  /// tripped context — a partial relation is about to be discarded, so
  /// normalization would only delay the unwind.
  void Normalize(const QueryContext* ctx = nullptr) {
    rel::Dedupe(&table_, ctx);
  }

  /// The kernel view, for the relational-algebra operators.
  const rel::Table<CoreCell>& table() const { return table_; }

  std::string ToString(const EdgeLabeledGraph& g) const;

 private:
  rel::Table<CoreCell> table_;
};

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_RELATION_H_
