#ifndef GQZOO_COREGQL_ALGEBRA_H_
#define GQZOO_COREGQL_ALGEBRA_H_

#include <functional>

#include "src/coregql/relation.h"
#include "src/util/result.h"

namespace gqzoo {

/// Relational algebra over CoreGQL relations (component (3) of CoreGQL,
/// Section 4.1.3). All operators implement set semantics.

/// σ_pred: keeps rows for which `pred(row)` is true. `ctx` (optional)
/// makes the scan cooperative and skips normalization once tripped.
CoreRelation Select(const CoreRelation& r,
                    const std::function<bool(const std::vector<CoreCell>&)>& pred,
                    const QueryContext* ctx = nullptr);

/// π_attrs: projection (duplicates removed). Fails on unknown attributes.
Result<CoreRelation> Project(const CoreRelation& r,
                             const std::vector<std::string>& attrs);

/// Natural join on shared attribute names (cartesian product if none),
/// via the shared relational kernel's hash join. `ctx` (optional) charges
/// output tuples against the memory budget — the join is where CoreGQL
/// blocks blow up — and makes the result partial once the context trips.
/// `use_batch` routes through the columnar batch kernel (rel/batch.h):
/// byte-identical rows and charges.
CoreRelation NaturalJoinRel(const CoreRelation& a, const CoreRelation& b,
                            const QueryContext* ctx = nullptr,
                            bool use_batch = false);

/// Set union / difference / intersection; schemas must match exactly.
Result<CoreRelation> UnionRel(const CoreRelation& a, const CoreRelation& b);
Result<CoreRelation> DifferenceRel(const CoreRelation& a,
                                   const CoreRelation& b);
Result<CoreRelation> IntersectRel(const CoreRelation& a,
                                  const CoreRelation& b);

/// ρ: renames attribute `from` to `to`. Fails if `from` is unknown or `to`
/// already exists.
Result<CoreRelation> Rename(const CoreRelation& r, const std::string& from,
                            const std::string& to);

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_ALGEBRA_H_
