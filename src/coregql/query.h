#ifndef GQZOO_COREGQL_QUERY_H_
#define GQZOO_COREGQL_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/coregql/pattern.h"
#include "src/coregql/pattern_eval.h"
#include "src/coregql/relation.h"
#include "src/rel/wcoj.h"
#include "src/util/result.h"

namespace gqzoo {

/// Set operations between query blocks (GQL's EXCEPT is what Section 5.2's
/// "Turning to Complement for Help" relies on).
enum class CoreSetOp { kUnion, kExcept, kIntersect };

/// A RETURN item: a variable `x` (graph element or bound path) or a
/// property access `x.k` — the Ω sequences of Section 4.1.2.
struct CoreReturnItem {
  enum class Kind { kVar, kProp };
  Kind kind = Kind::kVar;
  std::string var;
  std::string key;

  std::string Name() const {
    return kind == Kind::kVar ? var : var + "." + key;
  }
};

/// One MATCH...RETURN block.
struct CoreMatchBlock {
  struct PatternEntry {
    /// Set for `p = π` path bindings (Section 5.2); the relation then has a
    /// path-valued column p, and evaluation is enumerative (bounded).
    std::optional<std::string> path_var;
    CorePatternPtr pattern;
  };

  std::vector<PatternEntry> patterns;  // joined on shared variables
  CoreCondPtr where;                   // optional, applied after the join
  std::vector<CoreReturnItem> returns;
};

/// A CoreGQL query: blocks combined left-associatively with set operations.
struct CoreGqlQuery {
  std::vector<CoreMatchBlock> blocks;
  std::vector<CoreSetOp> ops;  // size = blocks.size() - 1
};

struct CoreQueryEvalOptions {
  CorePathEvalOptions path_options;
  /// Per-block join orders from the planner (block i joins its pattern
  /// entries in the order `(*block_orders)[i]`). Null, or an entry whose
  /// size does not match the block's pattern count, means textual order.
  const std::vector<std::vector<size_t>>* block_orders = nullptr;
  /// Per-block worst-case-optimal join groups from the planner (parallel
  /// to blocks; an engaged entry replaces that block's cyclic core of
  /// single-label edge patterns with one multiway intersection). Honored
  /// only when `path_options.snapshot` is set — the wcoj runs on label
  /// slices. Entries are evaluated in textual order regardless (error
  /// parity); only the join stage changes. Results are identical.
  const std::vector<std::optional<rel::WcojSpec>>* block_wcoj = nullptr;
  /// Route the block join through the columnar batch kernel
  /// (rel/batch.h); byte-identical rows and budget charges.
  bool use_batch = false;
};

struct CoreQueryResult {
  CoreRelation relation;
  /// True when some path enumeration hit its limits.
  bool truncated = false;
};

/// Parses the MATCH/WHERE/RETURN surface syntax:
///
///     MATCH (x)-[e:Transfer]->(y) WHERE x.owner = 'Mike' RETURN x, y.owner
///     MATCH p = (x) ((u)->(v) WHERE u.k < v.k)* (y) RETURN p
///       EXCEPT
///     MATCH p = (x) -> * (y) RETURN p
///
/// Keywords are case-insensitive. Rows where a returned property is
/// undefined are dropped (the µ_Ω compatibility rule of Section 4.1.2 —
/// CoreGQL has no nulls).
Result<CoreGqlQuery> ParseCoreGqlQuery(const std::string& text);

/// Evaluates a query. Pattern matching is exact (pair-level reachability)
/// unless a block binds a path variable, in which case that pattern is
/// enumerated under `options.path_options` limits.
Result<CoreQueryResult> EvalCoreGqlQuery(const PropertyGraph& g,
                                         const CoreGqlQuery& query,
                                         const CoreQueryEvalOptions& options = {});

/// Convenience: parse + evaluate.
Result<CoreQueryResult> RunCoreGql(const PropertyGraph& g,
                                   const std::string& text,
                                   const CoreQueryEvalOptions& options = {});

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_QUERY_H_
