#include "src/coregql/optimize.h"

#include <algorithm>

namespace gqzoo {

namespace {

// Splits a condition into its top-level AND conjuncts.
void SplitConjuncts(const CoreCondPtr& cond, std::vector<CoreCondPtr>* out) {
  if (cond == nullptr) return;
  if (cond->kind() == CoreCondition::Kind::kAnd) {
    SplitConjuncts(cond->left(), out);
    SplitConjuncts(cond->right(), out);
    return;
  }
  out->push_back(cond);
}

CoreCondPtr FoldConjuncts(const std::vector<CoreCondPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  CoreCondPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = CoreCondition::And(std::move(result), conjuncts[i]);
  }
  return result;
}

// Collects the labels carried by non-repeated atoms binding `var`.
void CollectAtomLabels(const CorePattern& p, const std::string& var,
                       bool under_repeat, size_t* bound_count,
                       std::vector<std::string>* labels) {
  switch (p.kind()) {
    case CorePattern::Kind::kNode:
    case CorePattern::Kind::kEdge:
      if (!under_repeat && p.var() == std::optional<std::string>(var)) {
        ++*bound_count;
        if (p.label().has_value()) labels->push_back(*p.label());
      }
      return;
    case CorePattern::Kind::kConcat:
    case CorePattern::Kind::kUnion:
      CollectAtomLabels(*p.left(), var, under_repeat, bound_count, labels);
      CollectAtomLabels(*p.right(), var, under_repeat, bound_count, labels);
      return;
    case CorePattern::Kind::kRepeat:
      CollectAtomLabels(*p.child(), var, true, bound_count, labels);
      return;
    case CorePattern::Kind::kCondition:
      CollectAtomLabels(*p.child(), var, under_repeat, bound_count, labels);
      return;
  }
}

// Rebuilds the pattern with `label` installed on every unlabeled
// non-repeated atom binding `var`.
CorePatternPtr InstallLabel(const CorePatternPtr& p, const std::string& var,
                            const std::string& label, bool under_repeat) {
  switch (p->kind()) {
    case CorePattern::Kind::kNode:
    case CorePattern::Kind::kEdge: {
      if (under_repeat || p->var() != std::optional<std::string>(var) ||
          p->label().has_value()) {
        return p;
      }
      return p->kind() == CorePattern::Kind::kNode
                 ? CorePattern::Node(p->var(), label)
                 : CorePattern::Edge(p->var(), label);
    }
    case CorePattern::Kind::kConcat:
      return CorePattern::Concat(
          InstallLabel(p->left(), var, label, under_repeat),
          InstallLabel(p->right(), var, label, under_repeat));
    case CorePattern::Kind::kUnion:
      return CorePattern::Union(
          InstallLabel(p->left(), var, label, under_repeat),
          InstallLabel(p->right(), var, label, under_repeat));
    case CorePattern::Kind::kRepeat:
      return p;  // repeated occurrences are semantically fresh variables
    case CorePattern::Kind::kCondition:
      return CorePattern::Where(
          InstallLabel(p->child(), var, label, under_repeat), p->cond());
  }
  return p;
}

bool BindsFreeVariable(const CorePattern& p, const std::string& var) {
  std::vector<std::string> fv = p.FreeVariables();
  return std::find(fv.begin(), fv.end(), var) != fv.end();
}

}  // namespace

CoreGqlQuery PushDownConditions(const CoreGqlQuery& query,
                                PushdownStats* stats) {
  PushdownStats local;
  CoreGqlQuery out = query;
  for (CoreMatchBlock& block : out.blocks) {
    std::vector<CoreCondPtr> conjuncts;
    SplitConjuncts(block.where, &conjuncts);
    std::vector<CoreCondPtr> kept;
    for (const CoreCondPtr& conjunct : conjuncts) {
      if (conjunct->kind() == CoreCondition::Kind::kLabelIs) {
        const std::string& var = conjunct->var1();
        const std::string& label = conjunct->label();
        size_t bound = 0;
        std::vector<std::string> labels;
        for (const CoreMatchBlock::PatternEntry& entry : block.patterns) {
          CollectAtomLabels(*entry.pattern, var, false, &bound, &labels);
        }
        bool conflicting =
            std::any_of(labels.begin(), labels.end(),
                        [&label](const std::string& l) { return l != label; });
        if (bound == 0 || conflicting) {
          kept.push_back(conjunct);  // unbound or contradictory: keep as-is
          continue;
        }
        for (CoreMatchBlock::PatternEntry& entry : block.patterns) {
          entry.pattern = InstallLabel(entry.pattern, var, label, false);
        }
        ++local.labels_pushed;
        continue;
      }
      if (conjunct->kind() == CoreCondition::Kind::kCompareConst) {
        const std::string& var = conjunct->var1();
        bool pushed = false;
        for (CoreMatchBlock::PatternEntry& entry : block.patterns) {
          if (BindsFreeVariable(*entry.pattern, var)) {
            entry.pattern = CorePattern::Where(entry.pattern, conjunct);
            pushed = true;
            break;
          }
        }
        if (pushed) {
          ++local.selections_pushed;
          continue;
        }
      }
      kept.push_back(conjunct);
    }
    block.where = FoldConjuncts(kept);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace gqzoo
