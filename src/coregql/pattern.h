#ifndef GQZOO_COREGQL_PATTERN_H_
#define GQZOO_COREGQL_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/value.h"

namespace gqzoo {

class CoreCondition;
using CoreCondPtr = std::shared_ptr<const CoreCondition>;

/// A CoreGQL condition θ (Section 4.1.1):
///
///     θ := x.k = x'.k' | x.k < x'.k' | ℓ(x) | θ ∨ θ | θ ∧ θ | ¬θ
///
/// extended with the other comparison operators and comparisons against
/// constants (expressible but convenient).
class CoreCondition {
 public:
  enum class Kind : uint8_t {
    kCompareProps,  // x.k op y.k'
    kCompareConst,  // x.k op c
    kLabelIs,       // ℓ(x)
    kAnd,
    kOr,
    kNot,
  };

  static CoreCondPtr CompareProps(std::string x, std::string k, CompareOp op,
                                  std::string y, std::string k2);
  static CoreCondPtr CompareConst(std::string x, std::string k, CompareOp op,
                                  Value c);
  static CoreCondPtr LabelIs(std::string x, std::string label);
  static CoreCondPtr And(CoreCondPtr a, CoreCondPtr b);
  static CoreCondPtr Or(CoreCondPtr a, CoreCondPtr b);
  static CoreCondPtr Not(CoreCondPtr a);

  Kind kind() const { return kind_; }
  const std::string& var1() const { return var1_; }
  const std::string& key1() const { return key1_; }
  const std::string& var2() const { return var2_; }
  const std::string& key2() const { return key2_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }
  const std::string& label() const { return label_; }
  const CoreCondPtr& left() const { return children_[0]; }
  const CoreCondPtr& right() const { return children_[1]; }
  const CoreCondPtr& child() const { return children_[0]; }

  std::string ToString() const;

 protected:
  CoreCondition() = default;

 private:
  Kind kind_ = Kind::kAnd;
  std::string var1_, key1_, var2_, key2_;
  CompareOp op_ = CompareOp::kEq;
  Value constant_;
  std::string label_;
  std::vector<CoreCondPtr> children_;
};

class CorePattern;
using CorePatternPtr = std::shared_ptr<const CorePattern>;

/// A CoreGQL pattern π (Section 4.1.1):
///
///     π := (x) | →x | π1 π2 | π1 + π2 | π^{n..m} | π⟨θ⟩
///
/// Node and edge atoms additionally carry an optional label constraint
/// (the `(x:Account)` sugar; for anonymous atoms the constraint cannot be
/// expressed as a condition, so it is part of the atom).
class CorePattern {
 public:
  static constexpr size_t kUnbounded = SIZE_MAX;

  enum class Kind : uint8_t {
    kNode,
    kEdge,
    kConcat,
    kUnion,
    kRepeat,
    kCondition,
  };

  static CorePatternPtr Node(std::optional<std::string> var,
                             std::optional<std::string> label = std::nullopt);
  static CorePatternPtr Edge(std::optional<std::string> var,
                             std::optional<std::string> label = std::nullopt);
  static CorePatternPtr Concat(CorePatternPtr a, CorePatternPtr b);
  static CorePatternPtr Union(CorePatternPtr a, CorePatternPtr b);
  static CorePatternPtr Repeat(CorePatternPtr inner, size_t lo, size_t hi);
  static CorePatternPtr Where(CorePatternPtr inner, CoreCondPtr cond);

  Kind kind() const { return kind_; }
  const std::optional<std::string>& var() const { return var_; }
  const std::optional<std::string>& label() const { return label_; }
  size_t lo() const { return lo_; }
  size_t hi() const { return hi_; }
  const CoreCondPtr& cond() const { return cond_; }
  const CorePatternPtr& left() const { return children_[0]; }
  const CorePatternPtr& right() const { return children_[1]; }
  const CorePatternPtr& child() const { return children_[0]; }

  /// Free variables per Section 4.1.1: repetition erases them, the arms of
  /// a disjunction must agree (checked by Validate).
  std::vector<std::string> FreeVariables() const;

  /// All variables occurring anywhere (including under repetitions).
  std::vector<std::string> AllVariables() const;

  /// Checks the FV(π1) = FV(π2) side condition on every disjunction.
  Result<bool> Validate() const;

  std::string ToString() const;

 protected:
  CorePattern() = default;

 private:
  Kind kind_ = Kind::kNode;
  std::optional<std::string> var_;
  std::optional<std::string> label_;
  size_t lo_ = 0, hi_ = 0;
  CoreCondPtr cond_;
  std::vector<CorePatternPtr> children_;
};

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_PATTERN_H_
