#include "src/server/wire.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>

#include <cstring>

namespace gqzoo {
namespace server {

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

const char* PayloadReader::Take(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

bool PayloadReader::ReadU8(uint8_t* v) {
  const char* p = Take(1);
  if (p == nullptr) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool PayloadReader::ReadU32(uint32_t* v) {
  const char* p = Take(4);
  if (p == nullptr) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool PayloadReader::ReadU64(uint64_t* v) {
  const char* p = Take(8);
  if (p == nullptr) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool PayloadReader::ReadString(std::string* v) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (len > kMaxFramePayload) {
    ok_ = false;
    return false;
  }
  const char* p = Take(len);
  if (p == nullptr) return false;
  v->assign(p, len);
  return true;
}

std::string EncodeDone(const DoneStatus& status) {
  std::string payload;
  AppendU8(&payload,
           status.ok ? 0 : static_cast<uint8_t>(status.code) + 1);
  AppendString(&payload, status.message);
  AppendU64(&payload, status.num_rows);
  AppendU8(&payload, status.truncated ? 1 : 0);
  AppendU64(&payload, status.latency_us);
  return payload;
}

Result<DoneStatus> DecodeDone(std::string_view payload) {
  PayloadReader reader(payload);
  DoneStatus status;
  uint8_t code = 0;
  uint8_t truncated = 0;
  reader.ReadU8(&code);
  reader.ReadString(&status.message);
  reader.ReadU64(&status.num_rows);
  reader.ReadU8(&truncated);
  reader.ReadU64(&status.latency_us);
  if (!reader.ok()) {
    return Error("malformed DONE frame");
  }
  status.ok = code == 0;
  if (!status.ok) status.code = static_cast<ErrorCode>(code - 1);
  status.truncated = truncated != 0;
  return status;
}

namespace {

/// Sends all of `data`, retrying on EINTR and partial writes.
bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Reads exactly `len` bytes. Returns 1 on success, 0 on clean EOF before
/// the first byte, -1 on error or torn read.
int RecvAll(int fd, char* data, size_t len) {
  bool any = false;
  while (len > 0) {
    ssize_t n = recv(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return any ? -1 : 0;
    any = true;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

Result<bool> WriteFrame(int fd, FrameType type, std::string_view payload) {
  std::string header;
  header.reserve(5);
  AppendU32(&header, static_cast<uint32_t>(payload.size()));
  AppendU8(&header, static_cast<uint8_t>(type));
  if (!SendAll(fd, header.data(), header.size()) ||
      !SendAll(fd, payload.data(), payload.size())) {
    return Error(ErrorCode::kUnavailable,
                 std::string("write failed: ") + strerror(errno));
  }
  return true;
}

Result<Frame> ReadFrame(int fd) {
  char header[5];
  int rc = RecvAll(fd, header, sizeof(header));
  if (rc == 0) {
    return Error(ErrorCode::kUnavailable, "connection closed");
  }
  if (rc < 0) {
    return Error("frame header read failed");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Error("frame payload exceeds limit");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(header[4]));
  frame.payload.resize(len);
  if (len > 0 && RecvAll(fd, frame.payload.data(), len) != 1) {
    return Error("frame payload read failed");
  }
  return frame;
}

bool WaitReadable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc = poll(&pfd, 1, timeout_ms);
  // POLLHUP/POLLERR also count: the next read observes the EOF/error.
  return rc > 0;
}

}  // namespace server
}  // namespace gqzoo
