#include "src/server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace gqzoo {
namespace server {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(ErrorCode::kUnavailable,
                 std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = (host.empty() || host == "localhost") ? "127.0.0.1"
                                                         : host.c_str();
  if (inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
    close(fd);
    return Error(ErrorCode::kInvalidArgument, "bad host '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string err = strerror(errno);
    close(fd);
    return Error(ErrorCode::kUnavailable, "connect: " + err);
  }
  // Frames are small and latency matters more than throughput here.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Result<bool> Client::Hello(const std::string& tenant,
                           const std::string& default_language,
                           uint32_t default_timeout_ms) {
  std::string payload;
  AppendString(&payload, tenant);
  AppendString(&payload, default_language);
  AppendU32(&payload, default_timeout_ms);
  Result<bool> sent = WriteFrame(fd_, FrameType::kHello, payload);
  if (!sent.ok()) return sent.error();
  Result<Frame> reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.error();
  if (reply.value().type == FrameType::kDone) {
    Result<DoneStatus> done = DecodeDone(reply.value().payload);
    if (done.ok() && !done.value().ok) {
      return Error(done.value().code, done.value().message);
    }
    return Error("unexpected DONE in HELLO reply");
  }
  if (reply.value().type != FrameType::kHelloOk) {
    return Error("unexpected HELLO reply frame");
  }
  return true;
}

Result<bool> Client::StartQuery(const std::string& text,
                                const ClientQueryOptions& options) {
  std::string payload;
  AppendString(&payload, options.language);
  AppendString(&payload, text);
  AppendU32(&payload, options.timeout_ms);
  AppendU32(&payload, options.max_display_rows);
  uint8_t flags = 0;
  if (options.explain) flags |= 0x01;
  if (options.optimize) flags |= 0x02;
  if (options.textual_join_order) flags |= 0x04;
  AppendU8(&payload, flags);
  AppendString(&payload, options.paths_from);
  AppendString(&payload, options.paths_to);
  AppendU8(&payload, options.paths_mode);
  AppendU32(&payload, options.k_shortest);
  return WriteFrame(fd_, FrameType::kQuery, payload);
}

Result<DoneStatus> Client::Query(
    const std::string& text, const ClientQueryOptions& options,
    const std::function<bool(std::string_view)>& on_chunk) {
  Result<bool> sent = StartQuery(text, options);
  if (!sent.ok()) return sent.error();

  bool cancelled = false;
  while (true) {
    Result<Frame> frame = ReadFrame(fd_);
    if (!frame.ok()) return frame.error();
    if (frame.value().type == FrameType::kRows) {
      if (on_chunk != nullptr && !cancelled &&
          !on_chunk(frame.value().payload)) {
        cancelled = true;
        (void)SendCancel();  // keep draining until the DONE arrives
      }
      continue;
    }
    if (frame.value().type == FrameType::kDone) {
      return DecodeDone(frame.value().payload);
    }
    return Error("unexpected frame in QUERY stream");
  }
}

Result<DoneStatus> Client::Mutate(const std::vector<std::string>& ops) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(ops.size()));
  for (const std::string& op : ops) AppendString(&payload, op);
  Result<bool> sent = WriteFrame(fd_, FrameType::kMutate, payload);
  if (!sent.ok()) return sent.error();
  Result<Frame> reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.error();
  if (reply.value().type != FrameType::kDone) {
    return Error("unexpected MUTATE reply frame");
  }
  return DecodeDone(reply.value().payload);
}

Result<std::string> Client::Stats() {
  Result<bool> sent = WriteFrame(fd_, FrameType::kStats, "");
  if (!sent.ok()) return sent.error();
  std::string text;
  while (true) {
    Result<Frame> frame = ReadFrame(fd_);
    if (!frame.ok()) return frame.error();
    if (frame.value().type == FrameType::kStatsText) {
      text += frame.value().payload;
      continue;
    }
    if (frame.value().type == FrameType::kDone) {
      Result<DoneStatus> done = DecodeDone(frame.value().payload);
      if (!done.ok()) return done.error();
      if (!done.value().ok) {
        return Error(done.value().code, done.value().message);
      }
      return text;
    }
    return Error("unexpected frame in STATS reply");
  }
}

Result<bool> Client::SendCancel() {
  return WriteFrame(fd_, FrameType::kCancel, "");
}

}  // namespace server
}  // namespace gqzoo
