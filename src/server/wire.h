#ifndef GQZOO_SERVER_WIRE_H_
#define GQZOO_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/result.h"

namespace gqzoo {
namespace server {

/// The wire protocol: length-prefixed frames over a byte stream.
///
///     frame   := u32 payload_len (LE) | u8 type | payload
///     str     := u32 len (LE) | bytes
///
/// `payload_len` counts the payload only (not the type byte), so an empty
/// frame is five bytes. All integers are little-endian. The protocol is
/// strictly request/response with at most one request outstanding per
/// connection; the single exception is CANCEL, which a client may send
/// while its QUERY is still streaming.
///
/// Requests (client -> server):
///   HELLO   str tenant | str default_language | u32 default_timeout_ms
///   QUERY   str language | str text | u32 timeout_ms | u32 max_display_rows
///           | u8 flags (bit0 explain, bit1 optimize, bit2 textual order)
///           | str paths_from | str paths_to | u8 paths_mode | u32 k_shortest
///   MUTATE  u32 count | count x str op_line (shell mutation syntax)
///   CANCEL  (empty)
///   STATS   (empty)
///
/// Responses (server -> client):
///   HELLO_OK    str banner
///   ROWS        raw chunk bytes (concatenation of all ROWS frames for one
///               QUERY is byte-identical to the in-process response text)
///   DONE        u8 status (0 = OK, else ErrorCode+1) | str message
///               | u64 num_rows | u8 truncated | u64 latency_us
///   STATS_TEXT  raw report text
///
/// Every QUERY/MUTATE/STATS ends with exactly one DONE; HELLO is answered
/// by HELLO_OK (or DONE carrying an error).
enum class FrameType : uint8_t {
  kHello = 0x01,
  kQuery = 0x02,
  kMutate = 0x03,
  kCancel = 0x04,
  kStats = 0x05,
  kHelloOk = 0x81,
  kRows = 0x82,
  kDone = 0x83,
  kStatsText = 0x84,
};

/// Upper bound on a single frame's payload — a sanity valve against a
/// corrupt or malicious length prefix, not a practical limit (row chunks
/// are ~4 KiB).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kDone;
  std::string payload;
};

// --- payload encoding -----------------------------------------------------

void AppendU8(std::string* out, uint8_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendString(std::string* out, std::string_view s);

/// Cursor over a received payload. Every `Read*` returns false (and the
/// reader stays failed) on truncation, so decoders can chain reads and
/// check `ok()` once at the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadString(std::string* v);

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const char* Take(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- DONE payload ---------------------------------------------------------

/// The terminal status of one request, as carried by a DONE frame.
struct DoneStatus {
  bool ok = true;
  ErrorCode code = ErrorCode::kGeneric;  // meaningful when !ok
  std::string message;                   // error message; empty on success
  uint64_t num_rows = 0;
  bool truncated = false;
  uint64_t latency_us = 0;
};

std::string EncodeDone(const DoneStatus& status);
Result<DoneStatus> DecodeDone(std::string_view payload);

// --- socket IO ------------------------------------------------------------

/// Writes one frame, looping over partial sends. SIGPIPE is suppressed
/// (MSG_NOSIGNAL): a peer that vanished mid-write surfaces as an error
/// result, which the server turns into query cancellation.
Result<bool> WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame, blocking until it is complete. A clean EOF before any
/// byte of the frame returns kUnavailable ("connection closed"); a torn
/// frame or oversized length prefix returns kGeneric.
Result<Frame> ReadFrame(int fd);

/// Polls `fd` for readability (or EOF) up to `timeout_ms`. False on
/// timeout — callers use short timeouts to interleave shutdown checks
/// with blocking reads.
bool WaitReadable(int fd, int timeout_ms);

}  // namespace server
}  // namespace gqzoo

#endif  // GQZOO_SERVER_WIRE_H_
