#ifndef GQZOO_SERVER_SERVER_H_
#define GQZOO_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/governor.h"
#include "src/server/wire.h"
#include "src/util/result.h"

namespace gqzoo {
namespace server {

struct ServerOptions {
  /// TCP port to bind on the loopback interface; 0 picks an ephemeral
  /// port (read it back with `port()` — tests and the crash harness use
  /// this to avoid collisions).
  uint16_t port = 0;

  /// Per-tenant token-bucket quotas, checked *before* the engine's
  /// admission gate. Disabled by default (queries_per_sec == 0).
  TenantQuotaOptions quota;

  /// How long a graceful drain waits for in-flight queries before
  /// cancelling them. Queries still running at the deadline are shed:
  /// their DONE carries kUnavailable, like queries that arrived during
  /// the drain.
  std::chrono::milliseconds drain_deadline{2000};

  /// Hard cap on concurrent sessions; connections past it are accepted
  /// and immediately closed with a DONE(kOverloaded). 0 = unbounded.
  size_t max_sessions = 256;
};

/// The network front-end: a thread-per-connection TCP server speaking the
/// wire protocol of wire.h over loopback, multiplexing sessions onto one
/// shared QueryEngine.
///
/// Lifecycle: construct -> Start() -> serve -> Shutdown(). Shutdown is the
/// graceful drain the ops guide describes: stop accepting, let in-flight
/// queries finish against `drain_deadline`, cancel stragglers (their DONE
/// carries kUnavailable, never a hang), flush the WAL so every acked write
/// is durable, then join all threads. The destructor drains too, so a
/// scoped server is always torn down cleanly.
///
/// Each connection gets a session (tenant id, default language, default
/// timeout) established by HELLO; queries stream their rows back as ROWS
/// frames straight from the engine's RowSink, so a long result never
/// materializes server-side. A client that disconnects or sends CANCEL
/// mid-query trips the engine's cooperative cancellation.
class GraphServer {
 public:
  GraphServer(QueryEngine* engine, ServerOptions options);
  ~GraphServer();

  GraphServer(const GraphServer&) = delete;
  GraphServer& operator=(const GraphServer&) = delete;

  /// Binds, listens, and starts the accept thread. Fails (kUnavailable)
  /// when the port is taken.
  Result<bool> Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent and safe to call from a signal-handling
  /// thread. Returns the number of queries shed by the drain deadline.
  size_t Shutdown();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Engine stats plus per-tenant quota counters (the STATS frame's body).
  std::string StatsReport() const;

  const TenantQuotas& quotas() const { return quotas_; }

 private:
  /// Per-connection state. The session object outlives its thread only
  /// until Shutdown joins and clears the registry.
  struct Session {
    int fd = -1;
    std::thread thread;
    std::string tenant = "default";
    QueryLanguage default_language = QueryLanguage::kRpq;
    uint32_t default_timeout_ms = 0;

    /// Set while a QUERY/MUTATE is being served; the drain uses it to
    /// tell idle sessions (whose sockets it may shut down immediately)
    /// from busy ones (which get to write their DONE first).
    std::atomic<bool> busy{false};

    /// The running query's external-cancel flag, shared with the
    /// QueryRequest on the pool thread. Guarded by `mu`.
    std::shared_ptr<std::atomic<bool>> active_cancel;
    /// True when the *drain* (not the client) cancelled the query; the
    /// resulting kCancelled is reported as kUnavailable.
    bool drain_cancelled = false;
    /// True when the peer vanished mid-query; no DONE is written.
    bool peer_gone = false;
    std::mutex mu;

    /// Set by the connection thread as its last act; the accept loop
    /// reaps (joins and erases) done sessions on idle ticks.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void Serve(Session* session);
  void HandleHello(Session* session, const std::string& payload);
  void HandleQuery(Session* session, const std::string& payload);
  void HandleMutate(Session* session, const std::string& payload);

  /// Decodes a QUERY payload against the session defaults. Returns false
  /// with `*error` set on a malformed or unknown-language payload.
  bool DecodeQuery(Session* session, const std::string& payload,
                   QueryRequest* out, std::string* error);

  QueryEngine* const engine_;
  const ServerOptions options_;
  TenantQuotas quotas_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  /// Set at the end of the drain: connection threads exit their read
  /// loops at the next poll tick.
  std::atomic<bool> stopping_{false};

  /// Serializes Shutdown bodies (idempotence without a spin).
  std::mutex shutdown_mu_;
  std::atomic<size_t> active_sessions_{0};

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace server
}  // namespace gqzoo

#endif  // GQZOO_SERVER_SERVER_H_
