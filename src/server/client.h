#ifndef GQZOO_SERVER_CLIENT_H_
#define GQZOO_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/server/wire.h"
#include "src/util/result.h"

namespace gqzoo {
namespace server {

/// Per-query options mirrored onto the QUERY frame. Zero/empty fields
/// fall back to the session defaults established by HELLO.
struct ClientQueryOptions {
  std::string language;  // empty = session default
  uint32_t timeout_ms = 0;
  uint32_t max_display_rows = 0;
  bool explain = false;
  bool optimize = false;
  bool textual_join_order = false;
  // kPaths only:
  std::string paths_from;
  std::string paths_to;
  uint8_t paths_mode = 0;  // 0 all, 1 shortest, 2 simple, 3 trail
  uint32_t k_shortest = 0;
};

/// A blocking client for the wire protocol: one connection, one request
/// at a time. Used by `gqzoo_batch --connect`, the server benchmark, and
/// the server tests. Move-only (owns the socket).
class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `host`:`port` (host is a dotted-quad or "localhost").
  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Establishes the session: tenant id, default language (empty keeps
  /// the server default), default per-query timeout.
  Result<bool> Hello(const std::string& tenant,
                     const std::string& default_language = "",
                     uint32_t default_timeout_ms = 0);

  /// Runs one query; `on_chunk` (may be null) receives each ROWS chunk as
  /// it arrives — the concatenation is byte-identical to the in-process
  /// response text. Returning false from `on_chunk` sends CANCEL and
  /// drains the stream. Server-side errors come back as the DoneStatus
  /// (ok == false), not as a Result error; Result errors mean the
  /// connection itself failed.
  Result<DoneStatus> Query(
      const std::string& text, const ClientQueryOptions& options = {},
      const std::function<bool(std::string_view)>& on_chunk = nullptr);

  /// Sends a QUERY frame without waiting for the response — the send half
  /// of `Query`, for callers that want to disconnect or cancel while the
  /// query runs (the server tests exercise exactly that).
  Result<bool> StartQuery(const std::string& text,
                          const ClientQueryOptions& options = {});

  /// Applies a batch of mutation lines (shell syntax). On success,
  /// `num_rows` carries the number of ops applied — and the DONE is the
  /// durability ack.
  Result<DoneStatus> Mutate(const std::vector<std::string>& ops);

  /// Fetches the server's stats report (engine metrics + tenant counts).
  Result<std::string> Stats();

  /// Sends a CANCEL frame without reading a response — for cancelling a
  /// query mid-stream from another thread.
  Result<bool> SendCancel();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace server
}  // namespace gqzoo

#endif  // GQZOO_SERVER_CLIENT_H_
