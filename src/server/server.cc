#include "src/server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

#include "src/graph/delta/delta.h"

namespace gqzoo {
namespace server {

namespace {

/// RowSink that forwards each chunk as a ROWS frame. A failed write
/// (peer vanished mid-stream) returns false, which makes the engine
/// abandon the stream and cancel the query.
class SocketSink : public RowSink {
 public:
  SocketSink(int fd, MetricsRegistry* metrics)
      : fd_(fd), metrics_(metrics) {}

  bool Write(std::string_view chunk) override {
    if (!WriteFrame(fd_, FrameType::kRows, chunk).ok()) return false;
    metrics_->server_stream_chunks.Increment();
    metrics_->server_stream_bytes.Increment(chunk.size());
    return true;
  }

 private:
  int fd_;
  MetricsRegistry* metrics_;
};

DoneStatus ErrorDone(ErrorCode code, std::string message) {
  DoneStatus status;
  status.ok = false;
  status.code = code;
  status.message = std::move(message);
  return status;
}

}  // namespace

GraphServer::GraphServer(QueryEngine* engine, ServerOptions options)
    : engine_(engine), options_(options), quotas_(options.quota) {}

GraphServer::~GraphServer() { Shutdown(); }

Result<bool> GraphServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Error(ErrorCode::kUnavailable,
                 std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd_, 64) != 0) {
    std::string err = strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCode::kUnavailable, "bind/listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
              &addr_len);
  port_ = ntohs(addr.sin_port);
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void GraphServer::AcceptLoop() {
  while (!draining_.load()) {
    if (!WaitReadable(listen_fd_, 200)) {
      // Idle tick: reap sessions whose threads have finished, so a
      // long-lived server does not accumulate dead connection state.
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done.load()) {
          (*it)->thread.join();
          close((*it)->fd);
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
      continue;
    }
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining_.load()) {
      (void)WriteFrame(fd, FrameType::kDone,
                       EncodeDone(ErrorDone(ErrorCode::kUnavailable,
                                            "server is draining")));
      close(fd);
      continue;
    }
    size_t active = active_sessions_.load();
    if (options_.max_sessions != 0 && active >= options_.max_sessions) {
      (void)WriteFrame(fd, FrameType::kDone,
                       EncodeDone(ErrorDone(ErrorCode::kOverloaded,
                                            "session limit reached")));
      close(fd);
      continue;
    }
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    active = active_sessions_.fetch_add(1) + 1;
    MetricsRegistry& metrics = engine_->metrics();
    metrics.server_sessions_total.Increment();
    metrics.server_connections.Set(active);
    metrics.server_connections_high_water.Update(active);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      session->thread = std::thread([this, raw] { Serve(raw); });
      sessions_.push_back(std::move(session));
    }
  }
}

void GraphServer::Serve(Session* session) {
  while (!stopping_.load()) {
    if (!WaitReadable(session->fd, 200)) continue;
    Result<Frame> frame = ReadFrame(session->fd);
    if (!frame.ok()) break;  // EOF or torn frame: the session is over
    bool keep_going = true;
    switch (frame.value().type) {
      case FrameType::kHello:
        HandleHello(session, frame.value().payload);
        break;
      case FrameType::kQuery:
        HandleQuery(session, frame.value().payload);
        keep_going = !session->peer_gone;
        break;
      case FrameType::kMutate:
        HandleMutate(session, frame.value().payload);
        break;
      case FrameType::kStats:
        keep_going =
            WriteFrame(session->fd, FrameType::kStatsText, StatsReport())
                .ok() &&
            WriteFrame(session->fd, FrameType::kDone,
                       EncodeDone(DoneStatus{}))
                .ok();
        break;
      case FrameType::kCancel:
        break;  // no query outstanding; nothing to cancel
      default:
        (void)WriteFrame(
            session->fd, FrameType::kDone,
            EncodeDone(ErrorDone(ErrorCode::kInvalidArgument,
                                 "unexpected frame type")));
        keep_going = false;
        break;
    }
    if (!keep_going) break;
  }
  size_t active = active_sessions_.fetch_sub(1) - 1;
  engine_->metrics().server_connections.Set(active);
  session->done.store(true);
}

void GraphServer::HandleHello(Session* session, const std::string& payload) {
  PayloadReader reader(payload);
  std::string tenant;
  std::string language;
  uint32_t timeout_ms = 0;
  reader.ReadString(&tenant);
  reader.ReadString(&language);
  reader.ReadU32(&timeout_ms);
  if (!reader.ok()) {
    (void)WriteFrame(session->fd, FrameType::kDone,
                     EncodeDone(ErrorDone(ErrorCode::kInvalidArgument,
                                          "malformed HELLO")));
    return;
  }
  if (!language.empty()) {
    Result<QueryLanguage> parsed = ParseQueryLanguage(language);
    if (!parsed.ok()) {
      (void)WriteFrame(
          session->fd, FrameType::kDone,
          EncodeDone(ErrorDone(ErrorCode::kInvalidArgument,
                               parsed.error().message())));
      return;
    }
    session->default_language = parsed.value();
  }
  if (!tenant.empty()) session->tenant = tenant;
  session->default_timeout_ms = timeout_ms;
  std::string banner;
  AppendString(&banner, "gqzoo/1 ready");
  (void)WriteFrame(session->fd, FrameType::kHelloOk, banner);
}

bool GraphServer::DecodeQuery(Session* session, const std::string& payload,
                              QueryRequest* out, std::string* error) {
  PayloadReader reader(payload);
  std::string language;
  std::string text;
  uint32_t timeout_ms = 0;
  uint32_t max_display_rows = 0;
  uint8_t flags = 0;
  std::string paths_from;
  std::string paths_to;
  uint8_t paths_mode = 0;
  uint32_t k_shortest = 0;
  reader.ReadString(&language);
  reader.ReadString(&text);
  reader.ReadU32(&timeout_ms);
  reader.ReadU32(&max_display_rows);
  reader.ReadU8(&flags);
  reader.ReadString(&paths_from);
  reader.ReadString(&paths_to);
  reader.ReadU8(&paths_mode);
  reader.ReadU32(&k_shortest);
  if (!reader.ok()) {
    *error = "malformed QUERY payload";
    return false;
  }
  QueryRequest request;
  if (language.empty()) {
    request.language = session->default_language;
  } else {
    Result<QueryLanguage> parsed = ParseQueryLanguage(language);
    if (!parsed.ok()) {
      *error = parsed.error().message();
      return false;
    }
    request.language = parsed.value();
  }
  request.text = std::move(text);
  if (timeout_ms == 0) timeout_ms = session->default_timeout_ms;
  if (timeout_ms > 0) {
    request.timeout = std::chrono::milliseconds(timeout_ms);
  }
  if (max_display_rows > 0) request.max_display_rows = max_display_rows;
  request.explain = (flags & 0x01) != 0;
  request.optimize = (flags & 0x02) != 0;
  request.textual_join_order = (flags & 0x04) != 0;
  request.paths.from = std::move(paths_from);
  request.paths.to = std::move(paths_to);
  request.paths.mode = paths_mode == 1   ? PathMode::kShortest
                       : paths_mode == 2 ? PathMode::kSimple
                       : paths_mode == 3 ? PathMode::kTrail
                                         : PathMode::kAll;
  request.paths.k_shortest = k_shortest;
  *out = std::move(request);
  return true;
}

void GraphServer::HandleQuery(Session* session, const std::string& payload) {
  MetricsRegistry& metrics = engine_->metrics();
  metrics.server_queries.Increment();
  QueryRequest request;
  std::string error;
  if (!DecodeQuery(session, payload, &request, &error)) {
    (void)WriteFrame(
        session->fd, FrameType::kDone,
        EncodeDone(ErrorDone(ErrorCode::kInvalidArgument, error)));
    return;
  }

  auto cancel = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->active_cancel = cancel;
    session->drain_cancelled = false;
  }
  // busy is published before the draining check; Shutdown sets draining
  // before scanning busy sessions, so a query racing the drain is either
  // shed here or seen (and waited for / cancelled) by the drain.
  session->busy.store(true);
  if (draining_.load()) {
    session->busy.store(false);
    metrics.server_drain_shed.Increment();
    (void)WriteFrame(session->fd, FrameType::kDone,
                     EncodeDone(ErrorDone(ErrorCode::kUnavailable,
                                          "server is draining")));
    return;
  }
  if (!quotas_.TryAcquire(session->tenant)) {
    session->busy.store(false);
    metrics.tenant_quota_shed.Increment();
    (void)WriteFrame(
        session->fd, FrameType::kDone,
        EncodeDone(ErrorDone(ErrorCode::kOverloaded,
                             "tenant quota exhausted; retry later")));
    return;
  }

  SocketSink sink(session->fd, &metrics);
  request.sink = &sink;
  request.cancel = cancel;
  std::future<Result<QueryResponse>> future =
      engine_->Submit(std::move(request));

  // The query runs on a pool thread and streams ROWS frames from there;
  // this thread watches the socket so a CANCEL frame or a disconnect
  // trips the engine's cooperative cancellation mid-evaluation.
  bool watch_socket = true;
  while (future.wait_for(std::chrono::milliseconds(20)) !=
         std::future_status::ready) {
    if (!watch_socket || !WaitReadable(session->fd, 0)) continue;
    Result<Frame> frame = ReadFrame(session->fd);
    if (!frame.ok()) {
      cancel->store(true);
      session->peer_gone = true;
      watch_socket = false;
    } else if (frame.value().type == FrameType::kCancel) {
      cancel->store(true);
      watch_socket = false;  // at most one cancel matters
    } else {
      // Pipelining during a query is a protocol violation; treat it as
      // a disconnect so the stream stops cleanly.
      cancel->store(true);
      session->peer_gone = true;
      watch_socket = false;
    }
  }
  Result<QueryResponse> result = future.get();

  bool drain_cancelled;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    drain_cancelled = session->drain_cancelled;
    session->active_cancel.reset();
  }
  session->busy.store(false);
  if (session->peer_gone) return;

  DoneStatus status;
  if (result.ok()) {
    const QueryResponse& response = result.value();
    status.num_rows = response.num_rows;
    status.truncated = response.truncated;
    status.latency_us = static_cast<uint64_t>(response.latency.count());
    // Explain output (and any sink-less text) still travels as ROWS so
    // the client sees one uniform stream.
    if (!response.text.empty()) {
      (void)WriteFrame(session->fd, FrameType::kRows, response.text);
    }
  } else {
    ErrorCode code = result.error().code();
    if (drain_cancelled && code == ErrorCode::kCancelled) {
      // The drain, not the client, cancelled this query: report it as
      // shed-by-shutdown, the same status a query refused outright gets.
      code = ErrorCode::kUnavailable;
      metrics.server_drain_shed.Increment();
    }
    status = ErrorDone(code, result.error().message());
  }
  if (!WriteFrame(session->fd, FrameType::kDone, EncodeDone(status)).ok()) {
    session->peer_gone = true;
  }
}

void GraphServer::HandleMutate(Session* session, const std::string& payload) {
  MetricsRegistry& metrics = engine_->metrics();
  metrics.server_mutations.Increment();
  PayloadReader reader(payload);
  uint32_t count = 0;
  reader.ReadU32(&count);
  MutationBatch batch;
  for (uint32_t i = 0; reader.ok() && i < count; ++i) {
    std::string line;
    if (!reader.ReadString(&line)) break;
    Result<MutationOp> op = ParseMutationOp(line);
    if (!op.ok()) {
      (void)WriteFrame(session->fd, FrameType::kDone,
                       EncodeDone(ErrorDone(op.error().code(),
                                            op.error().message())));
      return;
    }
    batch.ops.push_back(std::move(op).value());
  }
  if (!reader.ok()) {
    (void)WriteFrame(session->fd, FrameType::kDone,
                     EncodeDone(ErrorDone(ErrorCode::kInvalidArgument,
                                          "malformed MUTATE payload")));
    return;
  }

  session->busy.store(true);
  if (draining_.load()) {
    session->busy.store(false);
    metrics.server_drain_shed.Increment();
    (void)WriteFrame(session->fd, FrameType::kDone,
                     EncodeDone(ErrorDone(ErrorCode::kUnavailable,
                                          "server is draining")));
    return;
  }
  if (!quotas_.TryAcquire(session->tenant)) {
    session->busy.store(false);
    metrics.tenant_quota_shed.Increment();
    (void)WriteFrame(
        session->fd, FrameType::kDone,
        EncodeDone(ErrorDone(ErrorCode::kOverloaded,
                             "tenant quota exhausted; retry later")));
    return;
  }
  Result<QueryEngine::MutationResult> result = engine_->ApplyMutation(batch);
  session->busy.store(false);

  DoneStatus status;
  if (result.ok()) {
    // The DONE *is* the ack: once the client sees it, the write is in the
    // WAL (durably within the group-commit window — the drain flushes
    // that window before the process exits).
    status.num_rows = result.value().applied;
  } else {
    status = ErrorDone(result.error().code(), result.error().message());
  }
  (void)WriteFrame(session->fd, FrameType::kDone, EncodeDone(status));
}

std::string GraphServer::StatsReport() const {
  std::string out = engine_->StatsReport();
  std::map<std::string, TenantQuotas::TenantCounts> counts = quotas_.Counts();
  if (!counts.empty()) {
    out += "== tenants ==\n";
    char line[192];
    for (const auto& [tenant, c] : counts) {
      snprintf(line, sizeof(line), "%-24s admitted %10llu  shed %10llu\n",
               tenant.c_str(), static_cast<unsigned long long>(c.admitted),
               static_cast<unsigned long long>(c.shed));
      out += line;
    }
  }
  return out;
}

size_t GraphServer::Shutdown() {
  if (!started_.load()) return 0;
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (stopping_.load()) return 0;  // a previous drain already finished

  // Phase 1: stop accepting. The accept loop checks the flag every poll
  // tick, so the thread exits within ~200ms without a wake-up pipe.
  draining_.store(true);
  accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  // Phase 2: wait for in-flight requests, up to the drain deadline. New
  // requests arriving meanwhile are shed with kUnavailable by the
  // handlers' draining check.
  const auto deadline =
      std::chrono::steady_clock::now() + options_.drain_deadline;
  auto count_busy = [this] {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    size_t busy = 0;
    for (const auto& session : sessions_) {
      if (session->busy.load()) ++busy;
    }
    return busy;
  };
  while (count_busy() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Phase 3: shed stragglers. Cancelling through the external-cancel flag
  // trips the query at its next cooperative poll; its DONE reports
  // kUnavailable (drain_cancelled), never a hang.
  size_t sheds = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (!session->busy.load()) continue;
      std::lock_guard<std::mutex> session_lock(session->mu);
      if (session->active_cancel != nullptr) {
        session->drain_cancelled = true;
        session->active_cancel->store(true);
        ++sheds;
      }
    }
  }

  // Phase 4: stop connection threads. Idle sessions get their read side
  // shut down (instant EOF); busy ones keep the socket intact so their
  // DONE still reaches the client, and exit at the next poll tick.
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (!session->busy.load()) shutdown(session->fd, SHUT_RD);
    }
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
      close(session->fd);
      session->fd = -1;
    }
    sessions_.clear();
  }

  // Phase 5: make every acked write durable before the process exits.
  // Group commit lets a DONE precede its fsync by up to one window; this
  // closes that window.
  (void)engine_->FlushWal();
  engine_->metrics().server_connections.Set(0);
  return sheds;
}

}  // namespace server
}  // namespace gqzoo
