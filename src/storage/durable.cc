#include "src/storage/durable.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/graph/delta/merge.h"
#include "src/storage/checkpoint.h"
#include "src/storage/snapshot_format.h"
#include "src/util/failpoint.h"

namespace gqzoo::storage {

namespace {

constexpr char kWalFileName[] = "wal.log";
constexpr char kCheckpointPrefix[] = "checkpoint-";

struct CheckpointFile {
  uint64_t covered_lsn;
  std::string path;
};

// checkpoint-<decimal covered_lsn>, nothing else.
bool ParseCheckpointName(const std::string& name, uint64_t* covered_lsn) {
  constexpr size_t kPrefixLen = sizeof(kCheckpointPrefix) - 1;
  if (name.compare(0, kPrefixLen, kCheckpointPrefix) != 0) return false;
  if (name.size() == kPrefixLen) return false;
  uint64_t v = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *covered_lsn = v;
  return true;
}

// All checkpoint files in `dir`, newest (highest covered_lsn) first.
std::vector<CheckpointFile> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointFile> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t lsn = 0;
    if (ParseCheckpointName(entry.path().filename().string(), &lsn)) {
      out.push_back({lsn, entry.path().string()});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.covered_lsn > b.covered_lsn;
  });
  return out;
}

void AppendWarning(std::string* warning, const std::string& note) {
  if (!warning->empty()) *warning += "; ";
  *warning += note;
}

}  // namespace

DurableStore::DurableStore(DurabilityOptions options)
    : options_(std::move(options)),
      wal_path_(options_.dir + "/" + kWalFileName) {}

Result<DurableStore::Opened> DurableStore::Open(
    const DurabilityOptions& options, PropertyGraph initial) {
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Error(ErrorCode::kUnavailable, "cannot create durability dir '" +
                                              options.dir +
                                              "': " + ec.message());
  }

  std::unique_ptr<DurableStore> store(new DurableStore(options));
  std::vector<CheckpointFile> ckpts = ListCheckpoints(options.dir);
  Result<std::string> wal_bytes = ReadFileBytes(store->wal_path_);

  if (ckpts.empty()) {
    // Fresh directory — or a crash before initialization finished. The
    // init order is WAL first, checkpoint second, so the only legal
    // leftover here is an empty-or-magic-prefix wal.log; a WAL carrying
    // real records with no checkpoint means acked writes lost their base.
    if (wal_bytes.ok()) {
      const std::string& b = wal_bytes.value();
      std::string header = WalFileHeader();
      bool init_artifact =
          b.size() <= header.size() &&
          std::memcmp(b.data(), header.data(), b.size()) == 0;
      if (!init_artifact) {
        Result<WalDecodeResult> dec = DecodeWal(b);
        if (!dec.ok()) {
          return Error(ErrorCode::kDataLoss,
                       "durability dir '" + options.dir +
                           "' holds a WAL but no checkpoint, and the WAL "
                           "does not decode: " +
                           dec.error().message());
        }
        if (!dec.value().records.empty()) {
          return Error(ErrorCode::kDataLoss,
                       "durability dir '" + options.dir +
                           "' holds a WAL with " +
                           std::to_string(dec.value().records.size()) +
                           " records but no checkpoint to replay them onto");
        }
      }
    } else if (wal_bytes.error().code() != ErrorCode::kNotFound) {
      return wal_bytes.error();
    }
    Result<std::unique_ptr<WalFile>> wal = WalFile::Create(store->wal_path_);
    if (!wal.ok()) return wal.error();
    store->wal_ = std::move(wal).value();
    Result<bool> synced = SyncDirOf(store->wal_path_);
    if (!synced.ok()) return synced.error();
    Result<bool> ck = store->WriteCheckpoint(initial, 0, {});
    if (!ck.ok()) return ck.error();
    Opened out;
    out.store = std::move(store);
    out.graph = std::make_shared<const PropertyGraph>(std::move(initial));
    return out;
  }

  // --- Recovery ---
  RecoveryInfo info;
  info.recovered = true;
  if (!wal_bytes.ok()) {
    if (wal_bytes.error().code() == ErrorCode::kNotFound) {
      return Error(ErrorCode::kDataLoss,
                   "durability dir '" + options.dir +
                       "' holds checkpoints but no wal.log — half of the "
                       "durable state is missing");
    }
    return wal_bytes.error();
  }
  Result<WalDecodeResult> dec = DecodeWal(wal_bytes.value());
  if (!dec.ok()) return dec.error();
  WalDecodeResult wal = std::move(dec).value();
  if (wal.tail == WalTail::kTorn) {
    info.tail_truncated = true;
    AppendWarning(&info.warning, wal.warning);
  }

  // Instant restart: a clean shutdown leaves an empty WAL and a newest
  // checkpoint that covers everything, so there is nothing to replay —
  // mmap the checkpoint and serve it in place. Startup cost is the
  // checksum verification pass, not an O(|E|) rebuild, and the graph pages
  // in on demand. Any failure here (unmappable file, bad checksum, hostile
  // structure) drops through to the decode-and-rebuild path below, which
  // also knows how to fall back to older checkpoints.
  if (options.map_checkpoints && wal.records.empty() &&
      wal.tail == WalTail::kClean) {
    Result<SnapshotFile> mapped_file =
        SnapshotFile::OpenMapped(ckpts.front().path);
    Result<MappedGraph> mapped =
        mapped_file.ok() ? SnapshotCodec::Open(std::move(mapped_file).value())
                         : mapped_file.error();
    if (mapped.ok()) {
      MappedGraph m = std::move(mapped).value();
      info.checkpoint_lsn = m.covered_lsn;
      info.last_lsn = m.covered_lsn;
      info.mapped = true;
      Result<std::unique_ptr<WalFile>> wal_handle =
          WalFile::OpenForAppend(store->wal_path_, wal.valid_bytes);
      if (!wal_handle.ok()) return wal_handle.error();
      store->wal_ = std::move(wal_handle).value();
      store->next_lsn_ = m.covered_lsn + 1;
      store->checkpoint_lsn_ = m.covered_lsn;
      Opened out;
      out.graph = std::move(m.graph);
      out.snapshot = std::move(m.snapshot);
      out.stats = std::move(m.stats);
      out.info = std::move(info);
      out.store = std::move(store);
      return out;
    }
    AppendWarning(&info.warning, "mmap fast path unavailable (" +
                                     ckpts.front().path + ": " +
                                     mapped.error().message() +
                                     "); rebuilding");
  }

  // Newest checkpoint that decodes wins; unreadable ones are warned about
  // and skipped (LSN continuity below catches the case where the skipped
  // one was load-bearing).
  CheckpointData ckpt;
  bool have_ckpt = false;
  for (const CheckpointFile& cf : ckpts) {
    Result<std::string> bytes = ReadFileBytes(cf.path);
    if (!bytes.ok()) {
      AppendWarning(&info.warning, cf.path + ": " + bytes.error().message());
      continue;
    }
    Result<CheckpointData> d = DecodeCheckpoint(bytes.value());
    if (!d.ok()) {
      AppendWarning(&info.warning, cf.path + ": " + d.error().message());
      continue;
    }
    ckpt = std::move(d).value();
    have_ckpt = true;
    break;
  }
  if (!have_ckpt) {
    return Error(ErrorCode::kDataLoss,
                 "no checkpoint in '" + options.dir +
                     "' decodes (" + info.warning + ")");
  }
  info.checkpoint_lsn = ckpt.covered_lsn;

  auto base = std::make_shared<const PropertyGraph>(std::move(ckpt.graph));
  DeltaOverlay overlay(base);
  uint64_t last_lsn = ckpt.covered_lsn;
  for (const WalRecord& rec : wal.records) {
    if (rec.lsn <= ckpt.covered_lsn) continue;  // pre-rotation leftover
    if (rec.lsn != last_lsn + 1) {
      return Error(ErrorCode::kDataLoss,
                   "WAL jumps from lsn " + std::to_string(last_lsn) +
                       " to lsn " + std::to_string(rec.lsn) +
                       " — records between them are gone");
    }
    MutationBatch batch;
    batch.ops = rec.ops;
    Result<size_t> applied = overlay.Apply(batch, nullptr, nullptr);
    if (!applied.ok() || applied.value() != rec.ops.size()) {
      return Error(ErrorCode::kDataLoss,
                   "logged batch lsn " + std::to_string(rec.lsn) +
                       " fails to replay" +
                       (applied.ok() ? std::string(" completely")
                                     : ": " + applied.error().message()));
    }
    last_lsn = rec.lsn;
    ++info.batches_replayed;
    info.ops_replayed += rec.ops.size();
  }
  info.last_lsn = last_lsn;

  Result<std::unique_ptr<WalFile>> reopened =
      WalFile::OpenForAppend(store->wal_path_, wal.valid_bytes);
  if (!reopened.ok()) return reopened.error();
  store->wal_ = std::move(reopened).value();
  store->next_lsn_ = last_lsn + 1;
  store->checkpoint_lsn_ = ckpt.covered_lsn;

  // Materialize through the merger even when nothing replayed: its
  // base-id-order preseeding keeps every interner id — and therefore every
  // rendered byte — identical to the pre-crash state.
  PropertyGraph rebuilt = GraphDeltaMerger::Materialize(overlay);

  // Checkpoint-on-recovery: fold the replayed state and truncate the log,
  // making recovery idempotent and physically discarding any torn tail.
  // Skipped when the directory is already in exactly that shape.
  bool already_clean = wal.records.empty() && wal.tail == WalTail::kClean &&
                       ckpts.front().covered_lsn == ckpt.covered_lsn;
  if (!already_clean) {
    Result<bool> ck = store->WriteCheckpoint(rebuilt, last_lsn, {});
    if (!ck.ok()) return ck.error();
  }

  Opened out;
  out.graph = std::make_shared<const PropertyGraph>(std::move(rebuilt));
  out.info = std::move(info);
  out.store = std::move(store);
  return out;
}

Result<uint64_t> DurableStore::AppendBatch(const std::vector<MutationOp>& ops) {
  if (broken_) {
    return Error(ErrorCode::kUnavailable,
                 "durable store is broken after an earlier write failure; "
                 "restart to recover");
  }
  uint64_t lsn = next_lsn_;
  WalFileOptions wopts;
  wopts.fsync = options_.fsync;
  wopts.group_commit_window_ms = options_.group_commit_window_ms;
  Result<bool> appended = wal_->Append(lsn, ops, wopts);
  if (!appended.ok()) {
    broken_ = true;
    return appended.error();
  }
  next_lsn_ = lsn + 1;
  return lsn;
}

Result<bool> DurableStore::WriteCheckpoint(
    const PropertyGraph& base, uint64_t covered_lsn,
    const std::vector<WalRecord>& residual) {
  if (broken_) {
    return Error(ErrorCode::kUnavailable,
                 "durable store is broken after an earlier write failure; "
                 "restart to recover");
  }
  Result<bool> r = WriteCheckpointImpl(base, covered_lsn, residual);
  if (!r.ok()) broken_ = true;
  return r;
}

Result<bool> DurableStore::WriteCheckpointImpl(
    const PropertyGraph& base, uint64_t covered_lsn,
    const std::vector<WalRecord>& residual) {
  // 1. Checkpoint: write-temp → fsync → rename → fsync(dir).
  std::string image = EncodeCheckpoint(base, covered_lsn);
  std::string final_path =
      options_.dir + "/" + kCheckpointPrefix + std::to_string(covered_lsn);
  std::string tmp_path = final_path + ".tmp";
  Result<bool> wrote =
      WriteFileDurably(tmp_path, image, "storage.ckpt.write.torn");
  if (!wrote.ok()) return wrote;
  if (Failpoint::ShouldFail("storage.ckpt.before_rename")) {
    Failpoint::MaybeCrash("storage.ckpt.before_rename");
    return Error(ErrorCode::kUnavailable,
                 "injected checkpoint failure (storage.ckpt.before_rename)");
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Error(ErrorCode::kUnavailable, "cannot publish checkpoint '" +
                                              final_path +
                                              "': " + std::strerror(errno));
  }
  Result<bool> synced = SyncDirOf(final_path);
  if (!synced.ok()) return synced;
  if (Failpoint::ShouldFail("storage.ckpt.after_rename")) {
    Failpoint::MaybeCrash("storage.ckpt.after_rename");
    return Error(ErrorCode::kUnavailable,
                 "injected checkpoint failure (storage.ckpt.after_rename)");
  }

  // 2. Rotate the WAL down to the residual records, same dance. The old
  //    log stays live until the rename, so a crash anywhere in between
  //    recovers from {new checkpoint, old WAL} — replay just skips the
  //    records the checkpoint already covers.
  std::string wal_image = WalFileHeader();
  for (const WalRecord& rec : residual) {
    AppendWalRecord(&wal_image, rec.lsn, rec.ops);
  }
  wal_.reset();  // close the old append handle before replacing the file
  std::string wal_tmp = wal_path_ + ".tmp";
  wrote = WriteFileDurably(wal_tmp, wal_image, "storage.wal.rotate.torn");
  if (!wrote.ok()) return wrote;
  if (Failpoint::ShouldFail("storage.wal.rotate.before_rename")) {
    Failpoint::MaybeCrash("storage.wal.rotate.before_rename");
    return Error(ErrorCode::kUnavailable,
                 "injected rotate failure (storage.wal.rotate.before_rename)");
  }
  if (std::rename(wal_tmp.c_str(), wal_path_.c_str()) != 0) {
    return Error(ErrorCode::kUnavailable, "cannot publish rotated WAL '" +
                                              wal_path_ +
                                              "': " + std::strerror(errno));
  }
  synced = SyncDirOf(wal_path_);
  if (!synced.ok()) return synced;
  if (Failpoint::ShouldFail("storage.wal.rotate.after_rename")) {
    Failpoint::MaybeCrash("storage.wal.rotate.after_rename");
    return Error(ErrorCode::kUnavailable,
                 "injected rotate failure (storage.wal.rotate.after_rename)");
  }
  Result<std::unique_ptr<WalFile>> reopened =
      WalFile::OpenForAppend(wal_path_, wal_image.size());
  if (!reopened.ok()) return reopened.error();
  wal_ = std::move(reopened).value();

  checkpoint_lsn_ = covered_lsn;
  ++checkpoints_written_;
  PruneCheckpoints(covered_lsn);
  return true;
}

void DurableStore::PruneCheckpoints(uint64_t current_lsn) {
  // Best-effort: a leftover file costs disk, not correctness.
  std::vector<CheckpointFile> ckpts = ListCheckpoints(options_.dir);
  size_t kept = 0;
  for (const CheckpointFile& cf : ckpts) {
    if (cf.covered_lsn > current_lsn || ++kept <= options_.keep_checkpoints) {
      continue;
    }
    std::remove(cf.path.c_str());
  }
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::remove(entry.path().string().c_str());
    }
  }
}

Result<bool> DurableStore::Sync() {
  if (broken_) {
    return Error(ErrorCode::kUnavailable,
                 "durable store is broken after an earlier write failure");
  }
  Result<bool> s = wal_->Sync();
  if (!s.ok()) broken_ = true;
  return s;
}

}  // namespace gqzoo::storage
