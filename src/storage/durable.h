#ifndef GQZOO_STORAGE_DURABLE_H_
#define GQZOO_STORAGE_DURABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/storage/wal.h"
#include "src/util/result.h"

namespace gqzoo {
class GraphSnapshot;
class SnapshotStats;
}  // namespace gqzoo

namespace gqzoo::storage {

/// Durability knobs, embedded in `QueryEngine::Options`.
struct DurabilityOptions {
  /// Directory holding `wal.log` + `checkpoint-<covered_lsn>` files. Empty
  /// disables durability entirely (the engine stays RAM-only).
  std::string dir;
  /// fsync the WAL on commit. Off trades OS-crash durability for speed.
  bool fsync = true;
  /// > 0 enables group commit: acked writes are fsynced at most once per
  /// window, bounding loss after a crash to one window.
  uint32_t group_commit_window_ms = 0;
  /// Checkpoint files retained (newest first); older ones are pruned after
  /// each successful checkpoint.
  size_t keep_checkpoints = 2;
  /// On a clean restart (empty WAL, intact newest checkpoint), mmap the
  /// checkpoint and serve it in place instead of decoding and rebuilding —
  /// time-to-first-query becomes O(verify) instead of O(rebuild), and
  /// graphs larger than RAM page on demand. Any mapping or validation
  /// failure silently falls back to the rebuild path.
  bool map_checkpoints = true;
};

/// What `DurableStore::Open` found and did. Surfaced through
/// `QueryEngine::recovery_info()` and the shell's startup banner.
struct RecoveryInfo {
  /// False when the directory was empty (fresh initialization).
  bool recovered = false;
  uint64_t checkpoint_lsn = 0;  // covered_lsn of the checkpoint loaded
  uint64_t last_lsn = 0;        // highest LSN made live
  uint64_t batches_replayed = 0;
  uint64_t ops_replayed = 0;
  /// A torn tail was detected and truncated (crash mid-append; the cut
  /// records were never acked).
  bool tail_truncated = false;
  /// The checkpoint was memory-mapped and served in place (the instant
  /// restart path) rather than decoded into a rebuilt graph.
  bool mapped = false;
  /// Human-readable notes: torn-tail details, checkpoint fallbacks.
  std::string warning;
};

/// One durability directory: a write-ahead log plus checkpoint files.
///
/// Layout and invariants:
///   * `wal.log` exists from initialization on; a directory holding
///     checkpoints but no WAL (or vice versa with logged records) is
///     `kDataLoss` — half of the durable state is gone.
///   * `checkpoint-<C>` covers every write with lsn ≤ C; the WAL holds the
///     records with lsn > C (plus possibly a few ≤ C that a crash left
///     behind before rotation — recovery skips those).
///   * All file replacement goes through write-temp → fsync → rename →
///     fsync(dir), so a crash never leaves a half-written file under a
///     live name; only the WAL's appended tail can be torn.
///
/// Recovery (`Open` on a non-empty dir): when the WAL is empty and clean,
/// the newest checkpoint is simply mmap'd and served in place (instant
/// restart — see `DurabilityOptions::map_checkpoints`). Otherwise: load
/// the newest checkpoint that decodes (falling back to older ones with a
/// warning), replay the WAL tail through a `DeltaOverlay`, verify LSN
/// continuity against the checkpoint, then write a fresh checkpoint +
/// empty WAL so recovery is idempotent and torn tails are physically
/// removed. Torn tail ⇒ truncate + warn; anything else wrong ⇒
/// `kDataLoss`, refuse to serve.
///
/// Not thread-safe; the engine serializes all calls behind its write lock.
class DurableStore {
 public:
  struct Opened {
    std::unique_ptr<DurableStore> store;
    /// The recovered graph (or `initial` when the directory was fresh).
    /// On the mapped fast path its accessors read the checkpoint file in
    /// place; otherwise it is a plain rebuilt graph.
    std::shared_ptr<const PropertyGraph> graph;
    /// Set only on the mapped fast path (`info.mapped`): the CSR snapshot
    /// and planner statistics loaded straight from the checkpoint, so the
    /// engine can skip its O(|E|) snapshot build too.
    std::shared_ptr<const GraphSnapshot> snapshot;
    std::shared_ptr<const SnapshotStats> stats;
    RecoveryInfo info;
  };

  /// Opens `options.dir` (creating it if needed). A fresh directory is
  /// initialized to checkpoint(`initial`, covered_lsn = 0) + empty WAL.
  static Result<Opened> Open(const DurabilityOptions& options,
                             PropertyGraph initial);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Logs one applied batch; returns its LSN. Called *before* the write is
  /// published. Any failure marks the store broken: every later call fails
  /// `kUnavailable` until the process restarts and recovers.
  Result<uint64_t> AppendBatch(const std::vector<MutationOp>& ops);

  /// Writes a checkpoint of `base` covering `covered_lsn` and rewrites the
  /// WAL to hold exactly `residual` (records > covered_lsn that are not in
  /// `base`), then prunes old checkpoints. The compactor calls this with
  /// its folded base; `SetGraph` and recovery call it with an empty
  /// residual.
  Result<bool> WriteCheckpoint(const PropertyGraph& base, uint64_t covered_lsn,
                               const std::vector<WalRecord>& residual);

  /// Flushes any unsynced acked writes (group-commit flush / shutdown).
  Result<bool> Sync();

  /// LSN the next AppendBatch will use.
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  uint64_t checkpoints_written() const { return checkpoints_written_; }
  uint64_t wal_bytes() const { return wal_ ? wal_->bytes() : 0; }
  uint64_t wal_records() const { return wal_ ? wal_->appended_records() : 0; }
  uint64_t wal_syncs() const { return wal_ ? wal_->syncs() : 0; }
  bool broken() const { return broken_; }
  const DurabilityOptions& options() const { return options_; }

 private:
  explicit DurableStore(DurabilityOptions options);

  Result<bool> WriteCheckpointImpl(const PropertyGraph& base,
                                   uint64_t covered_lsn,
                                   const std::vector<WalRecord>& residual);
  void PruneCheckpoints(uint64_t current_lsn);

  DurabilityOptions options_;
  std::string wal_path_;
  std::unique_ptr<WalFile> wal_;
  uint64_t next_lsn_ = 1;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t checkpoints_written_ = 0;
  /// Atomic: probed off-lock by the engine's compaction scheduling.
  std::atomic<bool> broken_{false};
};

}  // namespace gqzoo::storage

#endif  // GQZOO_STORAGE_DURABLE_H_
