#ifndef GQZOO_STORAGE_CRC32C_H_
#define GQZOO_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gqzoo::storage {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum the
/// WAL and checkpoint file formats use. Software slicing-by-4 table
/// implementation — no hardware intrinsics, so the on-disk format is
/// identical on every build.
uint32_t Crc32c(const void* data, size_t len);

/// Extends `crc` (a finished Crc32c value) over more bytes, as if the two
/// ranges had been checksummed contiguously: Crc32cExtend(Crc32c(a), b) ==
/// Crc32c(a ++ b). Checkpoint encoding uses this to cover non-adjacent
/// header fields and payload with one checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

}  // namespace gqzoo::storage

#endif  // GQZOO_STORAGE_CRC32C_H_
