#include "src/storage/crc32c.h"

namespace gqzoo::storage {

namespace {

// 4 slicing tables, generated once at first use. Table 0 is the classic
// byte-at-a-time table; table k folds a zero byte k positions later.
struct Crc32cTables {
  uint32_t t[4][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 4; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

uint32_t Crc32cExtend(uint32_t crc_in, const void* data, size_t len) {
  const Crc32cTables& tb = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = crc_in ^ 0xFFFFFFFFu;
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFF] ^ tb.t[2][(crc >> 8) & 0xFF] ^
          tb.t[1][(crc >> 16) & 0xFF] ^ tb.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len--) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace gqzoo::storage
