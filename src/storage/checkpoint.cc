#include "src/storage/checkpoint.h"

#include <cstring>

#include "src/storage/crc32c.h"

namespace gqzoo::storage {

namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
               static_cast<char>((v >> 16) & 0xFF),
               static_cast<char>((v >> 24) & 0xFF)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  if (v.is_int()) {
    PutU8(out, 0);
    PutU64(out, static_cast<uint64_t>(v.as_int()));
  } else if (v.is_double()) {
    PutU8(out, 1);
    uint64_t bits;
    double d = v.as_double();
    std::memcpy(&bits, &d, sizeof(bits));
    PutU64(out, bits);
  } else if (v.is_string()) {
    PutU8(out, 2);
    PutStr(out, v.as_string());
  } else {
    PutU8(out, 3);
    PutU8(out, v.as_bool() ? 1 : 0);
  }
}

void PutObjectProps(std::string* out, const PropertyGraph& g, ObjectRef obj) {
  auto props = g.PropertiesOf(obj);  // sorted by PropertyId
  PutU32(out, static_cast<uint32_t>(props.size()));
  for (const auto& [pid, value] : props) {
    PutU32(out, pid);
    PutValue(out, value);
  }
}

// Bounds-checked forward reader over the payload. Every Get sets `failed`
// instead of reading past the end; callers check once per object.
struct Cursor {
  std::string_view data;
  size_t pos = 0;
  bool failed = false;

  bool Have(size_t n) {
    if (data.size() - pos < n) {
      failed = true;
      return false;
    }
    return true;
  }
  uint8_t GetU8() {
    if (!Have(1)) return 0;
    return static_cast<uint8_t>(data[pos++]);
  }
  uint32_t GetU32() {
    if (!Have(4)) return 0;
    uint32_t v = static_cast<uint32_t>(static_cast<uint8_t>(data[pos])) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 1]))
                  << 8) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 2]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 3]))
                  << 24);
    pos += 4;
    return v;
  }
  uint64_t GetU64() {
    uint64_t lo = GetU32();
    return lo | (static_cast<uint64_t>(GetU32()) << 32);
  }
  std::string GetStr() {
    uint32_t len = GetU32();
    if (!Have(len)) return {};
    std::string s(data.substr(pos, len));
    pos += len;
    return s;
  }
  Value GetValue() {
    switch (GetU8()) {
      case 0:
        return Value(static_cast<int64_t>(GetU64()));
      case 1: {
        uint64_t bits = GetU64();
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        return Value(d);
      }
      case 2:
        return Value(GetStr());
      case 3:
        return Value(GetU8() != 0);
      default:
        failed = true;
        return Value();
    }
  }
};

Error Corrupt(const std::string& what) {
  return Error(ErrorCode::kDataLoss, "checkpoint corrupt: " + what);
}

}  // namespace

std::string EncodeCheckpoint(const PropertyGraph& g, uint64_t covered_lsn) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(g.skeleton().NumLabels()));
  for (LabelId l = 0; l < g.skeleton().NumLabels(); ++l) {
    PutStr(&payload, g.LabelName(l));
  }
  PutU32(&payload, static_cast<uint32_t>(g.NumProperties()));
  for (PropertyId p = 0; p < g.NumProperties(); ++p) {
    PutStr(&payload, g.PropertyName(p));
  }
  PutU64(&payload, g.NumNodes());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    PutStr(&payload, g.NodeName(n));
    PutU32(&payload, g.NodeLabel(n));
    PutObjectProps(&payload, g, ObjectRef::Node(n));
  }
  PutU64(&payload, g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    PutStr(&payload, g.EdgeName(e));
    PutU32(&payload, g.Src(e));
    PutU32(&payload, g.Tgt(e));
    PutU32(&payload, g.EdgeLabel(e));
    PutObjectProps(&payload, g, ObjectRef::Edge(e));
  }

  std::string out;
  out.append(kCheckpointMagic, kCheckpointMagicBytes);
  PutU64(&out, covered_lsn);
  PutU64(&out, payload.size());
  // The checksum covers covered_lsn and payload_len too — a flipped bit in
  // the header would otherwise change which LSNs the file claims to cover
  // without tripping anything.
  uint32_t crc = Crc32c(out.data() + kCheckpointMagicBytes, 16);
  PutU32(&out, Crc32cExtend(crc, payload.data(), payload.size()));
  out.append(payload);
  return out;
}

Result<CheckpointData> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kCheckpointHeaderBytes ||
      std::memcmp(bytes.data(), kCheckpointMagic, kCheckpointMagicBytes) != 0) {
    return Corrupt("missing or damaged magic/header");
  }
  Cursor hdr{bytes.substr(kCheckpointMagicBytes), 0, false};
  uint64_t covered_lsn = hdr.GetU64();
  uint64_t payload_len = hdr.GetU64();
  uint32_t crc = hdr.GetU32();
  std::string_view payload = bytes.substr(kCheckpointHeaderBytes);
  if (payload.size() != payload_len) {
    return Corrupt("payload is " + std::to_string(payload.size()) +
                   " bytes, header declares " + std::to_string(payload_len));
  }
  uint32_t expect = Crc32c(bytes.data() + kCheckpointMagicBytes, 16);
  expect = Crc32cExtend(expect, payload.data(), payload.size());
  if (expect != crc) return Corrupt("header/payload checksum mismatch");

  // The payload checksummed clean, so structural failures below indicate an
  // encoder/decoder version skew or a CRC collision — either way kDataLoss.
  Cursor c{payload, 0, false};
  CheckpointData out;
  out.covered_lsn = covered_lsn;
  PropertyGraph& g = out.graph;

  uint32_t n_labels = c.GetU32();
  // Each table entry costs at least its 4-byte length prefix; reject counts
  // the payload cannot possibly hold before looping (same below).
  if (n_labels > payload.size() / 4 + 1) {
    return Corrupt("label count implausible");
  }
  std::vector<std::string> labels;
  for (uint32_t i = 0; i < n_labels && !c.failed; ++i) {
    labels.push_back(c.GetStr());
    LabelId id = g.InternLabel(labels.back());
    if (id != i) return Corrupt("duplicate label name in table");
  }
  uint32_t n_props = c.GetU32();
  if (n_props > payload.size() / 4 + 1) {
    return Corrupt("property count implausible");
  }
  std::vector<std::string> props;
  for (uint32_t i = 0; i < n_props && !c.failed; ++i) {
    props.push_back(c.GetStr());
    PropertyId id = g.InternProperty(props.back());
    if (id != i) return Corrupt("duplicate property name in table");
  }
  if (c.failed) return Corrupt("string tables overrun payload");

  auto read_props = [&](ObjectRef obj) -> bool {
    uint32_t n = c.GetU32();
    for (uint32_t i = 0; i < n && !c.failed; ++i) {
      uint32_t pid = c.GetU32();
      Value v = c.GetValue();
      if (c.failed || pid >= props.size()) {
        c.failed = true;
        return false;
      }
      g.SetProperty(obj, props[pid], std::move(v));
    }
    return !c.failed;
  };

  uint64_t n_nodes = c.GetU64();
  // Each node costs at least 4 (name len) + 4 (label) + 4 (prop count)
  // bytes; reject counts the payload cannot possibly hold before looping.
  if (n_nodes > payload.size() / 12 + 1) return Corrupt("node count implausible");
  for (uint64_t n = 0; n < n_nodes; ++n) {
    std::string name = c.GetStr();
    uint32_t label = c.GetU32();
    if (c.failed || label >= labels.size()) {
      return Corrupt("node " + std::to_string(n) + " is malformed");
    }
    if (g.FindNode(name).has_value()) {
      return Corrupt("duplicate node name '" + name + "'");
    }
    NodeId id = g.AddNode(name, labels[label]);
    if (!read_props(ObjectRef::Node(id))) {
      return Corrupt("node " + std::to_string(n) + " properties malformed");
    }
  }
  uint64_t n_edges = c.GetU64();
  if (n_edges > payload.size() / 16 + 1) return Corrupt("edge count implausible");
  for (uint64_t e = 0; e < n_edges; ++e) {
    std::string name = c.GetStr();
    uint32_t src = c.GetU32();
    uint32_t tgt = c.GetU32();
    uint32_t label = c.GetU32();
    if (c.failed || label >= labels.size() || src >= g.NumNodes() ||
        tgt >= g.NumNodes()) {
      return Corrupt("edge " + std::to_string(e) + " is malformed");
    }
    if (!name.empty() && g.FindEdge(name).has_value()) {
      return Corrupt("duplicate edge name '" + name + "'");
    }
    EdgeId id = g.AddEdge(src, tgt, labels[label], name);
    if (!read_props(ObjectRef::Edge(id))) {
      return Corrupt("edge " + std::to_string(e) + " properties malformed");
    }
  }
  if (c.pos != payload.size()) {
    return Corrupt(std::to_string(payload.size() - c.pos) +
                   " trailing bytes after the edge table");
  }
  return out;
}

}  // namespace gqzoo::storage
