#include "src/storage/checkpoint.h"

#include "src/storage/snapshot_format.h"

namespace gqzoo::storage {

std::string EncodeCheckpoint(const PropertyGraph& g, uint64_t covered_lsn) {
  return SnapshotCodec::EncodeSnapshot(g, covered_lsn);
}

Result<CheckpointData> DecodeCheckpoint(std::string_view bytes) {
  Result<SnapshotCodec::DecodedSnapshot> decoded =
      SnapshotCodec::DecodeToPlain(bytes);
  if (!decoded.ok()) return decoded.error();
  CheckpointData out;
  out.graph = std::move(decoded.value().graph);
  out.covered_lsn = decoded.value().covered_lsn;
  return out;
}

}  // namespace gqzoo::storage
