#include "src/storage/snapshot_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/storage/crc32c.h"

namespace gqzoo::storage {

static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "the snapshot format stores arrays raw; big-endian hosts "
              "would need byte-swapping codecs");

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

template <typename T>
std::string RawBytes(const T* data, size_t count) {
  return std::string(reinterpret_cast<const char*>(data), count * sizeof(T));
}

template <typename T>
std::string RawBytes(const std::vector<T>& v) {
  return RawBytes(v.data(), v.size());
}

Error Corrupt(const std::string& what) {
  return Error(ErrorCode::kDataLoss, "snapshot corrupt: " + what);
}

/// Serializes `count` strings produced by `name_of(i)` as an offsets array
/// plus a character heap.
template <typename NameFn>
void EncodeNames(size_t count, NameFn&& name_of, std::string* offsets,
                 std::string* heap) {
  uint64_t at = 0;
  PutU64(offsets, 0);
  for (size_t i = 0; i < count; ++i) {
    std::string_view name = name_of(i);
    heap->append(name.data(), name.size());
    at += name.size();
    PutU64(offsets, at);
  }
}

/// Ids 0..count-1 sorted by their display name (the mapped-mode
/// find-by-name index).
template <typename NameFn>
std::vector<uint32_t> IdsByName(size_t count, NameFn&& name_of) {
  std::vector<uint32_t> ids(count);
  std::iota(ids.begin(), ids.end(), 0u);
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    return name_of(a) < name_of(b);
  });
  return ids;
}

/// Checks that `offsets` is a valid name directory over a heap of
/// `heap_size` bytes: starts at zero, never decreases, ends at the heap end.
bool ValidNameOffsets(const ConstSpan<uint64_t>& offsets, size_t expect_count,
                      size_t heap_size) {
  if (offsets.size() != expect_count + 1) return false;
  if (offsets[0] != 0) return false;
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i + 1] < offsets[i]) return false;
  }
  return offsets.back() == heap_size;
}

bool MonotoneEndingAt(const ConstSpan<uint32_t>& begin, size_t expect_count,
                      uint64_t total) {
  if (begin.size() != expect_count + 1) return false;
  if (begin[0] != 0) return false;
  for (size_t i = 0; i + 1 < begin.size(); ++i) {
    if (begin[i + 1] < begin[i]) return false;
  }
  return begin.back() == total;
}

struct MmapPin {
  void* addr = nullptr;
  size_t length = 0;
  ~MmapPin() {
    if (addr != nullptr) ::munmap(addr, length);
  }
};

/// Everything a mapped epoch keeps alive. The aliasing shared_ptrs in
/// `MappedGraph` all point into one heap-allocated bundle, so the graph,
/// snapshot, stats and file mapping share one lifetime.
struct Bundle {
  PropertyGraph graph;
  std::unique_ptr<GraphSnapshot> snapshot;
  std::unique_ptr<SnapshotStats> stats;
};

}  // namespace

std::string BuildSnapshotHeader(std::vector<SnapshotRegion>* regions) {
  uint64_t at = kSnapshotHeaderBytes +
                regions->size() * kSnapshotRegionEntryBytes;
  for (SnapshotRegion& r : *regions) {
    r.offset = at;
    at += SnapshotAlign8(r.length);
  }
  std::string table;
  table.reserve(regions->size() * kSnapshotRegionEntryBytes);
  for (const SnapshotRegion& r : *regions) {
    PutU64(&table, r.id);
    PutU64(&table, r.offset);
    PutU64(&table, r.length);
    PutU64(&table, r.crc);
  }

  std::string out;
  out.reserve(kSnapshotHeaderBytes + table.size());
  out.append(kSnapshotMagic, kSnapshotMagicBytes);
  PutU32(&out, kSnapshotFormatVersion);
  PutU32(&out, static_cast<uint32_t>(regions->size()));
  // The header checksum covers every pre-region byte except the magic and
  // itself: version, count, reserved, and the whole region table.
  const uint32_t reserved = 0;
  uint32_t crc = Crc32c(out.data() + kSnapshotMagicBytes, 8);
  crc = Crc32cExtend(crc, &reserved, 4);
  crc = Crc32cExtend(crc, table.data(), table.size());
  PutU32(&out, crc);
  PutU32(&out, reserved);
  out.append(table);
  return out;
}

std::string AssembleSnapshot(
    const std::vector<std::pair<uint64_t, std::string>>& regions) {
  static const char kPad[8] = {0};
  std::vector<SnapshotRegion> table(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    const std::string& payload = regions[i].second;
    table[i].id = regions[i].first;
    table[i].length = payload.size();
    uint32_t crc = Crc32c(payload.data(), payload.size());
    size_t pad = SnapshotAlign8(payload.size()) - payload.size();
    table[i].crc = Crc32cExtend(crc, kPad, pad);
  }
  std::string out = BuildSnapshotHeader(&table);
  size_t total = table.empty() ? out.size()
                               : table.back().offset +
                                     SnapshotAlign8(table.back().length);
  out.reserve(total);
  for (const auto& [id, payload] : regions) {
    out.append(payload);
    out.append(SnapshotAlign8(payload.size()) - payload.size(), '\0');
  }
  return out;
}

Result<SnapshotFile> SnapshotFile::Validate(std::shared_ptr<const void> pin,
                                            std::string_view data,
                                            bool verify_crcs) {
  if (data.size() < kSnapshotHeaderBytes ||
      std::memcmp(data.data(), kSnapshotMagic, kSnapshotMagicBytes) != 0) {
    return Corrupt("missing or damaged magic");
  }
  const char* p = data.data() + kSnapshotMagicBytes;
  uint32_t version = ReadU32(p);
  uint32_t count = ReadU32(p + 4);
  uint32_t stored_crc = ReadU32(p + 8);
  uint32_t reserved = ReadU32(p + 12);
  if (version != kSnapshotFormatVersion) {
    return Corrupt("format version " + std::to_string(version) +
                   ", this build reads version " +
                   std::to_string(kSnapshotFormatVersion));
  }
  const size_t table_at = kSnapshotHeaderBytes;
  if (count > (data.size() - table_at) / kSnapshotRegionEntryBytes) {
    return Corrupt("region table overruns the file");
  }
  const size_t table_bytes = count * kSnapshotRegionEntryBytes;
  uint32_t crc = Crc32c(p, 8);
  crc = Crc32cExtend(crc, &reserved, 4);
  crc = Crc32cExtend(crc, data.data() + table_at, table_bytes);
  if (crc != stored_crc) return Corrupt("header checksum mismatch");

  SnapshotFile out;
  out.table_.resize(count);
  uint64_t expect = table_at + table_bytes;
  for (uint32_t i = 0; i < count; ++i) {
    const char* e = data.data() + table_at + i * kSnapshotRegionEntryBytes;
    SnapshotRegion& r = out.table_[i];
    r.id = ReadU64(e);
    r.offset = ReadU64(e + 8);
    r.length = ReadU64(e + 16);
    r.crc = ReadU64(e + 24);
    if (r.offset != expect) {
      return Corrupt("region " + std::to_string(r.id) +
                     " is not at its declared offset");
    }
    if (r.length > data.size() - r.offset) {
      return Corrupt("region " + std::to_string(r.id) +
                     " overruns the file");
    }
    expect += SnapshotAlign8(r.length);
  }
  if (expect != data.size()) {
    return Corrupt("file is " + std::to_string(data.size()) +
                   " bytes, regions account for " + std::to_string(expect));
  }
  if (verify_crcs) {
    for (const SnapshotRegion& r : out.table_) {
      uint32_t got = Crc32c(data.data() + r.offset, SnapshotAlign8(r.length));
      if (got != static_cast<uint32_t>(r.crc)) {
        return Corrupt("region " + std::to_string(r.id) +
                       " checksum mismatch");
      }
    }
  }
  out.pin_ = std::move(pin);
  out.data_ = data;
  return out;
}

Result<SnapshotFile> SnapshotFile::OpenMapped(const std::string& path,
                                              bool verify_crcs) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Error(ErrorCode::kGeneric, "cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Corrupt("empty file " + path);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Error(ErrorCode::kGeneric, "mmap failed for " + path);
  }
  auto owner = std::make_shared<MmapPin>();
  owner->addr = addr;
  owner->length = size;
  return Validate(owner,
                  std::string_view(static_cast<const char*>(addr), size),
                  verify_crcs);
}

Result<SnapshotFile> SnapshotFile::FromBytes(std::string bytes,
                                             bool verify_crcs) {
  auto owner = std::make_shared<std::string>(std::move(bytes));
  return Validate(owner, std::string_view(*owner), verify_crcs);
}

std::string_view SnapshotFile::Region(uint64_t id) const {
  for (const SnapshotRegion& r : table_) {
    if (r.id == id) return data_.substr(r.offset, r.length);
  }
  return {};
}

std::string SnapshotCodec::EncodeSnapshot(const PropertyGraph& g,
                                          uint64_t covered_lsn) {
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);
  return EncodeSnapshot(g, snapshot, stats, covered_lsn);
}

std::string SnapshotCodec::EncodeSnapshot(const PropertyGraph& g,
                                          const GraphSnapshot& snapshot,
                                          const SnapshotStats& stats,
                                          uint64_t covered_lsn) {
  const size_t num_nodes = g.NumNodes();
  const size_t num_edges = g.NumEdges();
  const size_t num_labels = g.skeleton().NumLabels();
  const size_t num_props = g.NumProperties();

  std::vector<std::pair<uint64_t, std::string>> regions;
  auto add = [&regions](uint64_t id, std::string bytes) {
    regions.emplace_back(id, std::move(bytes));
  };

  std::string meta;
  PutU64(&meta, covered_lsn);
  PutU64(&meta, num_nodes);
  PutU64(&meta, num_edges);
  PutU64(&meta, num_labels);
  PutU64(&meta, num_props);
  PutU64(&meta, snapshot.has_node_labels() ? 1 : 0);
  add(kRegionMeta, std::move(meta));

  // Skeleton. Edges are rebuilt through accessors so overlay and mapped
  // sources serialize identically to plain ones.
  std::vector<EdgeLabeledGraph::EdgeData> edges(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    edges[e] = {g.Src(e), g.Tgt(e), g.EdgeLabel(e)};
  }
  add(kRegionEdges, RawBytes(edges));
  std::vector<LabelId> node_labels(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) node_labels[n] = g.NodeLabel(n);
  add(kRegionNodeLabels, RawBytes(node_labels));

  // Name tables: interners, display names, and the sorted find-by-name
  // indexes.
  std::string offsets, heap;
  EncodeNames(num_labels,
              [&g](size_t l) -> std::string_view {
                return g.LabelName(static_cast<LabelId>(l));
              },
              &offsets, &heap);
  add(kRegionLabelNameOffsets, std::move(offsets));
  add(kRegionLabelNameHeap, std::move(heap));
  offsets.clear();
  heap.clear();
  EncodeNames(num_props,
              [&g](size_t p) -> std::string_view {
                return g.PropertyName(static_cast<PropertyId>(p));
              },
              &offsets, &heap);
  add(kRegionPropNameOffsets, std::move(offsets));
  add(kRegionPropNameHeap, std::move(heap));
  offsets.clear();
  heap.clear();
  auto node_name = [&g](size_t n) {
    return g.NodeName(static_cast<NodeId>(n));
  };
  EncodeNames(num_nodes, node_name, &offsets, &heap);
  add(kRegionNodeNameOffsets, std::move(offsets));
  add(kRegionNodeNameHeap, std::move(heap));
  add(kRegionNodesByName, RawBytes(IdsByName(num_nodes, node_name)));
  offsets.clear();
  heap.clear();
  auto edge_name = [&g](size_t e) {
    return g.EdgeName(static_cast<EdgeId>(e));
  };
  EncodeNames(num_edges, edge_name, &offsets, &heap);
  add(kRegionEdgeNameOffsets, std::move(offsets));
  add(kRegionEdgeNameHeap, std::move(heap));
  add(kRegionEdgesByName, RawBytes(IdsByName(num_edges, edge_name)));

  // The CSR, written raw from the snapshot's views (owned or mapped alike).
  auto add_csr = [&add](const GraphSnapshot::CsrView& csr, uint64_t hops_id,
                        uint64_t begin_id, uint64_t runs_id,
                        uint64_t runs_begin_id) {
    add(hops_id, RawBytes(csr.hops.data(), csr.hops.size()));
    add(begin_id, RawBytes(csr.node_begin.data(), csr.node_begin.size()));
    add(runs_id, RawBytes(csr.runs.data(), csr.runs.size()));
    add(runs_begin_id, RawBytes(csr.runs_begin.data(), csr.runs_begin.size()));
  };
  add_csr(snapshot.out_, kRegionOutHops, kRegionOutNodeBegin, kRegionOutRuns,
          kRegionOutRunsBegin);
  add_csr(snapshot.in_, kRegionInHops, kRegionInNodeBegin, kRegionInRuns,
          kRegionInRunsBegin);
  add(kRegionLabelEdges,
      RawBytes(snapshot.label_edges_.data(), snapshot.label_edges_.size()));
  add(kRegionLabelBegin,
      RawBytes(snapshot.label_begin_.data(), snapshot.label_begin_.size()));
  add(kRegionNodesByLabel, RawBytes(snapshot.nodes_by_label_.data(),
                                    snapshot.nodes_by_label_.size()));
  add(kRegionNodesByLabelBegin,
      RawBytes(snapshot.nodes_by_label_begin_.data(),
               snapshot.nodes_by_label_begin_.size()));

  // Properties: per-object entry runs sorted by pid, node entries first,
  // then edge entries; string payloads live in the value heap.
  std::string node_begin, edge_begin, entries, value_heap;
  uint64_t entry_count = 0;
  auto add_object = [&](ObjectRef o) {
    for (auto& [pid, value] : g.PropertiesOf(o)) {
      SnapshotPropEntry entry;
      entry.pid = pid;
      if (value.is_int()) {
        entry.tag = 0;
        entry.payload = static_cast<uint64_t>(value.as_int());
      } else if (value.is_double()) {
        entry.tag = 1;
        double d = value.as_double();
        std::memcpy(&entry.payload, &d, sizeof(d));
      } else if (value.is_string()) {
        entry.tag = 2;
        const std::string& s = value.as_string();
        entry.payload = value_heap.size() |
                        (static_cast<uint64_t>(s.size()) << 32);
        value_heap.append(s);
      } else {
        entry.tag = 3;
        entry.payload = value.as_bool() ? 1 : 0;
      }
      entries.append(reinterpret_cast<const char*>(&entry), sizeof(entry));
      ++entry_count;
    }
  };
  PutU64(&node_begin, 0);
  for (NodeId n = 0; n < num_nodes; ++n) {
    add_object(ObjectRef::Node(n));
    PutU64(&node_begin, entry_count);
  }
  PutU64(&edge_begin, entry_count);
  for (EdgeId e = 0; e < num_edges; ++e) {
    add_object(ObjectRef::Edge(e));
    PutU64(&edge_begin, entry_count);
  }
  add(kRegionNodePropBegin, std::move(node_begin));
  add(kRegionEdgePropBegin, std::move(edge_begin));
  add(kRegionPropEntries, std::move(entries));
  add(kRegionValueHeap, std::move(value_heap));

  std::string stat_bytes;
  stat_bytes.reserve((4 * num_labels + 2) * 8);
  stat_bytes.append(RawBytes(stats.edge_count_));
  stat_bytes.append(RawBytes(stats.distinct_src_));
  stat_bytes.append(RawBytes(stats.distinct_tgt_));
  stat_bytes.append(RawBytes(stats.node_label_count_));
  PutU64(&stat_bytes, stats.any_src_);
  PutU64(&stat_bytes, stats.any_tgt_);
  add(kRegionStats, std::move(stat_bytes));

  return AssembleSnapshot(regions);
}

namespace {

/// Region-length bookkeeping for `Open`: every expected region must be
/// present with a length derivable from the META counts.
struct RegionCheck {
  uint64_t id;
  uint64_t expect_len;
  const char* what;
};

bool ValidHops(const ConstSpan<GraphSnapshot::Hop>& hops, size_t num_nodes,
               size_t num_edges) {
  for (const GraphSnapshot::Hop& h : hops) {
    if (h.edge >= num_edges || h.node >= num_nodes) return false;
  }
  return true;
}

}  // namespace

Result<MappedGraph> SnapshotCodec::Open(SnapshotFile file) {
  ConstSpan<uint64_t> meta = file.TypedRegion<uint64_t>(kRegionMeta);
  if (meta.size() != 6) return Corrupt("meta region malformed");
  const uint64_t covered_lsn = meta[0];
  const size_t num_nodes = meta[1];
  const size_t num_edges = meta[2];
  const size_t num_labels = meta[3];
  const size_t num_props = meta[4];
  const bool has_node_labels = meta[5] != 0;
  if (num_nodes > kInvalidId || num_edges > kInvalidId ||
      num_labels > kInvalidId || num_props > kInvalidId) {
    return Corrupt("object counts exceed the 32-bit id space");
  }

  // Pull every region through typed views and check their sizes against
  // the META counts before anything dereferences them.
  const auto hops_out = file.TypedRegion<GraphSnapshot::Hop>(kRegionOutHops);
  const auto hops_in = file.TypedRegion<GraphSnapshot::Hop>(kRegionInHops);
  const auto label_edges =
      file.TypedRegion<GraphSnapshot::Hop>(kRegionLabelEdges);
  const auto runs_out =
      file.TypedRegion<GraphSnapshot::LabelRun>(kRegionOutRuns);
  const auto runs_in = file.TypedRegion<GraphSnapshot::LabelRun>(kRegionInRuns);
  const auto edges = file.TypedRegion<EdgeLabeledGraph::EdgeData>(kRegionEdges);
  const auto node_labels = file.TypedRegion<LabelId>(kRegionNodeLabels);
  const auto entries = file.TypedRegion<SnapshotPropEntry>(kRegionPropEntries);

  struct View {
    ConstSpan<uint64_t> label_name_off, prop_name_off, node_name_off,
        edge_name_off, node_prop_begin, edge_prop_begin, stats;
    ConstSpan<uint32_t> out_begin, out_runs_begin, in_begin, in_runs_begin,
        label_begin, nodes_by_label_begin;
    ConstSpan<NodeId> nodes_by_name, nodes_by_label;
    ConstSpan<EdgeId> edges_by_name;
  } v;
  v.label_name_off = file.TypedRegion<uint64_t>(kRegionLabelNameOffsets);
  v.prop_name_off = file.TypedRegion<uint64_t>(kRegionPropNameOffsets);
  v.node_name_off = file.TypedRegion<uint64_t>(kRegionNodeNameOffsets);
  v.edge_name_off = file.TypedRegion<uint64_t>(kRegionEdgeNameOffsets);
  v.node_prop_begin = file.TypedRegion<uint64_t>(kRegionNodePropBegin);
  v.edge_prop_begin = file.TypedRegion<uint64_t>(kRegionEdgePropBegin);
  v.stats = file.TypedRegion<uint64_t>(kRegionStats);
  v.out_begin = file.TypedRegion<uint32_t>(kRegionOutNodeBegin);
  v.out_runs_begin = file.TypedRegion<uint32_t>(kRegionOutRunsBegin);
  v.in_begin = file.TypedRegion<uint32_t>(kRegionInNodeBegin);
  v.in_runs_begin = file.TypedRegion<uint32_t>(kRegionInRunsBegin);
  v.label_begin = file.TypedRegion<uint32_t>(kRegionLabelBegin);
  v.nodes_by_label_begin = file.TypedRegion<uint32_t>(kRegionNodesByLabelBegin);
  v.nodes_by_name = file.TypedRegion<NodeId>(kRegionNodesByName);
  v.nodes_by_label = file.TypedRegion<NodeId>(kRegionNodesByLabel);
  v.edges_by_name = file.TypedRegion<EdgeId>(kRegionEdgesByName);

  if (edges.size() != num_edges) return Corrupt("edge table size mismatch");
  if (node_labels.size() != num_nodes) {
    return Corrupt("node label table size mismatch");
  }
  if (v.nodes_by_name.size() != num_nodes ||
      v.edges_by_name.size() != num_edges) {
    return Corrupt("find-by-name index size mismatch");
  }
  if (hops_out.size() != num_edges || hops_in.size() != num_edges ||
      label_edges.size() != num_edges) {
    return Corrupt("CSR hop array size mismatch");
  }
  if (v.stats.size() != 4 * num_labels + 2) {
    return Corrupt("stats region size mismatch");
  }
  const std::string_view label_heap = file.Region(kRegionLabelNameHeap);
  const std::string_view prop_heap = file.Region(kRegionPropNameHeap);
  const std::string_view node_heap = file.Region(kRegionNodeNameHeap);
  const std::string_view edge_heap = file.Region(kRegionEdgeNameHeap);
  const std::string_view value_heap = file.Region(kRegionValueHeap);
  if (!ValidNameOffsets(v.label_name_off, num_labels, label_heap.size()) ||
      !ValidNameOffsets(v.prop_name_off, num_props, prop_heap.size()) ||
      !ValidNameOffsets(v.node_name_off, num_nodes, node_heap.size()) ||
      !ValidNameOffsets(v.edge_name_off, num_edges, edge_heap.size())) {
    return Corrupt("name directory malformed");
  }
  if (!MonotoneEndingAt(v.out_begin, num_nodes, num_edges) ||
      !MonotoneEndingAt(v.in_begin, num_nodes, num_edges) ||
      !MonotoneEndingAt(v.out_runs_begin, num_nodes, runs_out.size()) ||
      !MonotoneEndingAt(v.in_runs_begin, num_nodes, runs_in.size()) ||
      !MonotoneEndingAt(v.label_begin, num_labels, num_edges)) {
    return Corrupt("CSR extent array malformed");
  }
  if (has_node_labels &&
      !MonotoneEndingAt(v.nodes_by_label_begin, num_labels,
                        v.nodes_by_label.size())) {
    return Corrupt("nodes-by-label extent array malformed");
  }
  if (!ValidHops(hops_out, num_nodes, num_edges) ||
      !ValidHops(hops_in, num_nodes, num_edges) ||
      !ValidHops(label_edges, num_nodes, num_edges)) {
    return Corrupt("CSR hop out of range");
  }
  auto valid_runs = [num_labels, num_edges](
                        const ConstSpan<GraphSnapshot::LabelRun>& runs) {
    for (const GraphSnapshot::LabelRun& r : runs) {
      if (r.label >= num_labels || r.begin > r.end || r.end > num_edges) {
        return false;
      }
    }
    return true;
  };
  if (!valid_runs(runs_out) || !valid_runs(runs_in)) {
    return Corrupt("CSR label run out of range");
  }
  for (const EdgeLabeledGraph::EdgeData& e : edges) {
    if (e.src >= num_nodes || e.tgt >= num_nodes || e.label >= num_labels) {
      return Corrupt("edge endpoint or label out of range");
    }
  }
  for (LabelId l : node_labels) {
    if (l >= num_labels) return Corrupt("node label out of range");
  }
  for (NodeId n : v.nodes_by_label) {
    if (n >= num_nodes) return Corrupt("nodes-by-label id out of range");
  }
  for (NodeId n : v.nodes_by_name) {
    if (n >= num_nodes) return Corrupt("nodes-by-name id out of range");
  }
  for (EdgeId e : v.edges_by_name) {
    if (e >= num_edges) return Corrupt("edges-by-name id out of range");
  }
  // Node extents start at 0 and edge extents continue where they end; the
  // combined directory must be monotone and cover the entry table exactly.
  if (v.node_prop_begin.size() != num_nodes + 1 ||
      v.edge_prop_begin.size() != num_edges + 1 ||
      v.node_prop_begin[0] != 0 ||
      v.edge_prop_begin[0] != v.node_prop_begin.back() ||
      v.edge_prop_begin.back() != entries.size()) {
    return Corrupt("property extent arrays malformed");
  }
  for (size_t i = 0; i + 1 < v.node_prop_begin.size(); ++i) {
    if (v.node_prop_begin[i + 1] < v.node_prop_begin[i]) {
      return Corrupt("node property extents malformed");
    }
  }
  for (size_t i = 0; i + 1 < v.edge_prop_begin.size(); ++i) {
    if (v.edge_prop_begin[i + 1] < v.edge_prop_begin[i]) {
      return Corrupt("edge property extents malformed");
    }
  }
  for (const SnapshotPropEntry& e : entries) {
    if (e.pid >= num_props || e.tag > 3) {
      return Corrupt("property entry malformed");
    }
    if (e.tag == 2) {
      uint64_t offset = e.payload & 0xFFFFFFFFu;
      uint64_t length = e.payload >> 32;
      if (offset > value_heap.size() || length > value_heap.size() - offset) {
        return Corrupt("string payload overruns the value heap");
      }
    }
  }

  auto bundle = std::make_shared<Bundle>();
  PropertyGraph& graph = bundle->graph;

  // Interners are materialized eagerly (labels and property names are the
  // small tables); everything else reads the file in place.
  auto heap_name = [](const ConstSpan<uint64_t>& off, std::string_view heap,
                      size_t i) {
    return std::string(heap.substr(off[i], off[i + 1] - off[i]));
  };
  for (size_t l = 0; l < num_labels; ++l) {
    if (graph.skeleton_.labels_.Intern(
            heap_name(v.label_name_off, label_heap, l)) != l) {
      return Corrupt("duplicate label name");
    }
  }
  for (size_t p = 0; p < num_props; ++p) {
    if (graph.properties_.Intern(heap_name(v.prop_name_off, prop_heap, p)) !=
        p) {
      return Corrupt("duplicate property name");
    }
  }

  auto skeleton = std::make_shared<EdgeLabeledGraph::MappedSkeleton>();
  skeleton->pin = file.pin();
  skeleton->num_nodes = num_nodes;
  skeleton->edges = edges;
  skeleton->node_name_offsets = v.node_name_off;
  skeleton->node_name_heap = ConstSpan<char>(node_heap.data(),
                                             node_heap.size());
  skeleton->nodes_by_name = v.nodes_by_name;
  skeleton->edge_name_offsets = v.edge_name_off;
  skeleton->edge_name_heap = ConstSpan<char>(edge_heap.data(),
                                             edge_heap.size());
  skeleton->edges_by_name = v.edges_by_name;
  graph.skeleton_.mapped_ = std::move(skeleton);

  auto props = std::make_shared<PropertyGraph::MappedProps>();
  props->pin = file.pin();
  props->node_labels = node_labels;
  props->node_prop_begin = v.node_prop_begin;
  props->edge_prop_begin = v.edge_prop_begin;
  props->entries = entries;
  props->value_heap = ConstSpan<char>(value_heap.data(), value_heap.size());
  graph.mapped_ = std::move(props);

  bundle->snapshot.reset(new GraphSnapshot());
  GraphSnapshot& snap = *bundle->snapshot;
  snap.g_ = &graph.skeleton();
  snap.num_nodes_ = num_nodes;
  snap.num_labels_ = num_labels;
  snap.has_node_labels_ = has_node_labels;
  snap.out_ = {hops_out, v.out_begin, runs_out, v.out_runs_begin};
  snap.in_ = {hops_in, v.in_begin, runs_in, v.in_runs_begin};
  snap.label_edges_ = label_edges;
  snap.label_begin_ = v.label_begin;
  snap.nodes_by_label_ = v.nodes_by_label;
  snap.nodes_by_label_begin_ = v.nodes_by_label_begin;
  snap.pin_ = file.pin();

  bundle->stats.reset(new SnapshotStats());
  SnapshotStats& stats = *bundle->stats;
  stats.num_nodes_ = num_nodes;
  stats.num_edges_ = num_edges;
  stats.num_labels_ = num_labels;
  stats.has_node_labels_ = has_node_labels;
  const uint64_t* s = v.stats.data();
  stats.edge_count_.assign(s, s + num_labels);
  stats.distinct_src_.assign(s + num_labels, s + 2 * num_labels);
  stats.distinct_tgt_.assign(s + 2 * num_labels, s + 3 * num_labels);
  stats.node_label_count_.assign(s + 3 * num_labels, s + 4 * num_labels);
  stats.any_src_ = s[4 * num_labels];
  stats.any_tgt_ = s[4 * num_labels + 1];

  MappedGraph out;
  out.graph = std::shared_ptr<const PropertyGraph>(bundle, &bundle->graph);
  out.snapshot =
      std::shared_ptr<const GraphSnapshot>(bundle, bundle->snapshot.get());
  out.stats =
      std::shared_ptr<const SnapshotStats>(bundle, bundle->stats.get());
  out.covered_lsn = covered_lsn;
  out.file_bytes = file.file_bytes();
  return out;
}

Result<SnapshotCodec::DecodedSnapshot> SnapshotCodec::DecodeToPlain(
    std::string_view bytes) {
  Result<SnapshotFile> file = SnapshotFile::FromBytes(std::string(bytes));
  if (!file.ok()) return file.error();
  Result<MappedGraph> mapped = Open(std::move(file).value());
  if (!mapped.ok()) return mapped.error();
  const PropertyGraph& m = *mapped.value().graph;

  DecodedSnapshot decoded;
  decoded.covered_lsn = mapped.value().covered_lsn;
  PropertyGraph& out = decoded.graph;
  for (LabelId l = 0; l < m.skeleton().NumLabels(); ++l) {
    out.InternLabel(m.LabelName(l));
  }
  for (PropertyId p = 0; p < m.NumProperties(); ++p) {
    out.InternProperty(m.PropertyName(p));
  }
  for (NodeId n = 0; n < m.NumNodes(); ++n) {
    std::string name(m.NodeName(n));
    if (out.FindNode(name).has_value()) {
      return Corrupt("duplicate node name '" + name + "'");
    }
    out.AddNode(name, m.LabelName(m.NodeLabel(n)));
  }
  for (EdgeId e = 0; e < m.NumEdges(); ++e) {
    std::string name(m.EdgeName(e));
    if (out.FindEdge(name).has_value()) {
      return Corrupt("duplicate edge name '" + name + "'");
    }
    out.AddEdge(m.Src(e), m.Tgt(e), m.LabelName(m.EdgeLabel(e)), name);
  }
  m.ForEachProperty([&out, &m](ObjectRef o, PropertyId pid, const Value& v) {
    out.SetProperty(o, m.PropertyName(pid), v);
  });
  return decoded;
}

}  // namespace gqzoo::storage
