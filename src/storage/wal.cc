#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/storage/crc32c.h"
#include "src/util/failpoint.h"

namespace gqzoo::storage {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
               static_cast<char>((v >> 16) & 0xFF),
               static_cast<char>((v >> 24) & 0xFF)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(std::string_view s, size_t off) {
  return static_cast<uint32_t>(static_cast<uint8_t>(s[off])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(s[off + 1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(s[off + 2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(s[off + 3])) << 24);
}

uint64_t GetU64(std::string_view s, size_t off) {
  return static_cast<uint64_t>(GetU32(s, off)) |
         (static_cast<uint64_t>(GetU32(s, off + 4)) << 32);
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// write(2) loop handling EINTR and short writes; false on a real error.
bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

Error IoError(const std::string& what, const std::string& path) {
  return Error(ErrorCode::kUnavailable,
               what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::string WalFileHeader() {
  std::string out(kWalMagic, kWalMagicBytes);
  PutU32(&out, kWalFormatVersion);
  return out;
}

std::string EncodeWalPayload(uint64_t lsn, const std::vector<MutationOp>& ops) {
  std::string payload;
  PutU64(&payload, lsn);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) payload += '\n';
    payload += ops[i].ToString();
  }
  return payload;
}

void AppendWalRecord(std::string* out, uint64_t lsn,
                     const std::vector<MutationOp>& ops) {
  std::string payload = EncodeWalPayload(lsn, ops);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload));
  out->append(payload);
}

Result<WalDecodeResult> DecodeWal(std::string_view bytes) {
  if (bytes.size() < kWalMagicBytes ||
      std::memcmp(bytes.data(), kWalMagic, kWalMagicBytes) != 0) {
    return Error(ErrorCode::kDataLoss,
                 "WAL magic mismatch: file is not a gqzoo write-ahead log "
                 "(or its first bytes were destroyed)");
  }
  if (bytes.size() < kWalHeaderBytes) {
    return Error(ErrorCode::kDataLoss,
                 "WAL header is truncated before its format version");
  }
  uint32_t version = GetU32(bytes, kWalMagicBytes);
  if (version != kWalFormatVersion) {
    return Error(ErrorCode::kDataLoss,
                 "WAL format version " + std::to_string(version) +
                     "; this build reads version " +
                     std::to_string(kWalFormatVersion) +
                     " — refusing to guess at the record encoding");
  }
  WalDecodeResult out;
  size_t off = kWalHeaderBytes;
  uint64_t prev_lsn = 0;
  while (off < bytes.size()) {
    size_t rec_start = off;
    size_t rem = bytes.size() - off;
    if (rem < kWalFrameBytes) {
      out.tail = WalTail::kTorn;
      out.valid_bytes = rec_start;
      out.warning = "torn tail: " + std::to_string(rem) +
                    "-byte record header fragment at offset " +
                    std::to_string(rec_start) + "; truncating";
      return out;
    }
    uint32_t len = GetU32(bytes, off);
    uint32_t crc = GetU32(bytes, off + 4);
    // The encoder never frames a payload without its lsn or beyond the
    // cap, and a torn append leaves a clean *prefix* of the true record —
    // so a fully-present header with an impossible length is corruption,
    // not a crash artifact.
    if (len < kWalMinPayloadBytes || len > kMaxWalPayloadBytes) {
      return Error(ErrorCode::kDataLoss,
                   "WAL framing violation at offset " +
                       std::to_string(rec_start) + ": declared payload of " +
                       std::to_string(len) + " bytes is impossible");
    }
    if (kWalFrameBytes + static_cast<uint64_t>(len) > rem) {
      out.tail = WalTail::kTorn;
      out.valid_bytes = rec_start;
      out.warning = "torn tail: record at offset " + std::to_string(rec_start) +
                    " declares " + std::to_string(len) + " payload bytes, " +
                    std::to_string(rem - kWalFrameBytes) +
                    " present; truncating";
      return out;
    }
    std::string_view payload = bytes.substr(off + kWalFrameBytes, len);
    off += kWalFrameBytes + len;
    if (Crc32c(payload) != crc) {
      if (off == bytes.size()) {
        // The final record checksums wrong but is the right length: the
        // crash interleaved the append's data blocks, still a torn tail.
        out.tail = WalTail::kTorn;
        out.valid_bytes = rec_start;
        out.warning = "torn tail: final record at offset " +
                      std::to_string(rec_start) +
                      " failed its checksum; truncating";
        return out;
      }
      return Error(ErrorCode::kDataLoss,
                   "WAL record at offset " + std::to_string(rec_start) +
                       " failed its checksum with intact records after it — "
                       "mid-log corruption, refusing to serve");
    }
    WalRecord rec;
    rec.lsn = GetU64(payload, 0);
    if (rec.lsn == 0 || (prev_lsn != 0 && rec.lsn != prev_lsn + 1)) {
      return Error(ErrorCode::kDataLoss,
                   "WAL LSN discontinuity at offset " +
                       std::to_string(rec_start) + ": record carries lsn " +
                       std::to_string(rec.lsn) + " after lsn " +
                       std::to_string(prev_lsn));
    }
    prev_lsn = rec.lsn;
    std::string_view text = payload.substr(kWalMinPayloadBytes);
    size_t line_start = 0;
    while (line_start < text.size()) {
      size_t nl = text.find('\n', line_start);
      if (nl == std::string_view::npos) nl = text.size();
      std::string line(text.substr(line_start, nl - line_start));
      line_start = nl + 1;
      Result<MutationOp> op = ParseMutationOp(line);
      if (!op.ok()) {
        // The payload checksummed clean, so this is not bit rot — the
        // record holds something the current parser rejects.
        return Error(ErrorCode::kDataLoss,
                     "WAL record lsn " + std::to_string(rec.lsn) +
                         " holds an unparseable op (" + op.error().message() +
                         ") despite a clean checksum");
      }
      rec.ops.push_back(std::move(op).value());
    }
    out.records.push_back(std::move(rec));
    out.valid_bytes = off;
  }
  out.valid_bytes = bytes.size();
  return out;
}

WalFile::~WalFile() {
  if (fd_ >= 0) {
    if (unsynced_) ::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<WalFile>> WalFile::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot create WAL", path);
  std::string header = WalFileHeader();
  if (!WriteAll(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
    Error e = IoError("cannot initialize WAL", path);
    ::close(fd);
    return e;
  }
  return std::unique_ptr<WalFile>(new WalFile(path, fd, header.size()));
}

Result<std::unique_ptr<WalFile>> WalFile::OpenForAppend(const std::string& path,
                                                        uint64_t valid_bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open WAL", path);
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0 || ::fsync(fd) != 0) {
    Error e = IoError("cannot truncate WAL", path);
    ::close(fd);
    return e;
  }
  return std::unique_ptr<WalFile>(new WalFile(path, fd, valid_bytes));
}

Result<bool> WalFile::Append(uint64_t lsn, const std::vector<MutationOp>& ops,
                             const WalFileOptions& opts) {
  std::string rec;
  AppendWalRecord(&rec, lsn, ops);
  if (Failpoint::ShouldFail("storage.wal.append.before")) {
    Failpoint::MaybeCrash("storage.wal.append.before");
    return Error(ErrorCode::kUnavailable,
                 "injected WAL append failure (storage.wal.append.before)");
  }
  if (Failpoint::ShouldFail("storage.wal.append.torn")) {
    // Simulated torn write: a clean prefix of the record reaches the disk,
    // then the process dies.
    size_t keep = std::min<size_t>(
        static_cast<size_t>(Failpoint::ArgFor("storage.wal.append.torn")),
        rec.size());
    WriteAll(fd_, rec.data(), keep);
    ::fsync(fd_);
    Failpoint::CrashNow("storage.wal.append.torn");
  }
  if (!WriteAll(fd_, rec.data(), rec.size())) {
    return IoError("WAL append failed on", path_);
  }
  unsynced_ = true;
  if (Failpoint::ShouldFail("storage.wal.append.before_sync")) {
    Failpoint::MaybeCrash("storage.wal.append.before_sync");
    return Error(ErrorCode::kUnavailable,
                 "injected WAL sync failure (storage.wal.append.before_sync)");
  }
  if (opts.fsync) {
    if (opts.group_commit_window_ms == 0) {
      Result<bool> s = SyncNow();
      if (!s.ok()) return s;
    } else {
      int64_t window_ns = int64_t{opts.group_commit_window_ms} * 1'000'000;
      if (SteadyNowNs() - last_sync_ns_ >= window_ns) {
        Result<bool> s = SyncNow();
        if (!s.ok()) return s;
      }
    }
  }
  if (Failpoint::ShouldFail("storage.wal.append.after_sync")) {
    Failpoint::MaybeCrash("storage.wal.append.after_sync");
  }
  bytes_ += rec.size();
  ++appended_records_;
  return true;
}

Result<bool> WalFile::Sync() {
  if (!unsynced_) return true;
  return SyncNow();
}

Result<bool> WalFile::SyncNow() {
  if (::fsync(fd_) != 0) return IoError("WAL fsync failed on", path_);
  unsynced_ = false;
  ++syncs_;
  last_sync_ns_ = SteadyNowNs();
  return true;
}

Result<bool> SyncDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open directory", dir);
  if (::fsync(fd) != 0) {
    Error e = IoError("directory fsync failed on", dir);
    ::close(fd);
    return e;
  }
  ::close(fd);
  return true;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Error(ErrorCode::kNotFound, "no such file: " + path);
    }
    return IoError("cannot open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Error e = IoError("read failed on", path);
      ::close(fd);
      return e;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<bool> WriteFileDurably(const std::string& path, std::string_view bytes,
                              const char* torn_site) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot create", path);
  if (torn_site != nullptr && Failpoint::ShouldFail(torn_site)) {
    size_t keep = std::min<size_t>(
        static_cast<size_t>(Failpoint::ArgFor(torn_site)), bytes.size());
    WriteAll(fd, bytes.data(), keep);
    ::fsync(fd);
    Failpoint::CrashNow(torn_site);
  }
  if (!WriteAll(fd, bytes.data(), bytes.size()) || ::fsync(fd) != 0) {
    Error e = IoError("durable write failed on", path);
    ::close(fd);
    return e;
  }
  ::close(fd);
  return true;
}

}  // namespace gqzoo::storage
