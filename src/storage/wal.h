#ifndef GQZOO_STORAGE_WAL_H_
#define GQZOO_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/delta/delta.h"
#include "src/util/result.h"

namespace gqzoo::storage {

/// Write-ahead log file format
/// ---------------------------
///
///     +--------------------------+
///     | magic "GQZWAL1\n"  (8 B) |
///     | format_version (u32)     |
///     +--------------------------+
///     | record 0                 |
///     | record 1                 |
///     | ...                      |
///     +--------------------------+
///
/// The explicit version field pins the record encoding: a log written by a
/// build with a different format is `kDataLoss` up front, never a garbled
/// replay (version 2 introduced the field itself; version-1 logs had bare
/// magic and are rejected the same way).
///
/// Each record frames the *applied prefix* of one mutation batch (the write
/// path logs exactly the ops that succeeded, so replay is all-or-nothing
/// per record):
///
///     [u32 payload_len] [u32 crc32c(payload)] [payload]
///       payload = [u64 lsn] [op lines joined by '\n']
///
/// All integers little-endian. The op lines are `MutationOp::ToString()`
/// shell syntax — identifiers are restricted to the bare-identifier charset
/// and string values are escaped (see `IsValidMutationName`), so the
/// line-oriented payload round-trips any loggable op byte-for-byte.
///
/// LSNs start at 1 and are strictly consecutive within a file; a checkpoint
/// covering lsn C rewrites the log to hold exactly the records with
/// lsn > C, so the first record of a well-formed log is `covered_lsn + 1`.
///
/// Corruption policy (`DecodeWal`):
///   * bytes missing at the *end* of the file — a header that doesn't fit,
///     a payload shorter than its declared length, or a CRC-mismatched
///     *final* record — are a torn tail: the crash interrupted the last
///     append. The tail is truncated (with a warning) and the prefix
///     served.
///   * a CRC mismatch or framing violation with intact records *after* it,
///     or any LSN discontinuity, cannot be explained by a torn append —
///     that is real corruption, `kDataLoss`, refuse to serve.

inline constexpr char kWalMagic[] = "GQZWAL1\n";
inline constexpr size_t kWalMagicBytes = 8;
/// Bumped whenever the record encoding changes shape.
inline constexpr uint32_t kWalFormatVersion = 2;
/// Full file header: magic + u32 format_version. Records start here.
inline constexpr size_t kWalHeaderBytes = kWalMagicBytes + 4;

/// The exact header bytes of an empty log at the current version.
std::string WalFileHeader();
/// Per-record frame header: u32 payload_len + u32 crc.
inline constexpr size_t kWalFrameBytes = 8;
/// Payload always starts with the u64 lsn.
inline constexpr size_t kWalMinPayloadBytes = 8;
/// Upper bound on one record's payload; anything larger in a header is a
/// framing violation, not a plausible record.
inline constexpr size_t kMaxWalPayloadBytes = size_t{256} << 20;

/// One decoded WAL record: the applied prefix of one mutation batch.
struct WalRecord {
  uint64_t lsn = 0;
  std::vector<MutationOp> ops;
};

/// Encodes `ops` as the record payload for `lsn` (lsn + textual op lines).
std::string EncodeWalPayload(uint64_t lsn, const std::vector<MutationOp>& ops);

/// Appends one fully framed record to `out`. The file writer and the
/// fuzzer's in-memory crash oracle share this exact byte layout.
void AppendWalRecord(std::string* out, uint64_t lsn,
                     const std::vector<MutationOp>& ops);

enum class WalTail : uint8_t { kClean, kTorn };

struct WalDecodeResult {
  std::vector<WalRecord> records;
  WalTail tail = WalTail::kClean;
  /// Length of the valid prefix (magic + whole records). When the tail is
  /// torn, truncating the file to this offset yields a clean log.
  uint64_t valid_bytes = 0;
  /// Human-readable torn-tail description; empty when clean.
  std::string warning;
};

/// Decodes a complete WAL byte image (magic included), applying the
/// corruption policy above. `kDataLoss` for mid-log corruption, LSN
/// discontinuities, bad magic, or unparseable op lines inside a
/// CRC-verified record; torn tails come back as `tail = kTorn` with the
/// valid prefix decoded.
Result<WalDecodeResult> DecodeWal(std::string_view bytes);

struct WalFileOptions {
  /// fsync after appends. Off = durability to the page cache only (data
  /// survives a process crash but not an OS crash).
  bool fsync = true;
  /// When > 0 and fsync is on: group commit. Appends are acked as soon as
  /// they are written; the file is fsynced at most once per window, so a
  /// crash can lose up to one window of *acked* writes in exchange for
  /// amortizing fsync across the batches inside a window.
  uint32_t group_commit_window_ms = 0;
};

/// Append handle on one WAL file. Not thread-safe; the engine serializes
/// all calls behind its write lock.
class WalFile {
 public:
  ~WalFile();
  WalFile(const WalFile&) = delete;
  WalFile& operator=(const WalFile&) = delete;

  /// Creates (or truncates) `path` as an empty log: magic written and
  /// fsynced, file positioned for the first append.
  static Result<std::unique_ptr<WalFile>> Create(const std::string& path);

  /// Opens `path` for appending, first truncating it to `valid_bytes` (the
  /// recovery path physically removes a torn tail before appending after
  /// it).
  static Result<std::unique_ptr<WalFile>> OpenForAppend(const std::string& path,
                                                        uint64_t valid_bytes);

  /// Appends one record and applies the sync policy in `opts`. On any
  /// write/sync error the file must be considered broken (the caller stops
  /// acking writes). Crash failpoints: storage.wal.append.before / .torn /
  /// .before_sync / .after_sync.
  Result<bool> Append(uint64_t lsn, const std::vector<MutationOp>& ops,
                      const WalFileOptions& opts);

  /// Forces an fsync if any acked append is still unsynced (group-commit
  /// flush; also called on clean shutdown).
  Result<bool> Sync();

  uint64_t bytes() const { return bytes_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t syncs() const { return syncs_; }
  const std::string& path() const { return path_; }

 private:
  WalFile(std::string path, int fd, uint64_t bytes)
      : path_(std::move(path)), fd_(fd), bytes_(bytes) {}

  Result<bool> SyncNow();

  std::string path_;
  int fd_ = -1;
  uint64_t bytes_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t syncs_ = 0;
  bool unsynced_ = false;
  /// steady_clock epoch of the last fsync, for the group-commit window.
  int64_t last_sync_ns_ = 0;
};

/// fsyncs the directory containing `path` (making a rename durable).
Result<bool> SyncDirOf(const std::string& path);

/// Reads a whole file into a string. `kNotFound` when missing.
Result<std::string> ReadFileBytes(const std::string& path);

/// Writes `bytes` to `path` (create/truncate), fsyncs, closes. The
/// `torn_site` failpoint, when fired, writes only `ArgFor(torn_site)` bytes
/// and crashes the process.
Result<bool> WriteFileDurably(const std::string& path, std::string_view bytes,
                              const char* torn_site = nullptr);

}  // namespace gqzoo::storage

#endif  // GQZOO_STORAGE_WAL_H_
