#ifndef GQZOO_STORAGE_CHECKPOINT_H_
#define GQZOO_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/graph/graph.h"
#include "src/util/result.h"

namespace gqzoo::storage {

/// Checkpoint file format
/// ----------------------
///
///     [8 B magic "GQZCKPT1"] [u64 covered_lsn] [u64 payload_len]
///     [u32 crc32c(covered_lsn ++ payload_len ++ payload)] [payload]
///
/// The checksum covers the two header fields as well as the payload: a
/// corrupted covered_lsn would silently change which WAL records recovery
/// skips, so it must be as protected as the graph bytes themselves.
///
/// payload:
///     [u32 n_labels]  n_labels  × str          (label-id order)
///     [u32 n_props]   n_props   × str          (property-id order)
///     [u64 n_nodes]   n_nodes   × { str name, u32 label,
///                                   u32 n_props × [u32 prop, value] }
///     [u64 n_edges]   n_edges   × { str name, u32 src, u32 tgt, u32 label,
///                                   u32 n_props × [u32 prop, value] }
///
///     str   = u32 len + bytes
///     value = u8 tag (0 int, 1 double, 2 string, 3 bool)
///             + (u64 two's-complement | u64 IEEE-754 bits | str | u8)
///
/// The label and property tables are serialized *in interner-id order* and
/// re-interned in that order on load, so every id — and therefore every
/// id-ordered render (`PropertyGraphToText` sorts properties by id) — is
/// preserved exactly. A graph-text round trip cannot promise that: it
/// re-interns property names in encounter order, which permutes per-object
/// property rendering. The crash harness compares recovered state to the
/// reference simulator byte-for-byte, so the checkpoint must be
/// id-faithful, not just content-faithful.
///
/// A checkpoint covering lsn C pairs with a WAL holding records > C; the
/// two files are the entire durable state.

inline constexpr char kCheckpointMagic[] = "GQZCKPT1";
inline constexpr size_t kCheckpointMagicBytes = 8;
inline constexpr size_t kCheckpointHeaderBytes = 8 + 8 + 8 + 4;

/// Serializes `g` (plain or overlay view) into a checkpoint image covering
/// `covered_lsn`.
std::string EncodeCheckpoint(const PropertyGraph& g, uint64_t covered_lsn);

struct CheckpointData {
  PropertyGraph graph;
  uint64_t covered_lsn = 0;
};

/// Decodes a checkpoint image back into a plain graph with identical
/// interner ids. Any structural damage — bad magic, wrong payload length,
/// checksum mismatch, out-of-range ids — is `kDataLoss` (the store falls
/// back to an older checkpoint, and refuses to serve when none decodes).
Result<CheckpointData> DecodeCheckpoint(std::string_view bytes);

}  // namespace gqzoo::storage

#endif  // GQZOO_STORAGE_CHECKPOINT_H_
