#ifndef GQZOO_STORAGE_CHECKPOINT_H_
#define GQZOO_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/graph/graph.h"
#include "src/storage/snapshot_format.h"
#include "src/util/result.h"

namespace gqzoo::storage {

/// Checkpoint files *are* snapshot-format files (snapshot_format.h): the
/// versioned, crc32c-sectioned "GQZSNAP1" layout whose regions hold the
/// graph, its CSR and planner statistics, plus the covered LSN in the META
/// region. One format serves both roles — the durable base a crash
/// recovers from, and the memory-mappable image an engine restart (or the
/// delta compactor) can open in place without rebuilding anything.
///
/// The label and property tables are serialized *in interner-id order* and
/// re-interned in that order on load, so every id — and therefore every
/// id-ordered render (`PropertyGraphToText` sorts properties by id) — is
/// preserved exactly. The crash harness compares recovered state to its
/// reference simulator byte-for-byte, so the checkpoint must be
/// id-faithful, not just content-faithful.
///
/// A checkpoint covering lsn C pairs with a WAL holding records > C; the
/// two files are the entire durable state.

inline constexpr const char* kCheckpointMagic = kSnapshotMagic;
inline constexpr size_t kCheckpointMagicBytes = kSnapshotMagicBytes;
inline constexpr size_t kCheckpointHeaderBytes = kSnapshotHeaderBytes;

/// Serializes `g` (plain, overlay view, or mapped) into a checkpoint image
/// covering `covered_lsn`.
std::string EncodeCheckpoint(const PropertyGraph& g, uint64_t covered_lsn);

struct CheckpointData {
  PropertyGraph graph;
  uint64_t covered_lsn = 0;
};

/// Decodes a checkpoint image back into a plain graph with identical
/// interner ids. Any damage — bad magic, version skew, checksum mismatch,
/// truncation, out-of-range ids — is `kDataLoss` (the store falls back to
/// an older checkpoint, and refuses to serve when none decodes).
Result<CheckpointData> DecodeCheckpoint(std::string_view bytes);

}  // namespace gqzoo::storage

#endif  // GQZOO_STORAGE_CHECKPOINT_H_
