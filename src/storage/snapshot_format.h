#ifndef GQZOO_STORAGE_SNAPSHOT_FORMAT_H_
#define GQZOO_STORAGE_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/planner/stats.h"
#include "src/util/result.h"

namespace gqzoo::storage {

/// The on-disk snapshot format: one flat, little-endian, crc32c-sectioned
/// file holding a whole graph epoch — skeleton, properties, the
/// label-partitioned CSR, the nodes-by-label index, and planner statistics
/// — laid out so every array can be used *in place*.
///
///     "GQZSNAP1"           8 bytes magic
///     format_version       u32 (currently 1)
///     region_count         u32
///     header_crc           u32  crc32c of version..reserved + region table
///     reserved             u32  (zero)
///     region table         region_count x 32-byte entries
///       { id u64, offset u64, length u64, crc u64 (low 32 bits used) }
///     regions              each at its 8-aligned offset, padded to 8
///
/// Every multi-byte value is little-endian; arrays are the in-memory
/// representations written raw (Hop, LabelRun, EdgeData and
/// SnapshotPropEntry are static_asserted to their serialized sizes).
/// Region offsets ascend and each region *owns* its padding: a region's
/// crc32c covers align8(length) bytes, the header crc covers everything
/// before the first region except the magic, and the total file size must
/// equal header + sum of padded lengths — so every byte of the file is
/// covered by exactly one checksum and any single-byte flip or truncation
/// is detected.
///
/// A snapshot file loads two ways through one code path:
///  * `SnapshotFile::OpenMapped` mmaps the file read-only; graph accessors
///    then read the page cache directly (restart cost is O(verify), not
///    O(rebuild), and graphs larger than RAM page on demand);
///  * `SnapshotFile::FromBytes` adopts an in-memory image (e.g. read via
///    the durability layer), byte-identical semantics.
inline constexpr char kSnapshotMagic[] = "GQZSNAP1";
inline constexpr size_t kSnapshotMagicBytes = 8;
inline constexpr uint32_t kSnapshotFormatVersion = 1;
/// magic + version + region_count + header_crc + reserved.
inline constexpr size_t kSnapshotHeaderBytes = kSnapshotMagicBytes + 16;
inline constexpr size_t kSnapshotRegionEntryBytes = 32;

/// Region ids. Ids are stable on disk — append new ones, never renumber.
enum SnapshotRegionId : uint64_t {
  kRegionMeta = 1,  // u64[6]: covered_lsn, nodes, edges, labels, props,
                    // has_node_labels
  kRegionEdges = 2,             // EdgeData[num_edges]
  kRegionNodeLabels = 3,        // LabelId[num_nodes]
  kRegionLabelNameOffsets = 4,  // u64[num_labels + 1]
  kRegionLabelNameHeap = 5,     // char[]
  kRegionPropNameOffsets = 6,   // u64[num_props + 1]
  kRegionPropNameHeap = 7,      // char[]
  kRegionNodeNameOffsets = 8,   // u64[num_nodes + 1]
  kRegionNodeNameHeap = 9,      // char[]
  kRegionNodesByName = 10,      // NodeId[num_nodes], sorted by display name
  kRegionEdgeNameOffsets = 11,  // u64[num_edges + 1]
  kRegionEdgeNameHeap = 12,     // char[]
  kRegionEdgesByName = 13,      // EdgeId[num_edges], sorted by display name
  kRegionOutHops = 14,          // GraphSnapshot::Hop[num_edges]
  kRegionOutNodeBegin = 15,     // u32[num_nodes + 1]
  kRegionOutRuns = 16,          // GraphSnapshot::LabelRun[]
  kRegionOutRunsBegin = 17,     // u32[num_nodes + 1]
  kRegionInHops = 18,
  kRegionInNodeBegin = 19,
  kRegionInRuns = 20,
  kRegionInRunsBegin = 21,
  kRegionLabelEdges = 22,         // Hop[num_edges], grouped by label
  kRegionLabelBegin = 23,         // u32[num_labels + 1]
  kRegionNodesByLabel = 24,       // NodeId[], grouped by node label
  kRegionNodesByLabelBegin = 25,  // u32[num_labels + 1]
  kRegionNodePropBegin = 26,      // u64[num_nodes + 1], global entry offsets
  kRegionEdgePropBegin = 27,      // u64[num_edges + 1], global entry offsets
  kRegionPropEntries = 28,        // SnapshotPropEntry[]
  kRegionValueHeap = 29,          // char[], string payloads
  kRegionStats = 30,  // u64[4 * num_labels + 2]: edge_count, distinct_src,
                      // distinct_tgt, node_label_count arrays, any_src,
                      // any_tgt
};

/// One region-table entry, as stored.
struct SnapshotRegion {
  uint64_t id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;  // unpadded payload length
  uint64_t crc = 0;     // crc32c of the align8(length) padded extent
};

inline constexpr uint64_t SnapshotAlign8(uint64_t n) { return (n + 7) & ~7ull; }

/// Builds the file header + region table for regions written in table
/// order. Callers fill `id`, `length` and `crc` (over the padded extent);
/// offsets are assigned here. The streaming half of the writer: the bulk
/// loader spools region payloads to temp files, then emits this header
/// followed by each padded payload.
std::string BuildSnapshotHeader(std::vector<SnapshotRegion>* regions);

/// Assembles a complete snapshot image from (id, payload) pairs, in order.
std::string AssembleSnapshot(
    const std::vector<std::pair<uint64_t, std::string>>& regions);

/// A verified snapshot file image — mapped or in-memory — with region
/// lookup. Move-only handle; the backing storage is pinned by a shared_ptr
/// so graph views can outlive the handle.
class SnapshotFile {
 public:
  /// mmaps `path` read-only. Verifies the header and, unless
  /// `verify_crcs` is false, every region checksum (one linear pass).
  static Result<SnapshotFile> OpenMapped(const std::string& path,
                                         bool verify_crcs = true);
  /// Adopts an in-memory image.
  static Result<SnapshotFile> FromBytes(std::string bytes,
                                        bool verify_crcs = true);

  std::string_view Region(uint64_t id) const;
  bool HasRegion(uint64_t id) const { return !Region(id).empty(); }
  /// Typed view of a region; empty when absent or when the length is not a
  /// multiple of sizeof(T).
  template <typename T>
  ConstSpan<T> TypedRegion(uint64_t id) const {
    std::string_view r = Region(id);
    if (r.size() % sizeof(T) != 0) return ConstSpan<T>();
    return ConstSpan<T>(reinterpret_cast<const T*>(r.data()),
                        r.size() / sizeof(T));
  }

  const std::shared_ptr<const void>& pin() const { return pin_; }
  size_t file_bytes() const { return data_.size(); }

 private:
  static Result<SnapshotFile> Validate(std::shared_ptr<const void> pin,
                                       std::string_view data,
                                       bool verify_crcs);

  std::shared_ptr<const void> pin_;
  std::string_view data_;
  std::vector<SnapshotRegion> table_;
};

/// A graph epoch reconstituted from a snapshot file: the property graph,
/// its CSR snapshot and planner statistics, all reading the file image in
/// place (`graph->is_mapped()`). The three aliasing pointers share one
/// bundle that pins the mapping, so any of them keeps the epoch alive.
struct MappedGraph {
  std::shared_ptr<const PropertyGraph> graph;
  std::shared_ptr<const GraphSnapshot> snapshot;
  std::shared_ptr<const SnapshotStats> stats;
  uint64_t covered_lsn = 0;
  size_t file_bytes = 0;
};

/// Serializer/deserializer between graph epochs and snapshot files.
/// Befriended by the graph classes: it reads their private arrays raw at
/// encode time and plants region views at open time.
class SnapshotCodec {
 public:
  /// Serializes `g` (any storage mode) plus a CSR snapshot and statistics
  /// built over it into a snapshot image.
  static std::string EncodeSnapshot(const PropertyGraph& g,
                                    uint64_t covered_lsn);
  /// As above, reusing an already built snapshot/stats pair (which must
  /// have been built over `g`).
  static std::string EncodeSnapshot(const PropertyGraph& g,
                                    const GraphSnapshot& snapshot,
                                    const SnapshotStats& stats,
                                    uint64_t covered_lsn);

  /// Reconstitutes an epoch whose accessors read `file` in place.
  static Result<MappedGraph> Open(SnapshotFile file);

  struct DecodedSnapshot {
    PropertyGraph graph;
    uint64_t covered_lsn = 0;
  };
  /// Rebuilds a plain, mutable PropertyGraph (id-faithful: labels,
  /// properties, nodes and edges intern in file order).
  static Result<DecodedSnapshot> DecodeToPlain(std::string_view bytes);
};

}  // namespace gqzoo::storage

#endif  // GQZOO_STORAGE_SNAPSHOT_FORMAT_H_
