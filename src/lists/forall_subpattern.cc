#include "src/lists/forall_subpattern.h"

namespace gqzoo {

PropertyGraph PathAsGraph(const PropertyGraph& g, const Path& p) {
  PropertyGraph out;
  // The paper's paths in patterns are node-to-node; we also accept
  // edge-delimited paths by materializing their endpoints.
  auto add_node = [&](NodeId original, size_t pos) {
    NodeId n = out.AddNode("pos" + std::to_string(pos),
                           g.LabelName(g.NodeLabel(original)));
    for (const auto& [prop, value] :
         g.PropertiesOf(ObjectRef::Node(original))) {
      out.SetProperty(ObjectRef::Node(n), g.PropertyName(prop), value);
    }
    return n;
  };

  // Normalize to a node-delimited alternating sequence (materialize the
  // endpoints of edge-to-* paths), then lay positions down left to right.
  std::vector<ObjectRef> objects = p.objects();
  if (!objects.empty() && objects.front().is_edge()) {
    objects.insert(objects.begin(), ObjectRef::Node(g.Src(objects.front().id)));
  }
  if (!objects.empty() && objects.back().is_edge()) {
    objects.push_back(ObjectRef::Node(g.Tgt(objects.back().id)));
  }
  NodeId prev = kInvalidId;
  size_t pos = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    const ObjectRef& o = objects[i];
    if (o.is_node()) {
      prev = add_node(o.id, pos++);
      continue;
    }
    // Edge occurrence between the previous node position and the next one
    // (which the following loop iteration creates): create the target now
    // and skip the upcoming node object.
    EdgeId original = o.id;
    NodeId tgt = add_node(g.Tgt(original), pos++);
    EdgeId e = out.AddEdge(prev, tgt, g.LabelName(g.EdgeLabel(original)),
                           std::string(g.EdgeName(original)) + "@" + std::to_string(pos));
    for (const auto& [prop, value] :
         g.PropertiesOf(ObjectRef::Edge(original))) {
      out.SetProperty(ObjectRef::Edge(e), g.PropertyName(prop), value);
    }
    prev = tgt;
    ++i;  // the next object is tgt(original); it is already materialized
  }
  return out;
}

Result<bool> ForAllSubpatternHolds(const PropertyGraph& g, const Path& p,
                                   const CorePattern& sub,
                                   const CoreCondition& cond) {
  PropertyGraph path_graph = PathAsGraph(g, p);
  Result<std::vector<CorePairRow>> matches = EvalPatternPairs(path_graph, sub);
  if (!matches.ok()) return matches.error();
  for (const CorePairRow& row : matches.value()) {
    if (!EvalCoreCondition(path_graph, cond, row.mu)) return false;
  }
  return true;
}

Result<std::vector<Path>> FilterForAllSubpattern(
    const PropertyGraph& g, const std::vector<Path>& paths,
    const CorePattern& sub, const CoreCondition& cond) {
  std::vector<Path> out;
  for (const Path& p : paths) {
    Result<bool> ok = ForAllSubpatternHolds(g, p, sub, cond);
    if (!ok.ok()) return ok.error();
    if (ok.value()) out.push_back(p);
  }
  return out;
}

}  // namespace gqzoo
