#ifndef GQZOO_LISTS_FORALL_SUBPATTERN_H_
#define GQZOO_LISTS_FORALL_SUBPATTERN_H_

#include "src/coregql/pattern_eval.h"
#include "src/graph/path.h"

namespace gqzoo {

/// Section 5.2, "Matching on Matched Paths": the condition `∀π' ⇒ θ`.
/// `π⟨∀π' ⇒ θ⟩` matches a path p of π iff every match of π' *on p itself*
/// satisfies θ.
///
/// "On p" means p is treated as a linear graph of positions: the i-th
/// node/edge occurrence of p becomes its own node/edge (so a path that
/// revisits an element yields several positions), with labels and
/// properties copied from the original elements.

/// Builds the position graph of `p` (nodes "pos0", "pos1", ...; edges keep
/// their original display names suffixed by position).
PropertyGraph PathAsGraph(const PropertyGraph& g, const Path& p);

/// Does every match of `sub` on `p` satisfy `cond`?
Result<bool> ForAllSubpatternHolds(const PropertyGraph& g, const Path& p,
                                   const CorePattern& sub,
                                   const CoreCondition& cond);

/// Filters `paths` by `∀sub ⇒ cond` (the post-filter the GQL committee
/// proposal would apply to matched paths).
Result<std::vector<Path>> FilterForAllSubpattern(
    const PropertyGraph& g, const std::vector<Path>& paths,
    const CorePattern& sub, const CoreCondition& cond);

}  // namespace gqzoo

#endif  // GQZOO_LISTS_FORALL_SUBPATTERN_H_
