#ifndef GQZOO_LISTS_LIST_FUNCTIONS_H_
#define GQZOO_LISTS_LIST_FUNCTIONS_H_

#include <functional>

#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/util/result.h"

namespace gqzoo {

/// Cypher-style list processing over paths (Section 5.2, "Turning to Lists
/// for Help"). `N(p)` and `E(p)` are Path::Nodes / Path::Edges; `reduce`
/// is implemented exactly as the paper defines it:
///
///     reduce_{ε,ι,f}(list())        = ε
///     reduce_{ε,ι,f}(list(x))       = ι(x)
///     reduce_{ε,ι,f}(x :: tail)     = f(x, reduce_{ε,ι,f}(tail))
///
/// (a right fold whose base case on singletons applies ι).
Value Reduce(const Value& init,
             const std::function<Value(ObjectRef)>& iota,
             const std::function<Value(ObjectRef, const Value&)>& f,
             const ObjectList& list);

/// ι for the paper's examples: the value of property `prop` of an element
/// (missing properties yield `missing`, default 0).
std::function<Value(ObjectRef)> PropertyIota(const PropertyGraph& g,
                                             const std::string& prop,
                                             Value missing = Value(0));

/// f(e, v) = e.prop + v — the Σ_p sum aggregate.
std::function<Value(ObjectRef, const Value&)> SumStep(const PropertyGraph& g,
                                                      const std::string& prop);

/// The paper's increasing-check step (Section 5.2): processing the list
/// from the right, f(e, v) = e.prop if 0 ≤ e.prop ≤ v, and -1 otherwise, so
/// a non-negative reduce result certifies that values increase along the
/// path (ι must be PropertyIota on the same property).
std::function<Value(ObjectRef, const Value&)> IncreasingStep(
    const PropertyGraph& g, const std::string& prop);

/// Σ_p: sum of `prop` over the edges of `p` (reduce with SumStep).
Value SumOverEdges(const PropertyGraph& g, const Path& p,
                   const std::string& prop);

/// Enumerates (bounded) paths from `u` to `v` whose edge list passes
/// `predicate(reduce(E(p)))`. This is the evaluation strategy the paper
/// warns about: `reduce == 0` over SubsetSumChain gadgets encodes
/// SUBSET-SUM, so the search is exponential (experiment E8).
struct ReduceQueryOptions {
  size_t max_path_length = 64;
  size_t max_results = SIZE_MAX;
  /// Restrict enumeration to trails / simple paths if desired; the
  /// NP-completeness holds "even if matching paths p are restricted to be
  /// shortest, or simple, or trails" (Section 5.2).
  bool simple_only = false;
};

struct ReduceQueryStats {
  size_t paths_explored = 0;
  bool truncated = false;
};

std::vector<Path> PathsWithReducePredicate(
    const PropertyGraph& g, NodeId u, NodeId v, const Value& init,
    const std::function<Value(ObjectRef)>& iota,
    const std::function<Value(ObjectRef, const Value&)>& f,
    const std::function<bool(const Value&)>& predicate,
    const ReduceQueryOptions& options = {}, ReduceQueryStats* stats = nullptr);

}  // namespace gqzoo

#endif  // GQZOO_LISTS_LIST_FUNCTIONS_H_
