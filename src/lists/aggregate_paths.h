#ifndef GQZOO_LISTS_AGGREGATE_PATHS_H_
#define GQZOO_LISTS_AGGREGATE_PATHS_H_

#include <functional>

#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/util/result.h"

namespace gqzoo {

/// The two competing semantics of `shortest` + an aggregate condition from
/// Section 5.2 (the quadratic Σ_p example): given endpoints and a condition
/// on paths, either
///   (a) select the shortest paths first, then apply the condition
///       (kConditionAfterShortest), or
///   (b) restrict to paths satisfying the condition, then take the
///       shortest among them (kShortestAmongSatisfying) — the reading that
///       is "uncomfortably close to solving Diophantine equations".
enum class AggregateSemantics {
  kConditionAfterShortest,
  kShortestAmongSatisfying,
};

struct AggregatePathOptions {
  size_t max_path_length = 64;
};

/// Paths from `u` to `v` (over all edges) selected per `semantics` under
/// the path condition `cond`. For kShortestAmongSatisfying the search scans
/// lengths 0, 1, 2, ... and stops at the first length with a satisfying
/// path (or at max_path_length — the undecidability of the general problem
/// shows up as this bound being load-bearing).
struct AggregatePathResult {
  std::vector<Path> paths;
  bool hit_length_bound = false;
};

AggregatePathResult SelectAggregatePaths(
    const PropertyGraph& g, NodeId u, NodeId v,
    const std::function<bool(const Path&)>& cond, AggregateSemantics semantics,
    const AggregatePathOptions& options = {});

/// The Section 5.2 example condition: x.a · Σ_p² + x.b · Σ_p + x.c = 0,
/// where x is the last node of the path and Σ_p sums property `prop` over
/// its edges.
std::function<bool(const Path&)> QuadraticSigmaCondition(
    const PropertyGraph& g, const std::string& prop);

}  // namespace gqzoo

#endif  // GQZOO_LISTS_AGGREGATE_PATHS_H_
