#include "src/lists/aggregate_paths.h"

#include <functional>

#include "src/lists/list_functions.h"

namespace gqzoo {

namespace {

// All node-to-node paths u→v with exactly `len` edges.
std::vector<Path> PathsOfLength(const PropertyGraph& g, NodeId u, NodeId v,
                                size_t len) {
  std::vector<Path> out;
  std::vector<ObjectRef> current = {ObjectRef::Node(u)};
  std::function<void(NodeId, size_t)> dfs = [&](NodeId node, size_t depth) {
    if (depth == len) {
      if (node == v) out.push_back(Path::MakeUnchecked(current));
      return;
    }
    for (EdgeId e : g.OutEdges(node)) {
      current.push_back(ObjectRef::Edge(e));
      current.push_back(ObjectRef::Node(g.Tgt(e)));
      dfs(g.Tgt(e), depth + 1);
      current.pop_back();
      current.pop_back();
    }
  };
  dfs(u, 0);
  return out;
}

}  // namespace

AggregatePathResult SelectAggregatePaths(
    const PropertyGraph& g, NodeId u, NodeId v,
    const std::function<bool(const Path&)>& cond, AggregateSemantics semantics,
    const AggregatePathOptions& options) {
  AggregatePathResult result;
  for (size_t len = 0; len <= options.max_path_length; ++len) {
    std::vector<Path> level = PathsOfLength(g, u, v, len);
    if (level.empty()) {
      // No path of this exact length; longer ones may still exist if the
      // graph has cycles — keep scanning up to the bound.
      continue;
    }
    if (semantics == AggregateSemantics::kConditionAfterShortest) {
      // `shortest` first: this is the shortest level; filter and stop.
      for (const Path& p : level) {
        if (cond(p)) result.paths.push_back(p);
      }
      return result;
    }
    // kShortestAmongSatisfying: stop at the first level with a satisfier.
    std::vector<Path> satisfying;
    for (const Path& p : level) {
      if (cond(p)) satisfying.push_back(p);
    }
    if (!satisfying.empty()) {
      result.paths = std::move(satisfying);
      return result;
    }
  }
  result.hit_length_bound = true;
  return result;
}

std::function<bool(const Path&)> QuadraticSigmaCondition(
    const PropertyGraph& g, const std::string& prop) {
  return [&g, prop](const Path& p) {
    if (p.empty() || !p.EndsWithNode()) return false;
    ObjectRef x = p.back();
    std::optional<Value> a = g.GetProperty(x, "a");
    std::optional<Value> b = g.GetProperty(x, "b");
    std::optional<Value> c = g.GetProperty(x, "c");
    if (!a || !b || !c || !a->is_numeric() || !b->is_numeric() ||
        !c->is_numeric()) {
      return false;
    }
    Value sigma = SumOverEdges(g, p, prop);
    double s = sigma.is_numeric() ? sigma.ToDouble() : 0.0;
    double lhs = a->ToDouble() * s * s + b->ToDouble() * s + c->ToDouble();
    return lhs == 0.0;
  };
}

}  // namespace gqzoo
