#include "src/lists/list_functions.h"

#include <algorithm>

namespace gqzoo {

Value Reduce(const Value& init, const std::function<Value(ObjectRef)>& iota,
             const std::function<Value(ObjectRef, const Value&)>& f,
             const ObjectList& list) {
  if (list.empty()) return init;
  if (list.size() == 1) return iota(list[0]);
  // f(head, reduce(tail)): fold from the right.
  Value acc = iota(list.back());
  for (size_t i = list.size() - 1; i-- > 0;) {
    acc = f(list[i], acc);
  }
  return acc;
}

std::function<Value(ObjectRef)> PropertyIota(const PropertyGraph& g,
                                             const std::string& prop,
                                             Value missing) {
  return [&g, prop, missing](ObjectRef o) {
    std::optional<Value> v = g.GetProperty(o, prop);
    return v.has_value() ? *v : missing;
  };
}

std::function<Value(ObjectRef, const Value&)> SumStep(const PropertyGraph& g,
                                                      const std::string& prop) {
  return [&g, prop](ObjectRef o, const Value& acc) {
    std::optional<Value> v = g.GetProperty(o, prop);
    double lhs = v.has_value() && v->is_numeric() ? v->ToDouble() : 0.0;
    double rhs = acc.is_numeric() ? acc.ToDouble() : 0.0;
    double sum = lhs + rhs;
    // Keep integer sums integral so `= 0` predicates behave exactly.
    if ((!v.has_value() || v->is_int()) && acc.is_int()) {
      int64_t l = v.has_value() ? v->as_int() : 0;
      return Value(l + acc.as_int());
    }
    return Value(sum);
  };
}

std::function<Value(ObjectRef, const Value&)> IncreasingStep(
    const PropertyGraph& g, const std::string& prop) {
  return [&g, prop](ObjectRef o, const Value& acc) {
    std::optional<Value> v = g.GetProperty(o, prop);
    if (!v.has_value() || !v->is_numeric() || !acc.is_numeric()) {
      return Value(-1);
    }
    double mine = v->ToDouble();
    double later = acc.ToDouble();
    if (mine >= 0 && mine <= later) return *v;
    return Value(-1);
  };
}

Value SumOverEdges(const PropertyGraph& g, const Path& p,
                   const std::string& prop) {
  ObjectList edges;
  for (EdgeId e : p.Edges()) edges.push_back(ObjectRef::Edge(e));
  return Reduce(Value(0), PropertyIota(g, prop), SumStep(g, prop), edges);
}

std::vector<Path> PathsWithReducePredicate(
    const PropertyGraph& g, NodeId u, NodeId v, const Value& init,
    const std::function<Value(ObjectRef)>& iota,
    const std::function<Value(ObjectRef, const Value&)>& f,
    const std::function<bool(const Value&)>& predicate,
    const ReduceQueryOptions& options, ReduceQueryStats* stats) {
  std::vector<Path> results;
  ReduceQueryStats local;
  std::vector<ObjectRef> current = {ObjectRef::Node(u)};
  std::vector<bool> used(g.NumNodes(), false);
  used[u] = true;
  bool stopped = false;

  // DFS over all (bounded) walks; the reduce is recomputed per emitted
  // path — deliberately naive, matching the warning in Section 5.2.
  std::function<void(NodeId, size_t)> dfs = [&](NodeId node, size_t len) {
    if (stopped) return;
    ++local.paths_explored;
    if (node == v) {
      ObjectList edges;
      for (const ObjectRef& o : current) {
        if (o.is_edge()) edges.push_back(o);
      }
      if (predicate(Reduce(init, iota, f, edges))) {
        results.push_back(Path::MakeUnchecked(current));
        if (results.size() >= options.max_results) {
          local.truncated = true;
          stopped = true;
          return;
        }
      }
    }
    if (len >= options.max_path_length) {
      local.truncated = true;
      return;
    }
    for (EdgeId e : g.OutEdges(node)) {
      NodeId next = g.Tgt(e);
      if (options.simple_only && used[next]) continue;
      current.push_back(ObjectRef::Edge(e));
      current.push_back(ObjectRef::Node(next));
      if (options.simple_only) used[next] = true;
      dfs(next, len + 1);
      if (options.simple_only) used[next] = false;
      current.pop_back();
      current.pop_back();
      if (stopped) return;
    }
  };
  dfs(u, 0);
  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace gqzoo
