#include "src/cypher/cypher_fragment.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/regex/lexer.h"

namespace gqzoo {

namespace {

struct Access : CypherPattern {};

std::shared_ptr<Access> Make() { return std::make_shared<Access>(); }

}  // namespace

CypherPatternPtr CypherPattern::Node(std::optional<std::string> var,
                                     std::vector<std::string> labels) {
  auto p = Make();
  p->kind_ = Kind::kNode;
  p->var_ = std::move(var);
  p->labels_ = std::move(labels);
  return p;
}

CypherPatternPtr CypherPattern::Edge(std::optional<std::string> var,
                                     std::vector<std::string> labels) {
  auto p = Make();
  p->kind_ = Kind::kEdge;
  p->var_ = std::move(var);
  p->labels_ = std::move(labels);
  return p;
}

CypherPatternPtr CypherPattern::EdgeStar(std::vector<std::string> labels) {
  auto p = Make();
  p->kind_ = Kind::kEdgeStar;
  p->labels_ = std::move(labels);
  return p;
}

CypherPatternPtr CypherPattern::Concat(CypherPatternPtr a, CypherPatternPtr b) {
  auto p = Make();
  p->kind_ = Kind::kConcat;
  p->children_ = {std::move(a), std::move(b)};
  return p;
}

CypherPatternPtr CypherPattern::Union(CypherPatternPtr a, CypherPatternPtr b) {
  auto p = Make();
  p->kind_ = Kind::kUnion;
  p->children_ = {std::move(a), std::move(b)};
  return p;
}

namespace {

// An element atom as a CoreGQL pattern: label disjunctions become unions
// of single-label atoms (same variable in every arm keeps FV equal).
CorePatternPtr AtomToCore(bool is_edge, const std::optional<std::string>& var,
                          const std::vector<std::string>& labels) {
  auto make = [&](std::optional<std::string> label) {
    return is_edge ? CorePattern::Edge(var, std::move(label))
                   : CorePattern::Node(var, std::move(label));
  };
  if (labels.empty()) return make(std::nullopt);
  CorePatternPtr result = make(labels[0]);
  for (size_t i = 1; i < labels.size(); ++i) {
    result = CorePattern::Union(std::move(result), make(labels[i]));
  }
  return result;
}

RegexPtr LabelsToRegex(const std::vector<std::string>& labels) {
  if (labels.empty()) return Regex::MakeAtom(Atom::Any());
  RegexPtr result = Regex::MakeAtom(Atom::Label(labels[0]));
  for (size_t i = 1; i < labels.size(); ++i) {
    result = Regex::Union(std::move(result),
                          Regex::MakeAtom(Atom::Label(labels[i])));
  }
  return result;
}

}  // namespace

CorePatternPtr CypherPattern::ToCorePattern() const {
  switch (kind_) {
    case Kind::kNode:
      return AtomToCore(/*is_edge=*/false, var_, labels_);
    case Kind::kEdge:
      return AtomToCore(/*is_edge=*/true, var_, labels_);
    case Kind::kEdgeStar:
      return CorePattern::Repeat(
          AtomToCore(/*is_edge=*/true, std::nullopt, labels_), 0,
          CorePattern::kUnbounded);
    case Kind::kConcat:
      return CorePattern::Concat(left()->ToCorePattern(),
                                 right()->ToCorePattern());
    case Kind::kUnion:
      return CorePattern::Union(left()->ToCorePattern(),
                                right()->ToCorePattern());
  }
  return CorePattern::Node(std::nullopt, std::nullopt);
}

RegexPtr CypherPattern::ToRegex() const {
  switch (kind_) {
    case Kind::kNode:
      return Regex::Epsilon();
    case Kind::kEdge:
      return LabelsToRegex(labels_);
    case Kind::kEdgeStar:
      return Regex::Star(LabelsToRegex(labels_));
    case Kind::kConcat:
      return Regex::Concat(left()->ToRegex(), right()->ToRegex());
    case Kind::kUnion:
      return Regex::Union(left()->ToRegex(), right()->ToRegex());
  }
  return Regex::Epsilon();
}

std::string CypherPattern::ToString() const {
  auto label_text = [](const std::vector<std::string>& labels) {
    std::string out;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out += "|";
      out += labels[i];
    }
    return out;
  };
  switch (kind_) {
    case Kind::kNode: {
      std::string out = "(" + var_.value_or("");
      if (!labels_.empty()) out += ":" + label_text(labels_);
      return out + ")";
    }
    case Kind::kEdge: {
      if (!var_.has_value() && labels_.empty()) return "->";
      std::string out = "-[" + var_.value_or("");
      if (!labels_.empty()) out += ":" + label_text(labels_);
      return out + "]->";
    }
    case Kind::kEdgeStar:
      return "-[:" + label_text(labels_) + "*]->";
    case Kind::kConcat:
      return left()->ToString() + " " + right()->ToString();
    case Kind::kUnion:
      return "(" + left()->ToString() + " | " + right()->ToString() + ")";
  }
  return "?";
}

namespace {

class FragmentParser {
 public:
  explicit FragmentParser(const std::vector<Token>& tokens)
      : tokens_(tokens) {}

  Result<CypherPatternPtr> Parse() {
    Result<CypherPatternPtr> p = ParseUnion();
    if (!p.ok()) return p;
    if (tokens_[pos_].kind != Token::Kind::kEnd) {
      return Err("trailing input");
    }
    return p;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t k = 1) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Error Err(const std::string& message) {
    return Error("Cypher fragment parse error at offset " +
                 std::to_string(Cur().offset) + " ('" + Cur().text +
                 "'): " + message);
  }

  Result<CypherPatternPtr> ParseUnion() {
    Result<CypherPatternPtr> lhs = ParseSeq();
    if (!lhs.ok()) return lhs;
    CypherPatternPtr result = std::move(lhs).value();
    while (Cur().IsPunct("|")) {
      ++pos_;
      Result<CypherPatternPtr> rhs = ParseSeq();
      if (!rhs.ok()) return rhs;
      result = CypherPattern::Union(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  bool StartsBase() const {
    return Cur().IsPunct("(") || Cur().IsPunct("-") || Cur().IsPunct("->");
  }

  Result<CypherPatternPtr> ParseSeq() {
    Result<CypherPatternPtr> first = ParseBase();
    if (!first.ok()) return first;
    CypherPatternPtr result = std::move(first).value();
    while (StartsBase()) {
      Result<CypherPatternPtr> next = ParseBase();
      if (!next.ok()) return next;
      result =
          CypherPattern::Concat(std::move(result), std::move(next).value());
    }
    return result;
  }

  Result<CypherPatternPtr> ParseBase() {
    if (Cur().IsPunct("->")) {
      ++pos_;
      return CypherPattern::Edge(std::nullopt, {});
    }
    if (Cur().IsPunct("-")) return ParseBracketEdge();
    if (!Cur().IsPunct("(")) return Err("expected '(', '-[', or '->'");
    const Token& next = Peek();
    if (next.IsPunct(")") || next.IsPunct(":") ||
        (next.kind == Token::Kind::kIdent &&
         (Peek(2).IsPunct(")") || Peek(2).IsPunct(":")))) {
      return ParseNode();
    }
    ++pos_;  // group
    Result<CypherPatternPtr> inner = ParseUnion();
    if (!inner.ok()) return inner;
    if (!Cur().IsPunct(")")) return Err("expected ')'");
    ++pos_;
    return inner;
  }

  Result<CypherPatternPtr> ParseNode() {
    ++pos_;  // '('
    std::optional<std::string> var;
    if (Cur().kind == Token::Kind::kIdent) {
      var = Cur().text;
      ++pos_;
    }
    std::vector<std::string> labels;
    if (Cur().IsPunct(":")) {
      ++pos_;
      Result<bool> ok = ParseLabelDisjunction(&labels);
      if (!ok.ok()) return ok.error();
    }
    if (!Cur().IsPunct(")")) return Err("expected ')'");
    ++pos_;
    return CypherPattern::Node(std::move(var), std::move(labels));
  }

  Result<CypherPatternPtr> ParseBracketEdge() {
    ++pos_;  // '-'
    if (!Cur().IsPunct("[")) return Err("expected '['");
    ++pos_;
    std::optional<std::string> var;
    if (Cur().kind == Token::Kind::kIdent) {
      var = Cur().text;
      ++pos_;
    }
    std::vector<std::string> labels;
    bool star = false;
    if (Cur().IsPunct(":")) {
      ++pos_;
      Result<bool> ok = ParseLabelDisjunction(&labels);
      if (!ok.ok()) return ok.error();
      if (Cur().IsPunct("*")) {
        star = true;
        ++pos_;
      }
    }
    if (!Cur().IsPunct("]")) return Err("expected ']'");
    ++pos_;
    if (!Cur().IsPunct("->")) return Err("expected '->'");
    ++pos_;
    if (star) {
      if (var.has_value()) {
        return Err("starred edges cannot carry a variable in the fragment");
      }
      return CypherPattern::EdgeStar(std::move(labels));
    }
    return CypherPattern::Edge(std::move(var), std::move(labels));
  }

  Result<bool> ParseLabelDisjunction(std::vector<std::string>* labels) {
    if (Cur().kind != Token::Kind::kIdent) return Err("expected label");
    labels->push_back(Cur().text);
    ++pos_;
    while (Cur().IsPunct("|")) {
      ++pos_;
      if (Cur().kind != Token::Kind::kIdent) return Err("expected label");
      labels->push_back(Cur().text);
      ++pos_;
    }
    return true;
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<CypherPatternPtr> ParseCypherPattern(const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.error();
  FragmentParser parser(tokens.value());
  return parser.Parse();
}

// --- Unary language analysis (Proposition 22) ---------------------------

void UnaryLanguage::Normalize() {
  if (threshold == SIZE_MAX) return;
  // Clear finite bits covered by the threshold, then absorb any contiguous
  // run of set bits directly below the threshold.
  for (size_t i = threshold; i < kMaxFinite; ++i) finite[i] = false;
  while (threshold > 0 && threshold - 1 < kMaxFinite && finite[threshold - 1]) {
    --threshold;
    finite[threshold] = false;
  }
}

UnaryLanguage UnaryLanguage::Single(size_t n) {
  UnaryLanguage out;
  assert(n < kMaxFinite);
  out.finite[n] = true;
  return out;
}

UnaryLanguage UnaryLanguage::AllLengths() {
  UnaryLanguage out;
  out.threshold = 0;
  return out;
}

UnaryLanguage UnaryLanguage::UnionOf(const UnaryLanguage& a,
                                     const UnaryLanguage& b) {
  UnaryLanguage out;
  for (size_t i = 0; i < kMaxFinite; ++i) out.finite[i] = a.finite[i] || b.finite[i];
  out.threshold = std::min(a.threshold, b.threshold);
  out.Normalize();
  return out;
}

UnaryLanguage UnaryLanguage::SumOf(const UnaryLanguage& a,
                                   const UnaryLanguage& b) {
  UnaryLanguage out;
  // Empty factor annihilates.
  auto is_empty = [](const UnaryLanguage& l) {
    if (l.threshold != SIZE_MAX) return false;
    return std::find(l.finite.begin(), l.finite.end(), true) == l.finite.end();
  };
  if (is_empty(a) || is_empty(b)) return out;
  auto min_elem = [](const UnaryLanguage& l) {
    for (size_t i = 0; i < kMaxFinite; ++i) {
      if (l.finite[i]) return std::min<size_t>(i, l.threshold);
    }
    return l.threshold;
  };
  // Finite + finite sums.
  for (size_t i = 0; i < kMaxFinite; ++i) {
    if (!a.finite[i]) continue;
    for (size_t j = 0; j + i < kMaxFinite; ++j) {
      if (b.finite[j]) out.finite[i + j] = true;
    }
  }
  // Upward-closed contributions.
  size_t t = SIZE_MAX;
  if (a.threshold != SIZE_MAX) {
    t = std::min(t, a.threshold + min_elem(b));
  }
  if (b.threshold != SIZE_MAX) {
    t = std::min(t, b.threshold + min_elem(a));
  }
  out.threshold = t;
  out.Normalize();
  return out;
}

UnaryLanguage UnaryLanguageOf(const CypherPattern& p,
                              const std::string& label) {
  auto label_hits = [&](const std::vector<std::string>& labels) {
    // Over a one-letter alphabet, the atom matches iff it is a wildcard or
    // mentions the letter.
    return labels.empty() ||
           std::find(labels.begin(), labels.end(), label) != labels.end();
  };
  switch (p.kind()) {
    case CypherPattern::Kind::kNode:
      // Node label constraints are satisfied in the language view.
      return UnaryLanguage::Single(0);
    case CypherPattern::Kind::kEdge:
      return label_hits(p.labels()) ? UnaryLanguage::Single(1)
                                    : UnaryLanguage();  // ∅
    case CypherPattern::Kind::kEdgeStar:
      return label_hits(p.labels()) ? UnaryLanguage::AllLengths()
                                    : UnaryLanguage::Single(0);
    case CypherPattern::Kind::kConcat:
      return UnaryLanguage::SumOf(UnaryLanguageOf(*p.left(), label),
                                  UnaryLanguageOf(*p.right(), label));
    case CypherPattern::Kind::kUnion:
      return UnaryLanguage::UnionOf(UnaryLanguageOf(*p.left(), label),
                                    UnaryLanguageOf(*p.right(), label));
  }
  return UnaryLanguage();
}

std::vector<UnaryLanguage> EnumerateFragmentUnaryLanguages(size_t max_atoms) {
  // languages_by_size[k] = languages of patterns with exactly k atoms.
  std::vector<std::set<UnaryLanguage>> by_size(max_atoms + 1);
  if (max_atoms >= 1) {
    by_size[1].insert(UnaryLanguage::Single(0));   // a node atom
    by_size[1].insert(UnaryLanguage::Single(1));   // an edge atom
    by_size[1].insert(UnaryLanguage());            // edge with wrong label: ∅
    by_size[1].insert(UnaryLanguage::AllLengths());  // -[:ℓ*]->
  }
  for (size_t n = 2; n <= max_atoms; ++n) {
    for (size_t i = 1; i < n; ++i) {
      for (const UnaryLanguage& a : by_size[i]) {
        for (const UnaryLanguage& b : by_size[n - i]) {
          by_size[n].insert(UnaryLanguage::SumOf(a, b));
          by_size[n].insert(UnaryLanguage::UnionOf(a, b));
        }
      }
    }
  }
  std::set<UnaryLanguage> all;
  for (const auto& s : by_size) all.insert(s.begin(), s.end());
  return std::vector<UnaryLanguage>(all.begin(), all.end());
}

}  // namespace gqzoo
