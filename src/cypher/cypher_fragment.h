#ifndef GQZOO_CYPHER_CYPHER_FRAGMENT_H_
#define GQZOO_CYPHER_CYPHER_FRAGMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/coregql/pattern.h"
#include "src/regex/ast.h"
#include "src/util/result.h"

namespace gqzoo {

class CypherPattern;
using CypherPatternPtr = std::shared_ptr<const CypherPattern>;

/// The Cypher pattern fragment of Section 5.1:
///
///     π := (x:L) | -[x:L]-> | -[:L*]-> | π1 π2 | π1 + π2
///
/// where L is a disjunction of labels ℓ1|…|ℓn (empty = wildcard).
/// Repetition is only available on label disjunctions — the restriction
/// behind Proposition 22: `(ℓℓ)*` is not expressible.
class CypherPattern {
 public:
  enum class Kind : uint8_t { kNode, kEdge, kEdgeStar, kConcat, kUnion };

  static CypherPatternPtr Node(std::optional<std::string> var,
                               std::vector<std::string> labels);
  static CypherPatternPtr Edge(std::optional<std::string> var,
                               std::vector<std::string> labels);
  static CypherPatternPtr EdgeStar(std::vector<std::string> labels);
  static CypherPatternPtr Concat(CypherPatternPtr a, CypherPatternPtr b);
  static CypherPatternPtr Union(CypherPatternPtr a, CypherPatternPtr b);

  Kind kind() const { return kind_; }
  const std::optional<std::string>& var() const { return var_; }
  const std::vector<std::string>& labels() const { return labels_; }
  const CypherPatternPtr& left() const { return children_[0]; }
  const CypherPatternPtr& right() const { return children_[1]; }

  /// Lowers into a CoreGQL pattern (the fragment is a sub-language), for
  /// evaluation on property graphs.
  CorePatternPtr ToCorePattern() const;

  /// The edge-label regular expression this pattern matches (node atoms
  /// are ε; node label constraints are dropped — use this for pure
  /// language-level analysis à la Proposition 22).
  RegexPtr ToRegex() const;

  std::string ToString() const;

 protected:
  CypherPattern() = default;

 private:
  Kind kind_ = Kind::kNode;
  std::optional<std::string> var_;
  std::vector<std::string> labels_;
  std::vector<CypherPatternPtr> children_;
};

/// Parses the fragment syntax: `(x:A|B)`, `()`, `-[e:T]->`, `-[:T|S]->`,
/// `-[:T*]->`, `->`, juxtaposition for concatenation, `|` between
/// parenthesized groups for union.
Result<CypherPatternPtr> ParseCypherPattern(const std::string& text);

/// A unary regular language of the special shape every Cypher-fragment
/// pattern denotes over a one-letter alphabet: a finite set of lengths
/// plus, possibly, *all* lengths from some threshold up (upward closure).
/// Proposition 22 follows because (ℓℓ)* — the even lengths — is infinite
/// but not upward closed.
struct UnaryLanguage {
  static constexpr size_t kMaxFinite = 256;
  /// Membership of lengths below min(threshold, kMaxFinite).
  std::vector<bool> finite = std::vector<bool>(kMaxFinite, false);
  /// All lengths ≥ threshold are in the language (SIZE_MAX: none).
  size_t threshold = SIZE_MAX;

  bool Contains(size_t n) const {
    if (n >= threshold) return true;
    return n < kMaxFinite && finite[n];
  }
  bool IsInfinite() const { return threshold != SIZE_MAX; }

  static UnaryLanguage Single(size_t n);
  static UnaryLanguage AllLengths();  // ℕ (from ℓ*)
  static UnaryLanguage UnionOf(const UnaryLanguage& a, const UnaryLanguage& b);
  static UnaryLanguage SumOf(const UnaryLanguage& a, const UnaryLanguage& b);

  bool operator==(const UnaryLanguage& o) const {
    return finite == o.finite && threshold == o.threshold;
  }
  bool operator<(const UnaryLanguage& o) const {
    if (threshold != o.threshold) return threshold < o.threshold;
    return finite < o.finite;
  }

 private:
  void Normalize();
};

/// The unary language of a fragment pattern over the single label `label`
/// (atoms with other labels or non-trivial node labels denote ∅/ε as
/// appropriate; used by the Proposition 22 experiment).
UnaryLanguage UnaryLanguageOf(const CypherPattern& p, const std::string& label);

/// Enumerates the unary languages of *all* fragment patterns with at most
/// `max_atoms` atoms over a one-letter alphabet (deduplicated). The
/// Proposition 22 test checks that none of them equals the even-length
/// language of (ℓℓ)*.
std::vector<UnaryLanguage> EnumerateFragmentUnaryLanguages(size_t max_atoms);

}  // namespace gqzoo

#endif  // GQZOO_CYPHER_CYPHER_FRAGMENT_H_
