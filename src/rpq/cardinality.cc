#include "src/rpq/cardinality.h"

#include <algorithm>
#include <random>
#include <set>

#include "src/rpq/rpq_eval.h"

namespace gqzoo {

GraphStatistics::GraphStatistics(const EdgeLabeledGraph& g)
    : num_nodes_(g.NumNodes()), num_edges_(g.NumEdges()) {
  const size_t num_labels = g.NumLabels();
  edge_count_.assign(num_labels, 0);
  std::vector<std::set<NodeId>> srcs(num_labels), tgts(num_labels);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    LabelId l = g.EdgeLabel(e);
    ++edge_count_[l];
    srcs[l].insert(g.Src(e));
    tgts[l].insert(g.Tgt(e));
  }
  distinct_src_.resize(num_labels);
  distinct_tgt_.resize(num_labels);
  for (size_t l = 0; l < num_labels; ++l) {
    distinct_src_[l] = srcs[l].size();
    distinct_tgt_[l] = tgts[l].size();
  }
}

GraphStatistics::GraphStatistics(const GraphSnapshot& s)
    : num_nodes_(s.NumNodes()), num_edges_(s.graph().NumEdges()) {
  const EdgeLabeledGraph& g = s.graph();
  const size_t num_labels = g.NumLabels();
  edge_count_.assign(num_labels, 0);
  distinct_src_.resize(num_labels);
  distinct_tgt_.resize(num_labels);
  std::vector<NodeId> srcs, tgts;
  for (LabelId l = 0; l < num_labels; ++l) {
    GraphSnapshot::Slice slice = s.EdgesWithLabel(l);
    edge_count_[l] = slice.size();
    srcs.clear();
    tgts.clear();
    for (const GraphSnapshot::Hop& hop : slice) {
      srcs.push_back(g.Src(hop.edge));
      tgts.push_back(hop.node);
    }
    std::sort(srcs.begin(), srcs.end());
    std::sort(tgts.begin(), tgts.end());
    distinct_src_[l] = std::unique(srcs.begin(), srcs.end()) - srcs.begin();
    distinct_tgt_[l] = std::unique(tgts.begin(), tgts.end()) - tgts.begin();
  }
}

size_t GraphStatistics::EdgeCount(LabelId l) const {
  return l < edge_count_.size() ? edge_count_[l] : 0;
}

size_t GraphStatistics::DistinctSources(LabelId l) const {
  return l < distinct_src_.size() ? distinct_src_[l] : 0;
}

size_t GraphStatistics::DistinctTargets(LabelId l) const {
  return l < distinct_tgt_.size() ? distinct_tgt_[l] : 0;
}

double GraphStatistics::AvgOutDegree(LabelId l) const {
  return num_nodes_ == 0
             ? 0.0
             : static_cast<double>(EdgeCount(l)) / static_cast<double>(num_nodes_);
}

double GraphStatistics::EdgesMatching(const LabelPred& pred) const {
  switch (pred.kind) {
    case LabelPred::Kind::kNone:
      return 0.0;
    case LabelPred::Kind::kOne:
      return static_cast<double>(EdgeCount(pred.labels[0]));
    case LabelPred::Kind::kNegSet: {
      double excluded = 0;
      for (LabelId l : pred.labels) {
        excluded += static_cast<double>(EdgeCount(l));
      }
      return static_cast<double>(num_edges_) - excluded;
    }
    case LabelPred::Kind::kAny:
      return static_cast<double>(num_edges_);
  }
  return 0.0;
}

double EstimateRpqCardinalitySynopsis(const GraphStatistics& stats,
                                      const Nfa& nfa, size_t max_iterations) {
  const double n = static_cast<double>(stats.num_nodes());
  if (n == 0) return 0.0;
  // r[q]: expected number of distinct nodes reachable (from one uniformly
  // random start node) while the automaton is in state q. Propagated to a
  // bounded fixpoint under the independence assumption, saturating at |V|.
  std::vector<double> r(nfa.num_states(), 0.0);
  r[nfa.initial()] = 1.0;
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    std::vector<double> contribution(nfa.num_states(), 0.0);
    for (uint32_t q = 0; q < nfa.num_states(); ++q) {
      if (r[q] == 0.0) continue;
      for (const Nfa::Transition& t : nfa.Out(q)) {
        // Expected successors per reached node ≈ matching edges / |V|
        // (for inverse transitions the same ratio serves as the expected
        // in-degree).
        contribution[t.to] += r[q] * (stats.EdgesMatching(t.pred) / n);
      }
    }
    bool changed = false;
    for (uint32_t q = 0; q < nfa.num_states(); ++q) {
      double updated = std::min(n, std::max(r[q], contribution[q]));
      if (updated > r[q] * 1.0001 + 1e-12) changed = true;
      r[q] = updated;
    }
    if (!changed) break;
  }
  double per_start = 0.0;
  for (uint32_t q = 0; q < nfa.num_states(); ++q) {
    if (nfa.accepting(q)) per_start += r[q];
  }
  per_start = std::min(per_start, n);
  return std::min(per_start * n, n * n);
}

double EstimateRpqCardinalitySampling(const EdgeLabeledGraph& g,
                                      const Nfa& nfa, size_t sample_size,
                                      uint64_t seed) {
  if (g.NumNodes() == 0 || sample_size == 0) return 0.0;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(
      0, static_cast<NodeId>(g.NumNodes() - 1));
  size_t total = 0;
  for (size_t i = 0; i < sample_size; ++i) {
    total += EvalRpqFrom(g, nfa, pick(rng)).size();
  }
  return static_cast<double>(total) / static_cast<double>(sample_size) *
         static_cast<double>(g.NumNodes());
}

double EstimateRpqCardinalitySampling(const GraphSnapshot& s, const Nfa& nfa,
                                      size_t sample_size, uint64_t seed) {
  if (s.NumNodes() == 0 || sample_size == 0) return 0.0;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(
      0, static_cast<NodeId>(s.NumNodes() - 1));
  size_t total = 0;
  for (size_t i = 0; i < sample_size; ++i) {
    total += EvalRpqFrom(s, nfa, pick(rng)).size();
  }
  return static_cast<double>(total) / static_cast<double>(sample_size) *
         static_cast<double>(s.NumNodes());
}

}  // namespace gqzoo
