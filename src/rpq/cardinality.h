#ifndef GQZOO_RPQ_CARDINALITY_H_
#define GQZOO_RPQ_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace gqzoo {

/// Cardinality estimation for RPQs — Section 7.1 names "how to develop
/// cardinality estimation approaches for (C)RPQs" as an open direction;
/// this module provides the two textbook baselines a query optimizer
/// would start from.

/// Per-label synopsis of a graph: edge counts and distinct endpoint counts
/// (the analogue of relational per-attribute statistics).
class GraphStatistics {
 public:
  explicit GraphStatistics(const EdgeLabeledGraph& g);
  /// Builds the same synopsis from a snapshot's per-label edge lists
  /// (one pass per label slice instead of a full edge scan).
  explicit GraphStatistics(const GraphSnapshot& s);

  size_t num_nodes() const { return num_nodes_; }
  size_t EdgeCount(LabelId l) const;
  size_t DistinctSources(LabelId l) const;
  size_t DistinctTargets(LabelId l) const;

  /// Expected out-degree via label `l` from a uniformly random node.
  double AvgOutDegree(LabelId l) const;

  /// Total edges matching a predicate (exact, from the synopsis).
  double EdgesMatching(const LabelPred& pred) const;

 private:
  size_t num_nodes_;
  size_t num_edges_;
  std::vector<size_t> edge_count_;        // by label
  std::vector<size_t> distinct_src_;      // by label
  std::vector<size_t> distinct_tgt_;      // by label
};

/// Synopsis-based estimate of |[[R]]_G| (number of answer pairs), under
/// edge-independence: propagate an expected frontier size through the
/// automaton per start node, with saturation at |V| and a bounded number
/// of star iterations. Fast (no graph access beyond the synopsis) but can
/// be badly off on correlated graphs — that is the point of the E17 bench.
double EstimateRpqCardinalitySynopsis(const GraphStatistics& stats,
                                      const Nfa& nfa,
                                      size_t max_iterations = 32);

/// Sampling-based estimate: run the exact single-source evaluation from
/// `sample_size` uniformly random start nodes and scale up. Unbiased, cost
/// proportional to the sampled BFS work.
double EstimateRpqCardinalitySampling(const EdgeLabeledGraph& g,
                                      const Nfa& nfa, size_t sample_size,
                                      uint64_t seed);

/// Snapshot variant: the sampled single-source evaluations run on the
/// label-indexed CSR. Same estimate for the same seed.
double EstimateRpqCardinalitySampling(const GraphSnapshot& s, const Nfa& nfa,
                                      size_t sample_size, uint64_t seed);

}  // namespace gqzoo

#endif  // GQZOO_RPQ_CARDINALITY_H_
