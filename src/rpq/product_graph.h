#ifndef GQZOO_RPQ_PRODUCT_GRAPH_H_
#define GQZOO_RPQ_PRODUCT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/graph.h"

namespace gqzoo {

/// The product graph `G × N_R` of Section 6.2: nodes are pairs `(v, q)` of
/// a graph node and an automaton state; there is an edge
/// `(e, (q1, a, q2))` from `(src(e), q1)` to `(tgt(e), q2)` whenever the
/// transition's predicate matches `λ(e)`.
///
/// Product nodes are encoded densely as `v * num_states + q`, so the
/// structure is just adjacency lists plus bookkeeping. Transitions keep
/// their capture annotation so the PMR layer (src/pmr) can enumerate
/// l-RPQ bindings from the same structure.
class ProductGraph {
 public:
  struct Arc {
    uint32_t to;        // encoded product node
    EdgeId edge;        // the underlying graph edge
    uint32_t capture;   // Nfa::kNoCapture or a capture index
    bool reversed;      // arc from an inverse transition (2RPQs, Remark 9)
  };

  ProductGraph(const EdgeLabeledGraph& g, const Nfa& nfa);

  uint32_t num_product_nodes() const {
    return static_cast<uint32_t>(out_.size());
  }
  uint32_t Encode(NodeId v, uint32_t q) const { return v * num_states_ + q; }
  NodeId GraphNode(uint32_t id) const { return id / num_states_; }
  uint32_t State(uint32_t id) const { return id % num_states_; }

  const std::vector<Arc>& Out(uint32_t id) const { return out_[id]; }

  uint32_t num_states() const { return num_states_; }
  const Nfa& nfa() const { return *nfa_; }
  const EdgeLabeledGraph& graph() const { return *graph_; }

  size_t NumArcs() const;

  /// Is `(v, q)` accepting (q accepting in the NFA)?
  bool Accepting(uint32_t id) const { return nfa_->accepting(State(id)); }

 private:
  const EdgeLabeledGraph* graph_;
  const Nfa* nfa_;
  uint32_t num_states_;
  std::vector<std::vector<Arc>> out_;
};

}  // namespace gqzoo

#endif  // GQZOO_RPQ_PRODUCT_GRAPH_H_
