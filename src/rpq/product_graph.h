#ifndef GQZOO_RPQ_PRODUCT_GRAPH_H_
#define GQZOO_RPQ_PRODUCT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace gqzoo {

/// The product graph `G × N_R` of Section 6.2: nodes are pairs `(v, q)` of
/// a graph node and an automaton state; there is an edge
/// `(e, (q1, a, q2))` from `(src(e), q1)` to `(tgt(e), q2)` whenever the
/// transition's predicate matches `λ(e)`.
///
/// Product nodes are encoded densely as `v * num_states + q`, so the
/// structure is just adjacency lists plus bookkeeping. Transitions keep
/// their capture annotation so the PMR layer (src/pmr) can enumerate
/// l-RPQ bindings from the same structure.
///
/// Ids stay 32-bit because this class *materializes* one adjacency list
/// per product node — a product past 2^32 nodes could not be allocated in
/// any case — but the constructors size the product in 64 bits and throw
/// `std::length_error` instead of silently wrapping (the lazy BFS in
/// rpq_eval handles oversized products; only materialization is bounded).
class ProductGraph {
 public:
  struct Arc {
    uint32_t to;        // encoded product node
    EdgeId edge;        // the underlying graph edge
    uint32_t capture;   // Nfa::kNoCapture or a capture index
    bool reversed;      // arc from an inverse transition (2RPQs, Remark 9)
  };

  ProductGraph(const EdgeLabeledGraph& g, const Nfa& nfa);
  /// Label-sliced construction: instead of testing every (edge, transition)
  /// combination, each transition pulls exactly its matching edges from the
  /// snapshot's per-label edge lists. Per-node arc lists are canonicalized
  /// to the seed constructor's order (edge-major, transition order within
  /// an edge) so downstream enumeration — including truncated-binding
  /// prefixes — is identical.
  ProductGraph(const GraphSnapshot& s, const Nfa& nfa);

  uint32_t num_product_nodes() const {
    return static_cast<uint32_t>(out_.size());
  }
  /// 64-bit arithmetic: `v * num_states` overflows uint32 on the paper's
  /// large families even when the materialized product (guarded at
  /// construction) fits.
  uint32_t Encode(NodeId v, uint32_t q) const {
    return static_cast<uint32_t>(static_cast<uint64_t>(v) * num_states_ + q);
  }
  NodeId GraphNode(uint32_t id) const { return id / num_states_; }
  uint32_t State(uint32_t id) const { return id % num_states_; }

  const std::vector<Arc>& Out(uint32_t id) const { return out_[id]; }

  uint32_t num_states() const { return num_states_; }
  const Nfa& nfa() const { return *nfa_; }
  const EdgeLabeledGraph& graph() const { return *graph_; }

  size_t NumArcs() const;

  /// Is `(v, q)` accepting (q accepting in the NFA)?
  bool Accepting(uint32_t id) const { return nfa_->accepting(State(id)); }

 private:
  /// Throws std::length_error unless the product fits 32-bit ids.
  void AllocateProduct(size_t num_nodes);
  void AddArcsFor(uint32_t q, const Nfa::Transition& t, EdgeId e, NodeId src,
                  NodeId tgt);

  const EdgeLabeledGraph* graph_;
  const Nfa* nfa_;
  uint32_t num_states_;
  std::vector<std::vector<Arc>> out_;
};

}  // namespace gqzoo

#endif  // GQZOO_RPQ_PRODUCT_GRAPH_H_
