#include "src/rpq/product_graph.h"

namespace gqzoo {

ProductGraph::ProductGraph(const EdgeLabeledGraph& g, const Nfa& nfa)
    : graph_(&g), nfa_(&nfa), num_states_(nfa.num_states()) {
  out_.assign(g.NumNodes() * num_states_, {});
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    LabelId l = g.EdgeLabel(e);
    NodeId src = g.Src(e);
    NodeId tgt = g.Tgt(e);
    for (uint32_t q = 0; q < num_states_; ++q) {
      for (const Nfa::Transition& t : nfa.Out(q)) {
        if (!t.pred.Matches(l)) continue;
        if (t.inverse) {
          out_[Encode(tgt, q)].push_back(
              {Encode(src, t.to), e, t.capture, true});
        } else {
          out_[Encode(src, q)].push_back(
              {Encode(tgt, t.to), e, t.capture, false});
        }
      }
    }
  }
}

size_t ProductGraph::NumArcs() const {
  size_t n = 0;
  for (const auto& arcs : out_) n += arcs.size();
  return n;
}

}  // namespace gqzoo
