#include "src/rpq/product_graph.h"

#include <algorithm>
#include <stdexcept>

namespace gqzoo {

void ProductGraph::AllocateProduct(size_t num_nodes) {
  const uint64_t product =
      static_cast<uint64_t>(num_nodes) * num_states_;
  if (product > UINT32_MAX) {
    // One adjacency list per product node: a product past 2^32 could not
    // be materialized anyway, so fail loudly instead of wrapping ids.
    throw std::length_error(
        "ProductGraph: graph x NFA product exceeds 2^32 nodes; "
        "use the lazy product BFS (EvalRpq) instead of materializing");
  }
  out_.assign(static_cast<size_t>(product), {});
}

void ProductGraph::AddArcsFor(uint32_t q, const Nfa::Transition& t, EdgeId e,
                              NodeId src, NodeId tgt) {
  if (t.inverse) {
    out_[Encode(tgt, q)].push_back({Encode(src, t.to), e, t.capture, true});
  } else {
    out_[Encode(src, q)].push_back({Encode(tgt, t.to), e, t.capture, false});
  }
}

ProductGraph::ProductGraph(const EdgeLabeledGraph& g, const Nfa& nfa)
    : graph_(&g), nfa_(&nfa), num_states_(nfa.num_states()) {
  AllocateProduct(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    LabelId l = g.EdgeLabel(e);
    NodeId src = g.Src(e);
    NodeId tgt = g.Tgt(e);
    for (uint32_t q = 0; q < num_states_; ++q) {
      for (const Nfa::Transition& t : nfa.Out(q)) {
        if (t.pred.Matches(l)) AddArcsFor(q, t, e, src, tgt);
      }
    }
  }
}

ProductGraph::ProductGraph(const GraphSnapshot& s, const Nfa& nfa)
    : graph_(&s.graph()), nfa_(&nfa), num_states_(nfa.num_states()) {
  AllocateProduct(s.NumNodes());
  const EdgeLabeledGraph& g = s.graph();
  // Transition-major fill: each transition touches exactly the edges its
  // predicate matches, via the snapshot's graph-wide per-label edge lists.
  auto add_for_label = [&](uint32_t q, const Nfa::Transition& t, LabelId l) {
    for (const GraphSnapshot::Hop& hop : s.EdgesWithLabel(l)) {
      AddArcsFor(q, t, hop.edge, g.Src(hop.edge), hop.node);
    }
  };
  for (uint32_t q = 0; q < num_states_; ++q) {
    for (const Nfa::Transition& t : nfa.Out(q)) {
      switch (t.pred.kind) {
        case LabelPred::Kind::kNone:
          break;
        case LabelPred::Kind::kOne:
          add_for_label(q, t, t.pred.labels[0]);
          break;
        case LabelPred::Kind::kAny:
          for (LabelId l = 0; l < s.NumLabels(); ++l) add_for_label(q, t, l);
          break;
        case LabelPred::Kind::kNegSet:
          for (LabelId l = 0; l < s.NumLabels(); ++l) {
            if (t.pred.Matches(l)) add_for_label(q, t, l);
          }
          break;
      }
    }
  }
  // Canonicalize to the seed constructor's per-node order (edge-major;
  // stable keeps transition order within an edge), so enumeration order —
  // and any truncated prefix of it — matches the reference path exactly.
  for (auto& arcs : out_) {
    std::stable_sort(arcs.begin(), arcs.end(),
                     [](const Arc& a, const Arc& b) { return a.edge < b.edge; });
  }
}

size_t ProductGraph::NumArcs() const {
  size_t n = 0;
  for (const auto& arcs : out_) n += arcs.size();
  return n;
}

}  // namespace gqzoo
