#include "src/rpq/bag_semantics.h"

#include <cassert>
#include <unordered_map>

#include "src/util/interner.h"

namespace gqzoo {

namespace {

struct MemoKey {
  const Regex* regex;
  NodeId u;
  NodeId v;
  bool operator==(const MemoKey& o) const {
    return regex == o.regex && u == o.u && v == o.v;
  }
};

struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const {
    size_t h = std::hash<const void*>()(k.regex);
    h = HashCombine(h, k.u);
    return HashCombine(h, k.v);
  }
};

class BagCounter {
 public:
  explicit BagCounter(const EdgeLabeledGraph& g,
                      const GraphSnapshot* snap = nullptr)
      : g_(g), snap_(snap) {
    assert(g.NumNodes() <= 64 && "bag counting uses a 64-bit node bitmask");
  }

  BigUint Count(const Regex& r, NodeId u, NodeId v) {
    MemoKey key{&r, u, v};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    BigUint result = Compute(r, u, v);
    memo_.emplace(key, result);
    return result;
  }

 private:
  BigUint Compute(const Regex& r, NodeId u, NodeId v) {
    switch (r.op()) {
      case Regex::Op::kEpsilon:
        return BigUint(u == v ? 1 : 0);
      case Regex::Op::kAtom: {
        uint64_t count = 0;
        if (snap_ != nullptr) {
          snap_->ForEachMatch(u, AtomPred(r.atom()), /*inverse=*/false,
                              [&](const GraphSnapshot::Hop& hop) {
                                if (hop.node == v) ++count;
                              });
        } else {
          for (EdgeId e : g_.OutEdges(u)) {
            if (g_.Tgt(e) == v && AtomMatches(r.atom(), g_.EdgeLabel(e))) {
              ++count;
            }
          }
        }
        return BigUint(count);
      }
      case Regex::Op::kConcat: {
        BigUint total;
        for (NodeId w = 0; w < g_.NumNodes(); ++w) {
          BigUint left = Count(*r.left(), u, w);
          if (left.is_zero()) continue;
          total += left * Count(*r.right(), w, v);
        }
        return total;
      }
      case Regex::Op::kUnion:
        return Count(*r.left(), u, v) + Count(*r.right(), u, v);
      case Regex::Op::kOptional: {
        BigUint total = Count(*r.child(), u, v);
        if (u == v) total += BigUint(1);
        return total;
      }
      case Regex::Op::kStar:
        return StarCount(*r.child(), u, v);
      case Regex::Op::kPlus: {
        // R+ = R · R*: the 2012 draft treats the leading R as an ordinary
        // subexpression and the tail by ALP expansion.
        BigUint total;
        for (NodeId w = 0; w < g_.NumNodes(); ++w) {
          BigUint head = Count(*r.child(), u, w);
          if (head.is_zero()) continue;
          total += head * StarCount(*r.child(), w, v);
        }
        return total;
      }
    }
    return BigUint();
  }

  BigUint StarCount(const Regex& body, NodeId u, NodeId v) {
    BigUint total;
    if (u == v) total += BigUint(1);  // the empty expansion (k = 0)
    StarDfs(body, u, v, uint64_t{1} << u, BigUint(1), &total);
    return total;
  }

  // Extends a node-distinct sequence ending at `current` with one more
  // step; `acc` is the product of multiplicities so far.
  void StarDfs(const Regex& body, NodeId current, NodeId v, uint64_t visited,
               const BigUint& acc, BigUint* total) {
    for (NodeId w = 0; w < g_.NumNodes(); ++w) {
      if ((visited >> w) & 1) continue;
      BigUint step = Count(body, current, w);
      if (step.is_zero()) continue;
      BigUint extended = acc * step;
      if (w == v) *total += extended;
      StarDfs(body, w, v, visited | (uint64_t{1} << w), extended, total);
    }
  }

  // Resolves a regex atom to a LabelPred over this graph's interned labels,
  // matching AtomMatches exactly (unresolvable kOne → None, kTest → None).
  LabelPred AtomPred(const Atom& atom) {
    switch (atom.label_kind) {
      case Atom::LabelKind::kOne: {
        std::optional<LabelId> l = g_.FindLabel(atom.labels[0]);
        return l.has_value() ? LabelPred::One(*l) : LabelPred::None();
      }
      case Atom::LabelKind::kNegSet: {
        std::vector<LabelId> ids;
        for (const std::string& name : atom.labels) {
          std::optional<LabelId> l = g_.FindLabel(name);
          if (l.has_value()) ids.push_back(*l);
        }
        return LabelPred::NegSet(std::move(ids));
      }
      case Atom::LabelKind::kAny:
        return LabelPred::Any();
      case Atom::LabelKind::kTest:
        return LabelPred::None();
    }
    return LabelPred::None();
  }

  bool AtomMatches(const Atom& atom, LabelId label) {
    switch (atom.label_kind) {
      case Atom::LabelKind::kOne: {
        std::optional<LabelId> l = g_.FindLabel(atom.labels[0]);
        return l.has_value() && *l == label;
      }
      case Atom::LabelKind::kNegSet: {
        for (const std::string& name : atom.labels) {
          std::optional<LabelId> l = g_.FindLabel(name);
          if (l.has_value() && *l == label) return false;
        }
        return true;
      }
      case Atom::LabelKind::kAny:
        return true;
      case Atom::LabelKind::kTest:
        return false;
    }
    return false;
  }

  const EdgeLabeledGraph& g_;
  const GraphSnapshot* snap_;
  std::unordered_map<MemoKey, BigUint, MemoKeyHash> memo_;
};

}  // namespace

BigUint BagCount(const Regex& regex, const EdgeLabeledGraph& g, NodeId u,
                 NodeId v) {
  BagCounter counter(g);
  return counter.Count(regex, u, v);
}

BigUint BagCountTotal(const Regex& regex, const EdgeLabeledGraph& g) {
  BagCounter counter(g);
  BigUint total;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      total += counter.Count(regex, u, v);
    }
  }
  return total;
}

BigUint BagCount(const Regex& regex, const GraphSnapshot& s, NodeId u,
                 NodeId v) {
  BagCounter counter(s.graph(), &s);
  return counter.Count(regex, u, v);
}

BigUint BagCountTotal(const Regex& regex, const GraphSnapshot& s) {
  BagCounter counter(s.graph(), &s);
  BigUint total;
  for (NodeId u = 0; u < s.NumNodes(); ++u) {
    for (NodeId v = 0; v < s.NumNodes(); ++v) {
      total += counter.Count(regex, u, v);
    }
  }
  return total;
}

}  // namespace gqzoo
