#ifndef GQZOO_RPQ_BAG_SEMANTICS_H_
#define GQZOO_RPQ_BAG_SEMANTICS_H_

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/regex/ast.h"
#include "src/util/biguint.h"

namespace gqzoo {

/// The SPARQL-1.1-draft (2012) bag semantics of property paths that
/// Section 6.1 warns about: the multiplicity of an answer `(u, v)` is the
/// number of distinct ways the expression can be matched, where a starred
/// subexpression `R*` is expanded along sequences of intermediate nodes
/// that are pairwise distinct (the W3C "ALP" procedure), with
/// multiplicities multiplying along a sequence and adding across
/// alternatives.
///
///   count(ε, u, v)       = [u = v]
///   count(a, u, v)       = #{ a-labeled edges u→v }
///   count(R1·R2, u, v)   = Σ_w count(R1, u, w) · count(R2, w, v)
///   count(R1+R2, u, v)   = count(R1, u, v) + count(R2, u, v)
///   count(R*, u, v)      = Σ over node sequences u = w0, w1, ..., wk = v
///                          (k ≥ 0, all wi pairwise distinct)
///                          Π_i count(R, w_{i-1}, w_i)
///
/// This reproduces the "more answers than protons in the observable
/// universe" blow-up of `(((a*)*)*)*` on a 6-clique (experiment E5).
/// Requires `g.NumNodes() <= 64` (the star expansion uses a node bitmask).
BigUint BagCount(const Regex& regex, const EdgeLabeledGraph& g, NodeId u,
                 NodeId v);

/// Total multiplicity over all pairs: Σ_{u,v} BagCount(regex, g, u, v).
BigUint BagCountTotal(const Regex& regex, const EdgeLabeledGraph& g);

/// Label-sliced variants: atom counting iterates only the out-slice of the
/// atom's label instead of all out-edges. Counts are identical.
BigUint BagCount(const Regex& regex, const GraphSnapshot& s, NodeId u,
                 NodeId v);
BigUint BagCountTotal(const Regex& regex, const GraphSnapshot& s);

}  // namespace gqzoo

#endif  // GQZOO_RPQ_BAG_SEMANTICS_H_
