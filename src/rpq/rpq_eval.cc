#include "src/rpq/rpq_eval.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "src/util/failpoint.h"

namespace gqzoo {

namespace {

// The two adjacency substrates, unified behind one "expand a product
// transition" shape so the BFS below is written once. `push(next)` is
// called for every graph node reachable from `v` over an edge matching
// the transition's predicate (backwards when the transition is inverse).

struct GraphExpander {
  const EdgeLabeledGraph& g;
  size_t NumNodes() const { return g.NumNodes(); }
  template <typename Push>
  void operator()(NodeId v, const Nfa::Transition& t, Push&& push) const {
    if (t.inverse) {
      // Two-way navigation (Remark 9): traverse matching edges backwards.
      for (EdgeId e : g.InEdges(v)) {
        if (t.pred.Matches(g.EdgeLabel(e))) push(g.Src(e));
      }
    } else {
      for (EdgeId e : g.OutEdges(v)) {
        if (t.pred.Matches(g.EdgeLabel(e))) push(g.Tgt(e));
      }
    }
  }
};

struct SnapshotExpander {
  const GraphSnapshot& s;
  size_t NumNodes() const { return s.NumNodes(); }
  template <typename Push>
  void operator()(NodeId v, const Nfa::Transition& t, Push&& push) const {
    s.ForEachMatch(v, t.pred, t.inverse,
                   [&](const GraphSnapshot::Hop& hop) { push(hop.node); });
  }
};

// Lazy BFS over the (virtual) product graph from (u, q0). Calls `visit`
// for every graph node v such that some (v, q) with accepting q is reached;
// returns early if `visit` returns false.
//
// Product-state ids are packed in 64 bits: `NumNodes() * num_states` can
// exceed 2^32 on exactly the families the paper's complexity claims use
// (large cliques, wide NFAs), and a 32-bit pack silently aliases distinct
// product states into one `seen` slot — wrong answers, not a crash.
template <typename Expander, typename Visit>
void ProductBfsFrom(const Expander& expand, const Nfa& nfa, NodeId u,
                    const CancellationToken* cancel, Visit visit) {
  const uint32_t num_states = nfa.num_states();
  const size_t num_nodes = expand.NumNodes();
  const uint64_t product_states =
      static_cast<uint64_t>(num_nodes) * num_states;
  if (cancel != nullptr && Failpoint::ShouldFail("rpq.product.bfs")) {
    cancel->Trip(StopCause::kMemoryBudget);
  }
  // Account the product-automaton working set up front: the seen bitmap
  // plus the worst-case BFS queue (one 8-byte id per product state).
  ScopedMemoryCharge working_set(cancel);
  if (!working_set.Charge(product_states / 8 + product_states * 8 +
                          num_nodes / 8)) {
    return;
  }
  std::vector<bool> seen(product_states, false);
  std::vector<bool> reported(num_nodes, false);
  std::deque<uint64_t> queue;
  auto push_state = [&](NodeId v, uint32_t q) {
    uint64_t id = static_cast<uint64_t>(v) * num_states + q;
    if (!seen[id]) {
      seen[id] = true;
      queue.push_back(id);
    }
  };
  push_state(u, nfa.initial());
  while (!queue.empty()) {
    if (ShouldStop(cancel)) return;
    uint64_t id = queue.front();
    queue.pop_front();
    NodeId v = static_cast<NodeId>(id / num_states);
    uint32_t q = static_cast<uint32_t>(id % num_states);
    if (nfa.accepting(q) && !reported[v]) {
      reported[v] = true;
      if (!visit(v)) return;
    }
    for (const Nfa::Transition& t : nfa.Out(q)) {
      expand(v, t, [&](NodeId next) { push_state(next, t.to); });
    }
  }
}

// Shared body of the full-relation evaluators: one BFS per source node in
// [lo, hi), pairs appended to `*result`. Returns false if the context
// tripped (the caller skips its final sort — partial results are
// discarded by the engine, and unwinding promptly is the contract).
template <typename Expander>
bool EvalRpqRange(const Expander& expand, const Nfa& nfa, NodeId lo, NodeId hi,
                  const CancellationToken* cancel,
                  std::vector<std::pair<NodeId, NodeId>>* result) {
  for (NodeId u = lo; u < hi; ++u) {
    if (ShouldStop(cancel)) return false;
    ProductBfsFrom(expand, nfa, u, cancel, [&](NodeId v) {
      if (!ChargeRows(cancel) ||
          !ChargeMemory(cancel, sizeof(std::pair<NodeId, NodeId>))) {
        return false;
      }
      result->emplace_back(u, v);
      return true;
    });
  }
  return !HasStopped(cancel);
}

template <typename Expander>
std::vector<std::pair<NodeId, NodeId>> EvalRpqAll(
    const Expander& expand, const Nfa& nfa, const CancellationToken* cancel) {
  std::vector<std::pair<NodeId, NodeId>> result;
  if (EvalRpqRange(expand, nfa, 0, static_cast<NodeId>(expand.NumNodes()),
                   cancel, &result)) {
    std::sort(result.begin(), result.end());
  }
  return result;
}

template <typename Expander>
std::vector<NodeId> EvalRpqFromImpl(const Expander& expand, const Nfa& nfa,
                                    NodeId u, const CancellationToken* cancel) {
  std::vector<NodeId> result;
  ProductBfsFrom(expand, nfa, u, cancel, [&](NodeId v) {
    if (!ChargeMemory(cancel, sizeof(NodeId))) return false;
    result.push_back(v);
    return true;
  });
  if (!HasStopped(cancel)) std::sort(result.begin(), result.end());
  return result;
}

template <typename Expander>
bool EvalRpqPairImpl(const Expander& expand, const Nfa& nfa, NodeId u,
                     NodeId v, const CancellationToken* cancel) {
  bool found = false;
  ProductBfsFrom(expand, nfa, u, cancel, [&](NodeId reached) {
    if (reached == v) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

// Shared state of one parallel evaluation. Owned by shared_ptr so a helper
// task that starts only after the caller has already drained every shard
// (and returned) still has somewhere safe to look, find no work, and exit —
// such a stale helper reads only `next` and never touches the borrowed
// snapshot/NFA references.
struct ParallelRpqState {
  const GraphSnapshot* s;
  const Nfa* nfa;
  const QueryContext* parent;
  size_t num_shards;
  size_t shard_size;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> results;

  std::atomic<size_t> next{0};   // next unclaimed shard index
  std::mutex mu;
  std::condition_variable done_cv;
  size_t done = 0;               // shards fully evaluated (guarded by mu)

  // Claims and runs shards until none remain. Both the caller and every
  // pool helper execute this; the atomic `next` hands each shard to
  // exactly one worker, which gives dynamic load balancing for free.
  void Work() {
    for (;;) {
      size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) return;
      RunShard(shard);
      std::lock_guard<std::mutex> lock(mu);
      if (++done == num_shards) done_cv.notify_all();
    }
  }

  void RunShard(size_t shard) {
    NodeId lo = static_cast<NodeId>(shard * shard_size);
    NodeId hi = static_cast<NodeId>(
        std::min<size_t>((shard + 1) * shard_size, s->NumNodes()));
    SnapshotExpander expand{*s};
    if (parent == nullptr) {
      EvalRpqRange(expand, *nfa, lo, hi, nullptr, &results[shard]);
      return;
    }
    // Fork: the shard runs against a private copy of the parent context
    // (same deadline and budgets, counters core-local); the parent absorbs
    // the consumption delta and any stop cause on merge, first cause wins.
    QueryContext shard_ctx(*parent);
    BudgetReport base = shard_ctx.Report();
    EvalRpqRange(expand, *nfa, lo, hi, &shard_ctx, &results[shard]);
    parent->MergeShard(shard_ctx, base);
  }

  void AwaitAll() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [this] { return done == num_shards; });
  }
};

// Below this many nodes the sharding overhead dominates and governed
// budget trips lose single-threaded determinism; run sequentially.
constexpr size_t kMinParallelNodes = 128;

}  // namespace

std::vector<std::pair<NodeId, NodeId>> EvalRpq(const EdgeLabeledGraph& g,
                                               const Nfa& nfa,
                                               const CancellationToken* cancel) {
  return EvalRpqAll(GraphExpander{g}, nfa, cancel);
}

std::vector<std::pair<NodeId, NodeId>> EvalRpq(const EdgeLabeledGraph& g,
                                               const Regex& regex,
                                               const CancellationToken* cancel) {
  return EvalRpq(g, Nfa::FromRegex(regex, g), cancel);
}

std::vector<std::pair<NodeId, NodeId>> EvalRpq(const GraphSnapshot& s,
                                               const Nfa& nfa,
                                               const CancellationToken* cancel) {
  return EvalRpqAll(SnapshotExpander{s}, nfa, cancel);
}

std::vector<NodeId> EvalRpqFrom(const EdgeLabeledGraph& g, const Nfa& nfa,
                                NodeId u, const CancellationToken* cancel) {
  return EvalRpqFromImpl(GraphExpander{g}, nfa, u, cancel);
}

std::vector<NodeId> EvalRpqFrom(const GraphSnapshot& s, const Nfa& nfa,
                                NodeId u, const CancellationToken* cancel) {
  return EvalRpqFromImpl(SnapshotExpander{s}, nfa, u, cancel);
}

bool EvalRpqPair(const EdgeLabeledGraph& g, const Nfa& nfa, NodeId u, NodeId v,
                 const CancellationToken* cancel) {
  return EvalRpqPairImpl(GraphExpander{g}, nfa, u, v, cancel);
}

bool EvalRpqPair(const GraphSnapshot& s, const Nfa& nfa, NodeId u, NodeId v,
                 const CancellationToken* cancel) {
  return EvalRpqPairImpl(SnapshotExpander{s}, nfa, u, v, cancel);
}

std::vector<std::pair<NodeId, NodeId>> EvalRpqParallel(
    const GraphSnapshot& s, const Nfa& nfa, const ParallelRpqOptions& options) {
  const size_t n = s.NumNodes();
  size_t helpers = options.pool != nullptr ? options.pool->num_threads() : 0;
  size_t shards = options.num_shards != 0 ? options.num_shards
                                          : 4 * (helpers + 1);
  if (n > 0) shards = std::min(shards, n);
  if (helpers == 0 || shards <= 1 || n < kMinParallelNodes) {
    return EvalRpq(s, nfa, options.cancel);
  }

  auto state = std::make_shared<ParallelRpqState>();
  state->s = &s;
  state->nfa = &nfa;
  state->parent = options.cancel;
  state->num_shards = shards;
  state->shard_size = (n + shards - 1) / shards;
  state->results.resize(shards);

  // Work-sharing, not work-handoff: helpers are best-effort (a full or
  // shut-down pool just means the caller does more shards itself), so
  // this cannot deadlock even when called from inside a pool task.
  for (size_t i = 0; i < std::min(helpers, shards - 1); ++i) {
    if (!options.pool->Submit([state] { state->Work(); })) break;
  }
  state->Work();
  state->AwaitAll();

  size_t total = 0;
  for (const auto& shard : state->results) total += shard.size();
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(total);
  for (const auto& shard : state->results) {
    result.insert(result.end(), shard.begin(), shard.end());
  }
  // Same contract as the sequential path: a tripped partial result is
  // returned unsorted.
  if (!HasStopped(options.cancel)) std::sort(result.begin(), result.end());
  return result;
}

}  // namespace gqzoo
