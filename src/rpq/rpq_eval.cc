#include "src/rpq/rpq_eval.h"

#include <algorithm>
#include <deque>

#include "src/util/failpoint.h"

namespace gqzoo {

namespace {

// Lazy BFS over the (virtual) product graph from (u, q0). Calls `visit`
// for every graph node v such that some (v, q) with accepting q is reached;
// returns early if `visit` returns false.
template <typename Visit>
void ProductBfsFrom(const EdgeLabeledGraph& g, const Nfa& nfa, NodeId u,
                    const CancellationToken* cancel, Visit visit) {
  const uint32_t num_states = nfa.num_states();
  const uint64_t product_states =
      static_cast<uint64_t>(g.NumNodes()) * num_states;
  if (cancel != nullptr && Failpoint::ShouldFail("rpq.product.bfs")) {
    cancel->Trip(StopCause::kMemoryBudget);
  }
  // Account the product-automaton working set up front: the seen bitmap
  // plus the worst-case BFS queue (one 4-byte id per product state).
  ScopedMemoryCharge working_set(cancel);
  if (!working_set.Charge(product_states / 8 + product_states * 4 +
                          g.NumNodes() / 8)) {
    return;
  }
  std::vector<bool> seen(g.NumNodes() * num_states, false);
  std::vector<bool> reported(g.NumNodes(), false);
  std::deque<uint32_t> queue;
  auto push = [&](NodeId v, uint32_t q) {
    uint32_t id = v * num_states + q;
    if (!seen[id]) {
      seen[id] = true;
      queue.push_back(id);
    }
  };
  push(u, nfa.initial());
  while (!queue.empty()) {
    if (ShouldStop(cancel)) return;
    uint32_t id = queue.front();
    queue.pop_front();
    NodeId v = id / num_states;
    uint32_t q = id % num_states;
    if (nfa.accepting(q) && !reported[v]) {
      reported[v] = true;
      if (!visit(v)) return;
    }
    for (const Nfa::Transition& t : nfa.Out(q)) {
      if (t.inverse) {
        // Two-way navigation (Remark 9): traverse matching edges backwards.
        for (EdgeId e : g.InEdges(v)) {
          if (t.pred.Matches(g.EdgeLabel(e))) push(g.Src(e), t.to);
        }
      } else {
        for (EdgeId e : g.OutEdges(v)) {
          if (t.pred.Matches(g.EdgeLabel(e))) push(g.Tgt(e), t.to);
        }
      }
    }
  }
}

}  // namespace

std::vector<std::pair<NodeId, NodeId>> EvalRpq(const EdgeLabeledGraph& g,
                                               const Nfa& nfa,
                                               const CancellationToken* cancel) {
  std::vector<std::pair<NodeId, NodeId>> result;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (ShouldStop(cancel)) break;
    ProductBfsFrom(g, nfa, u, cancel, [&](NodeId v) {
      if (!ChargeRows(cancel) ||
          !ChargeMemory(cancel, sizeof(std::pair<NodeId, NodeId>))) {
        return false;
      }
      result.emplace_back(u, v);
      return true;
    });
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::pair<NodeId, NodeId>> EvalRpq(const EdgeLabeledGraph& g,
                                               const Regex& regex,
                                               const CancellationToken* cancel) {
  return EvalRpq(g, Nfa::FromRegex(regex, g), cancel);
}

std::vector<NodeId> EvalRpqFrom(const EdgeLabeledGraph& g, const Nfa& nfa,
                                NodeId u, const CancellationToken* cancel) {
  std::vector<NodeId> result;
  ProductBfsFrom(g, nfa, u, cancel, [&](NodeId v) {
    if (!ChargeMemory(cancel, sizeof(NodeId))) return false;
    result.push_back(v);
    return true;
  });
  std::sort(result.begin(), result.end());
  return result;
}

bool EvalRpqPair(const EdgeLabeledGraph& g, const Nfa& nfa, NodeId u, NodeId v,
                 const CancellationToken* cancel) {
  bool found = false;
  ProductBfsFrom(g, nfa, u, cancel, [&](NodeId reached) {
    if (reached == v) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

}  // namespace gqzoo
