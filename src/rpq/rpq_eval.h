#ifndef GQZOO_RPQ_RPQ_EVAL_H_
#define GQZOO_RPQ_RPQ_EVAL_H_

#include <utility>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/regex/ast.h"
#include "src/util/cancellation.h"
#include "src/util/thread_pool.h"

namespace gqzoo {

/// RPQ evaluation by product-graph reachability (Section 6.2): polynomial
/// time in |G| and |N_R|.
///
/// Two adjacency substrates are supported:
///  * `EdgeLabeledGraph` — the seed path: each NFA transition scans the
///    node's full adjacency list and filters by label (O(deg(v)) per step).
///  * `GraphSnapshot` — label-partitioned CSR: each transition iterates
///    only the label slice it needs, O(deg_label(v)) per step (wildcards
///    fall back to the full slice). Same results, same order.
///
/// All entry points accept an optional cooperative `CancellationToken`;
/// when it trips mid-search the result is a (valid but incomplete) prefix —
/// callers that care distinguish via the context's stop cause. A partial
/// result produced by a trip skips its final sort (the caller is about to
/// discard it, and prompt unwinding is the contract).

/// `[[R]]_G`: all node pairs `(u, v)` connected by a path whose edge-label
/// word is in L(R). Result is sorted and duplicate-free (set semantics).
std::vector<std::pair<NodeId, NodeId>> EvalRpq(
    const EdgeLabeledGraph& g, const Nfa& nfa,
    const CancellationToken* cancel = nullptr);
std::vector<std::pair<NodeId, NodeId>> EvalRpq(
    const EdgeLabeledGraph& g, const Regex& regex,
    const CancellationToken* cancel = nullptr);
std::vector<std::pair<NodeId, NodeId>> EvalRpq(
    const GraphSnapshot& s, const Nfa& nfa,
    const CancellationToken* cancel = nullptr);

/// All `v` with `(u, v) ∈ [[R]]_G`: a single lazy BFS from `(u, q0)`.
std::vector<NodeId> EvalRpqFrom(const EdgeLabeledGraph& g, const Nfa& nfa,
                                NodeId u,
                                const CancellationToken* cancel = nullptr);
std::vector<NodeId> EvalRpqFrom(const GraphSnapshot& s, const Nfa& nfa,
                                NodeId u,
                                const CancellationToken* cancel = nullptr);

/// Is `(u, v) ∈ [[R]]_G`? Early-exiting BFS.
bool EvalRpqPair(const EdgeLabeledGraph& g, const Nfa& nfa, NodeId u, NodeId v,
                 const CancellationToken* cancel = nullptr);
bool EvalRpqPair(const GraphSnapshot& s, const Nfa& nfa, NodeId u, NodeId v,
                 const CancellationToken* cancel = nullptr);

/// Source-sharded parallel evaluation of `[[R]]_G` over a snapshot.
struct ParallelRpqOptions {
  /// Pool to borrow helpers from; null runs sequentially. The *calling*
  /// thread always participates and can finish every shard by itself, so
  /// evaluation never blocks on a saturated (or shut-down) pool and is
  /// safe to call from inside a pool task.
  ThreadPool* pool = nullptr;
  /// Source-range shards to split the node set into; 0 picks a multiple
  /// of the worker count. Clamped so each shard has ≥ 1 source.
  size_t num_shards = 0;
  /// Optional governed context. Each shard runs against a forked copy of
  /// it (core-local counters), merged back first-cause-wins via
  /// `QueryContext::MergeShard`.
  const QueryContext* cancel = nullptr;
};

/// Same relation as `EvalRpq(s, nfa)` — sorted, duplicate-free — with
/// source BFS roots sharded across the pool. Falls back to the sequential
/// path for small graphs (sharding overhead dominates, and governed tests
/// stay deterministic) or when no pool is supplied.
std::vector<std::pair<NodeId, NodeId>> EvalRpqParallel(
    const GraphSnapshot& s, const Nfa& nfa,
    const ParallelRpqOptions& options = {});

}  // namespace gqzoo

#endif  // GQZOO_RPQ_RPQ_EVAL_H_
