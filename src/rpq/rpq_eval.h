#ifndef GQZOO_RPQ_RPQ_EVAL_H_
#define GQZOO_RPQ_RPQ_EVAL_H_

#include <utility>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/graph.h"
#include "src/regex/ast.h"
#include "src/util/cancellation.h"

namespace gqzoo {

/// RPQ evaluation by product-graph reachability (Section 6.2): polynomial
/// time in |G| and |N_R|.
///
/// All entry points accept an optional cooperative `CancellationToken`;
/// when it trips mid-search the result is a (valid but incomplete) prefix —
/// callers that care distinguish via `token->Cancelled()`.

/// `[[R]]_G`: all node pairs `(u, v)` connected by a path whose edge-label
/// word is in L(R). Result is sorted and duplicate-free (set semantics).
std::vector<std::pair<NodeId, NodeId>> EvalRpq(
    const EdgeLabeledGraph& g, const Nfa& nfa,
    const CancellationToken* cancel = nullptr);
std::vector<std::pair<NodeId, NodeId>> EvalRpq(
    const EdgeLabeledGraph& g, const Regex& regex,
    const CancellationToken* cancel = nullptr);

/// All `v` with `(u, v) ∈ [[R]]_G`: a single lazy BFS from `(u, q0)`.
std::vector<NodeId> EvalRpqFrom(const EdgeLabeledGraph& g, const Nfa& nfa,
                                NodeId u,
                                const CancellationToken* cancel = nullptr);

/// Is `(u, v) ∈ [[R]]_G`? Early-exiting BFS.
bool EvalRpqPair(const EdgeLabeledGraph& g, const Nfa& nfa, NodeId u, NodeId v,
                 const CancellationToken* cancel = nullptr);

}  // namespace gqzoo

#endif  // GQZOO_RPQ_RPQ_EVAL_H_
