#ifndef GQZOO_ENGINE_GOVERNOR_H_
#define GQZOO_ENGINE_GOVERNOR_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gqzoo {

/// Admission-control knobs for the query engine.
struct GovernorOptions {
  /// Upper bound on in-flight queries (queued + running) admitted via
  /// `Submit`. Submissions past the bound are shed immediately with
  /// `kOverloaded` instead of growing the queue without limit — under
  /// sustained overload a fast "try later" beats a slow deadline miss.
  /// 0 disables admission control.
  size_t admission_capacity = 256;

  /// Upper bound on queries *evaluating* concurrently. Worker threads past
  /// the gate wait (the wait counts against the query's deadline, which is
  /// anchored at submission). 0 means no gate beyond the pool size.
  size_t max_concurrent = 0;
};

/// Tracks in-flight queries against the configured bounds.
///
/// Why in-flight (queued + running) rather than queue length alone: with a
/// fixed pool, "K in flight" is the promise that matters to a caller — a
/// query admitted as number K is at worst K pool-slots away from running —
/// and it makes shedding deterministic: submitting 2K queries to an idle
/// engine admits exactly K and sheds exactly K, regardless of how fast
/// workers pick tasks up.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const GovernorOptions& options)
      : options_(options) {}

  /// Claims an in-flight slot. False (shed) when at capacity.
  bool TryAdmit();

  /// Returns a slot claimed by `TryAdmit` without running (e.g. the pool
  /// rejected the task).
  void CancelAdmission();

  /// Blocks until a concurrent-execution slot is free (no-op without a
  /// max-concurrent gate). Call from the worker thread, after `TryAdmit`.
  void BeginExecution();

  /// Releases both the execution slot and the in-flight slot.
  void EndExecution();

  size_t in_flight() const;
  /// Highest number of simultaneously in-flight queries seen.
  size_t high_water() const;
  /// Total submissions shed by `TryAdmit`.
  uint64_t shed_total() const;

  const GovernorOptions& options() const { return options_; }

 private:
  const GovernorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable run_slot_;
  size_t in_flight_ = 0;
  size_t running_ = 0;
  size_t high_water_ = 0;
  uint64_t shed_ = 0;
};

/// Per-tenant rate limits for the network front-end, layered *before* the
/// engine-wide admission gate: quotas decide whose queries compete, the
/// governor decides how many compete at once. 0 disables the dimension.
struct TenantQuotaOptions {
  /// Sustained refill rate of each tenant's token bucket.
  double queries_per_sec = 0;
  /// Bucket capacity (burst allowance). 0 = same as `queries_per_sec`
  /// (clamped to at least 1 token so a conforming tenant is never starved).
  double burst = 0;
};

/// Token buckets keyed by tenant id. A fresh tenant starts with a full
/// bucket; each admitted query costs one token; tokens refill continuously
/// at `queries_per_sec` up to `burst`. All operations are thread-safe (one
/// mutex — the map is small and the critical section is a few arithmetic
/// ops, so this is not a hot-path bottleneck at wire speeds).
class TenantQuotas {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TenantQuotas(const TenantQuotaOptions& options);

  /// Takes one token from `tenant`'s bucket. False = quota exhausted; the
  /// caller sheds the query with `kOverloaded` ("retry later" — the bucket
  /// refills on its own, unlike capacity shedding which needs load to end).
  bool TryAcquire(const std::string& tenant);

  /// True when quotas are configured at all (queries_per_sec > 0).
  bool enabled() const { return options_.queries_per_sec > 0; }

  uint64_t shed_total() const;

  struct TenantCounts {
    uint64_t admitted = 0;
    uint64_t shed = 0;
  };
  /// Per-tenant admitted/shed counters, for the server's stats report.
  std::map<std::string, TenantCounts> Counts() const;

  const TenantQuotaOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0;
    Clock::time_point last_refill;
    TenantCounts counts;
  };

  const TenantQuotaOptions options_;
  const double burst_;  // resolved capacity
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  uint64_t shed_ = 0;
};

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_GOVERNOR_H_
