#ifndef GQZOO_ENGINE_GOVERNOR_H_
#define GQZOO_ENGINE_GOVERNOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace gqzoo {

/// Admission-control knobs for the query engine.
struct GovernorOptions {
  /// Upper bound on in-flight queries (queued + running) admitted via
  /// `Submit`. Submissions past the bound are shed immediately with
  /// `kOverloaded` instead of growing the queue without limit — under
  /// sustained overload a fast "try later" beats a slow deadline miss.
  /// 0 disables admission control.
  size_t admission_capacity = 256;

  /// Upper bound on queries *evaluating* concurrently. Worker threads past
  /// the gate wait (the wait counts against the query's deadline, which is
  /// anchored at submission). 0 means no gate beyond the pool size.
  size_t max_concurrent = 0;
};

/// Tracks in-flight queries against the configured bounds.
///
/// Why in-flight (queued + running) rather than queue length alone: with a
/// fixed pool, "K in flight" is the promise that matters to a caller — a
/// query admitted as number K is at worst K pool-slots away from running —
/// and it makes shedding deterministic: submitting 2K queries to an idle
/// engine admits exactly K and sheds exactly K, regardless of how fast
/// workers pick tasks up.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const GovernorOptions& options)
      : options_(options) {}

  /// Claims an in-flight slot. False (shed) when at capacity.
  bool TryAdmit();

  /// Returns a slot claimed by `TryAdmit` without running (e.g. the pool
  /// rejected the task).
  void CancelAdmission();

  /// Blocks until a concurrent-execution slot is free (no-op without a
  /// max-concurrent gate). Call from the worker thread, after `TryAdmit`.
  void BeginExecution();

  /// Releases both the execution slot and the in-flight slot.
  void EndExecution();

  size_t in_flight() const;
  /// Highest number of simultaneously in-flight queries seen.
  size_t high_water() const;
  /// Total submissions shed by `TryAdmit`.
  uint64_t shed_total() const;

  const GovernorOptions& options() const { return options_; }

 private:
  const GovernorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable run_slot_;
  size_t in_flight_ = 0;
  size_t running_ = 0;
  size_t high_water_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_GOVERNOR_H_
