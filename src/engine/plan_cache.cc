#include "src/engine/plan_cache.h"

#include <unordered_set>
#include <utility>

namespace gqzoo {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PlanCache::PlanCache(size_t capacity_per_shard, size_t num_shards)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard),
      shards_(RoundUpPow2(num_shards == 0 ? 1 : num_shards)) {}

PlanPtr PlanCache::Get(const PlanCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

void PlanCache::Put(const PlanCacheKey& key, PlanPtr plan) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= capacity_per_shard_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, std::move(plan)});
  shard.map[key] = shard.lru.begin();
}

size_t PlanCache::InvalidateDeps(const std::vector<std::string>& labels,
                                 const std::vector<std::string>& properties) {
  std::unordered_set<std::string> touched_labels(labels.begin(), labels.end());
  std::unordered_set<std::string> touched_props(properties.begin(),
                                                properties.end());
  auto hits = [](const std::vector<std::string>& deps,
                 const std::unordered_set<std::string>& touched) {
    for (const std::string& name : deps) {
      if (touched.count(name) != 0) return true;
    }
    return false;
  };
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const PlanDeps& deps = it->plan->deps;
      if (hits(deps.labels, touched_labels) ||
          hits(deps.properties, touched_props)) {
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

size_t PlanCache::EvictOtherEpochs(uint64_t current_epoch) {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.graph_epoch != current_epoch) {
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace gqzoo
