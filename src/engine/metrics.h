#ifndef GQZOO_ENGINE_METRICS_H_
#define GQZOO_ENGINE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/engine/language.h"

namespace gqzoo {

/// A monotonically increasing counter, safe for concurrent increments.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time gauge (current delta size, pending-op counts): `Set`
/// overwrites, unlike `Counter`/`MaxGauge` which only grow.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A running-maximum gauge (high-water marks: queue depth, peak accounted
/// bytes). `Update` keeps the largest value ever observed.
class MaxGauge {
 public:
  void Update(uint64_t v) {
    uint64_t prev = value_.load(std::memory_order_relaxed);
    while (prev < v &&
           !value_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A lock-free latency histogram with power-of-two microsecond buckets:
/// bucket i counts latencies in [2^i, 2^(i+1)) µs (bucket 0 also catches
/// sub-microsecond queries). Good enough for engine-level percentiles
/// without allocating per observation.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 32;  // up to ~71 minutes

  void Record(std::chrono::microseconds latency);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Total across all observations, in microseconds.
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }

  /// Upper bound (in µs) of the bucket containing the p-th percentile
  /// (p in [0, 100]); 0 when empty.
  uint64_t PercentileUpperBoundUs(double p) const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Engine-wide metrics: query counters (total / per outcome / per
/// language), plan-cache deltas, and a latency histogram. All operations
/// are thread-safe; `ReportText()` renders the registry for the shell's
/// `stats` command and the batch driver's final report.
class MetricsRegistry {
 public:
  Counter queries_total;
  Counter queries_ok;
  Counter queries_error;       // all failures, including the two below
  Counter parse_errors;        // ErrorCode::kParse
  Counter deadline_exceeded;   // ErrorCode::kDeadlineExceeded
  Counter cancelled;           // ErrorCode::kCancelled (explicit cancel)
  Counter resource_exhausted;  // ErrorCode::kResourceExhausted (budgets)
  Counter overloaded_shed;     // ErrorCode::kOverloaded (admission control)
  Counter cache_hits;          // compiled-plan cache
  Counter cache_misses;
  Counter truncated_results;   // evaluator hit an enumeration limit
  Counter graph_epoch_bumps;   // SetGraph calls (base replacements); label-
                               // scoped mutations do NOT bump the epoch —
                               // they invalidate per-plan (see below)
  Counter write_batches;            // ApplyMutation calls admitted
  Counter write_ops;                // individual mutation ops applied
  Counter write_sheds;              // write batches shed by admission control
  Counter compactions_run;          // delta folds into a fresh base
  Counter merged_view_builds;       // overlay+base merged views constructed
  Counter plan_invalidations_scoped;  // label-scoped invalidation passes
  Counter plans_invalidated;          // cache entries dropped by those passes
  Counter plan_invalidations_full;    // whole-cache invalidations (SetGraph)
  Counter plans_evicted_dead_epoch;   // stale-epoch entries evicted eagerly
  // Network front-end (all zero for in-process-only engines).
  Counter server_sessions_total;   // connections accepted over the lifetime
  Counter server_queries;          // query frames handled
  Counter server_mutations;        // mutation frames handled
  Counter server_stream_chunks;    // row chunks written to sockets
  Counter server_stream_bytes;     // row bytes written to sockets
  Counter tenant_quota_shed;       // queries shed by per-tenant token buckets
  Counter server_drain_shed;       // queries refused or cancelled by drain
  // Execution-path counters for the columnar/wcoj split.
  Counter wcoj_plans;   // compiled plans carrying a wcoj group
  Counter batch_rows;   // result rows produced through the batch kernel
  std::array<Counter, kNumQueryLanguages> queries_by_language;
  std::array<Counter, kNumQueryLanguages> shed_by_language;
  std::array<Counter, kNumQueryLanguages> exhausted_by_language;
  std::array<Counter, kNumQueryLanguages> cancelled_by_language;  // + deadline
  std::array<Counter, kNumQueryLanguages> wcoj_by_language;  // executions that
                                                             // engaged a wcoj

  MaxGauge queue_depth_high_water;  // governor in-flight high-water mark
  MaxGauge peak_query_bytes;        // largest per-query accounted footprint
  Gauge delta_pending_ops;          // ops in the live overlay right now
  Gauge server_connections;         // sessions open right now
  MaxGauge server_connections_high_water;

  LatencyHistogram latency;

  void RecordLanguage(QueryLanguage language) {
    queries_by_language[static_cast<size_t>(language)].Increment();
  }

  /// Multi-line, human-readable dump of every counter plus latency
  /// mean/p50/p95/p99/max.
  std::string ReportText() const;

  void Reset();
};

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_METRICS_H_
