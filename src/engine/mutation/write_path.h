#ifndef GQZOO_ENGINE_MUTATION_WRITE_PATH_H_
#define GQZOO_ENGINE_MUTATION_WRITE_PATH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/delta/delta.h"
#include "src/graph/delta/merge.h"
#include "src/graph/graph.h"
#include "src/planner/stats.h"
#include "src/util/query_context.h"
#include "src/util/result.h"

namespace gqzoo {

/// When the write path folds the overlay into a fresh base: once the op log
/// reaches `compact_min_ops`, or once the delta's churn (added + removed
/// elements) exceeds `compact_ratio` of the base size. The engine schedules
/// the fold on its thread pool when `background_compaction` is set, else
/// compacts synchronously inside `ApplyMutation`.
struct MutationPolicy {
  size_t compact_min_ops = 4096;
  double compact_ratio = 0.25;
  bool background_compaction = true;
};

/// Epoch-MVCC write path: owns the live `DeltaOverlay` over the current
/// base generation and hands out consistent pinned views.
///
/// Invariants:
///  * Readers pin a `(base generation, delta sequence)` pair as three
///    shared_ptrs (graph / snapshot / stats); nothing a reader holds is
///    ever mutated or freed under it — writers append to the overlay and
///    the *next* view is a fresh merge.
///  * `ticket` increases on every reader-visible state change (publish
///    after apply, compact, reset); the engine caches the last view it
///    published and rebuilds only when the ticket moved, so the read fast
///    path is one atomic load.
///  * Compaction replays the op log against the base *off-lock*, then
///    republishes only if no `ResetBase` intervened; ops applied during the
///    replay survive as a residual overlay on the new base (mutations are
///    name-keyed, so replaying them against the compacted graph is exact).
///  * Merged views and compacted bases assign identical ids
///    (GraphDeltaMerger), so a compaction changes no query-visible state —
///    not even rendered output — and cached plans stay valid across it.
class MutationManager {
 public:
  /// A consistent pinned read view. `is_merged` is true when the view
  /// layers a pending delta (overlay-mode graph); regular queries cannot
  /// run on such a view (they mutate a working copy of the skeleton) and
  /// must force a compaction first.
  struct View {
    std::shared_ptr<const PropertyGraph> graph;
    std::shared_ptr<const GraphSnapshot> snapshot;
    std::shared_ptr<const SnapshotStats> stats;
    bool is_merged = false;
    uint64_t ticket = 0;
  };

  struct ApplyOutcome {
    Result<size_t> applied = 0;  // ops applied; prefix stays on error
    uint64_t ops_applied = 0;    // prefix length, valid even on error
    uint64_t pending_ops = 0;    // overlay op count after this batch
    /// Names touched by the applied prefix — the engine's label-scoped
    /// plan-cache invalidation keys.
    std::vector<std::string> touched_labels;
    std::vector<std::string> touched_properties;
    bool want_compaction = false;  // policy threshold crossed
  };

  struct Info {
    uint64_t pending_ops = 0;
    uint64_t compactions = 0;
    uint64_t base_resets = 0;
    size_t approx_delta_bytes = 0;
  };

  /// What a successful `Compact` folded — the durability hook. The engine
  /// pairs `total_ops_folded` (cumulative applied ops now inside `base`,
  /// since construction or the last ResetBase) with its per-batch WAL
  /// ledger to find the covered LSN, then checkpoints `base` and truncates
  /// the log. Cumulative rather than per-fold so late or out-of-order
  /// checkpoint attempts are detectable as stale (total ≤ already covered).
  struct CompactReport {
    std::shared_ptr<const PropertyGraph> base;
    uint64_t total_ops_folded = 0;
  };

  MutationManager(std::shared_ptr<const PropertyGraph> base,
                  std::shared_ptr<const GraphSnapshot> base_snapshot,
                  std::shared_ptr<const SnapshotStats> base_stats);

  MutationManager(const MutationManager&) = delete;
  MutationManager& operator=(const MutationManager&) = delete;

  /// Applies `batch` to the live overlay (creating it lazily). `ctx`, when
  /// set, charges write budgets per op. Serialized internally. Does NOT
  /// advance the reader-visible ticket — the caller invalidates affected
  /// cached plans first and then calls `Publish()`, so no reader can pair
  /// post-mutation data with a pre-mutation plan.
  ApplyOutcome Apply(const MutationBatch& batch, const MutationPolicy& policy,
                     const QueryContext* ctx = nullptr);

  /// Makes the effects of preceding `Apply` calls visible to the engine's
  /// read fast path (advances the ticket).
  void Publish();

  /// The current consistent view; memoized per ticket, so consecutive
  /// reads without interleaved writes build the merged view once.
  /// `built_merged`, when set, reports whether this call actually
  /// constructed a merge (metrics).
  View CurrentView(bool* built_merged = nullptr);

  /// Folds the pending overlay into a fresh base generation. Returns false
  /// when there was nothing to fold or another fold is already running.
  /// Heavy phase (log replay + CSR + stats) runs outside the lock.
  /// `report`, when set, receives the new base and the cumulative fold
  /// count on success (untouched on false).
  bool Compact(CompactReport* report = nullptr);

  /// Adopts an externally supplied base (SetGraph), dropping any pending
  /// delta and aborting any in-flight compaction's publish.
  void ResetBase(std::shared_ptr<const PropertyGraph> base,
                 std::shared_ptr<const GraphSnapshot> base_snapshot,
                 std::shared_ptr<const SnapshotStats> base_stats);

  /// Lock-free staleness probe for the engine's published-view fast path.
  uint64_t ticket() const { return ticket_.load(std::memory_order_acquire); }

  Info GetInfo() const;

 private:
  /// Replicates the engine's snapshot pinning: the CSR borrows the graph's
  /// arrays, so its deleter keeps the graph alive.
  static std::shared_ptr<const GraphSnapshot> PinSnapshot(
      std::shared_ptr<const PropertyGraph> graph);

  bool WantCompaction(const MutationPolicy& policy) const;  // mu_ held

  mutable std::mutex mu_;
  std::shared_ptr<const PropertyGraph> base_;
  std::shared_ptr<const GraphSnapshot> base_snapshot_;
  std::shared_ptr<const SnapshotStats> base_stats_;
  std::unique_ptr<DeltaOverlay> overlay_;  // null when no pending delta
  /// Memoized merged view for the current ticket; invalidated by writes.
  View memo_;
  bool memo_valid_ = false;
  uint64_t compactions_ = 0;
  uint64_t resets_ = 0;  // ResetBase count; compaction aborts on change
  /// Cumulative ops folded into `base_` by compactions since construction
  /// or the last ResetBase (CompactReport::total_ops_folded).
  uint64_t total_folded_ops_ = 0;
  std::atomic<uint64_t> ticket_{1};
  std::atomic<bool> compacting_{false};
};

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_MUTATION_WRITE_PATH_H_
