#include "src/engine/mutation/write_path.h"

#include <cassert>
#include <utility>

namespace gqzoo {

MutationManager::MutationManager(
    std::shared_ptr<const PropertyGraph> base,
    std::shared_ptr<const GraphSnapshot> base_snapshot,
    std::shared_ptr<const SnapshotStats> base_stats)
    : base_(std::move(base)),
      base_snapshot_(std::move(base_snapshot)),
      base_stats_(std::move(base_stats)) {}

std::shared_ptr<const GraphSnapshot> MutationManager::PinSnapshot(
    std::shared_ptr<const PropertyGraph> graph) {
  return std::shared_ptr<const GraphSnapshot>(
      new GraphSnapshot(*graph),
      [graph](const GraphSnapshot* s) { delete s; });
}

bool MutationManager::WantCompaction(const MutationPolicy& policy) const {
  if (overlay_ == nullptr || overlay_->seq() == 0) return false;
  if (policy.compact_min_ops > 0 && overlay_->seq() >= policy.compact_min_ops) {
    return true;
  }
  if (policy.compact_ratio > 0) {
    const size_t churn =
        overlay_->alive_added_nodes() + overlay_->alive_added_edges() +
        overlay_->removed_base_nodes() + overlay_->removed_base_edges();
    const size_t base_size =
        base_->skeleton().NumNodes() + base_->NumEdges();
    if (static_cast<double>(churn) >=
        policy.compact_ratio * static_cast<double>(base_size)) {
      return true;
    }
  }
  return false;
}

MutationManager::ApplyOutcome MutationManager::Apply(
    const MutationBatch& batch, const MutationPolicy& policy,
    const QueryContext* ctx) {
  ApplyOutcome out;
  std::lock_guard<std::mutex> lock(mu_);
  if (overlay_ == nullptr) overlay_ = std::make_unique<DeltaOverlay>(base_);
  const uint64_t before = overlay_->seq();
  out.applied = overlay_->Apply(batch, &out.touched_labels,
                                &out.touched_properties, ctx);
  out.ops_applied = overlay_->seq() - before;
  out.pending_ops = overlay_->seq();
  if (overlay_->seq() != before) {
    memo_ = View{};
    memo_valid_ = false;
    // No ticket bump here: the engine invalidates affected plans first,
    // then calls Publish() — readers must never pair the new data with a
    // stale cached plan.
  }
  out.want_compaction = WantCompaction(policy);
  return out;
}

void MutationManager::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  memo_ = View{};
  memo_valid_ = false;
  ticket_.fetch_add(1, std::memory_order_acq_rel);
}

MutationManager::View MutationManager::CurrentView(bool* built_merged) {
  if (built_merged != nullptr) *built_merged = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (memo_valid_) return memo_;
  View v;
  v.ticket = ticket_.load(std::memory_order_acquire);
  if (overlay_ == nullptr || overlay_->seq() == 0) {
    v.graph = base_;
    v.snapshot = base_snapshot_;
    v.stats = base_stats_;
  } else {
    MergedGraph merged = GraphDeltaMerger::Merge(*base_snapshot_, *overlay_);
    v.stats = std::make_shared<const SnapshotStats>(
        *base_stats_, *merged.snapshot, merged.touched_labels);
    v.graph = std::move(merged.graph);
    v.snapshot = std::move(merged.snapshot);
    v.is_merged = true;
    if (built_merged != nullptr) *built_merged = true;
  }
  memo_ = v;
  memo_valid_ = true;
  return v;
}

bool MutationManager::Compact(CompactReport* report) {
  bool expected = false;
  if (!compacting_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return false;  // another fold in flight
  }

  // Capture a consistent (base, log prefix) pair; writers may keep
  // appending while the replay runs.
  std::shared_ptr<const PropertyGraph> base;
  std::vector<MutationOp> log;
  uint64_t resets_at_capture;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (overlay_ == nullptr || overlay_->seq() == 0) {
      compacting_.store(false, std::memory_order_release);
      return false;
    }
    base = base_;
    log = overlay_->log();
    resets_at_capture = resets_;
  }

  // Heavy phase, off-lock: replay the captured prefix into a fresh plain
  // graph and index it. Readers keep using the current (base, overlay).
  auto next = std::make_shared<const PropertyGraph>(
      GraphDeltaMerger::Replay(*base, log));
  auto next_snapshot = PinSnapshot(next);
  auto next_stats = std::make_shared<const SnapshotStats>(*next_snapshot);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (resets_ != resets_at_capture) {
      // SetGraph replaced the base while we replayed; our fold describes a
      // dead generation. Drop it.
      compacting_.store(false, std::memory_order_release);
      return false;
    }
    // Ops that arrived during the replay rebase onto the new base. They
    // were validated against base+prefix, which is exactly what the
    // compacted graph *is* (mutations are name-keyed), so this cannot fail.
    std::unique_ptr<DeltaOverlay> residual;
    if (overlay_->seq() > log.size()) {
      residual = std::make_unique<DeltaOverlay>(next);
      MutationBatch rest;
      rest.ops.assign(overlay_->log().begin() +
                          static_cast<ptrdiff_t>(log.size()),
                      overlay_->log().end());
      Result<size_t> replayed = residual->Apply(rest, nullptr, nullptr);
      (void)replayed;
      assert(replayed.ok() &&
             "residual ops must replay cleanly onto the compacted base");
    }
    base_ = std::move(next);
    base_snapshot_ = std::move(next_snapshot);
    base_stats_ = std::move(next_stats);
    overlay_ = std::move(residual);
    memo_ = View{};
    memo_valid_ = false;
    ++compactions_;
    total_folded_ops_ += log.size();
    if (report != nullptr) {
      report->base = base_;
      report->total_ops_folded = total_folded_ops_;
    }
    ticket_.fetch_add(1, std::memory_order_acq_rel);
  }
  compacting_.store(false, std::memory_order_release);
  return true;
}

void MutationManager::ResetBase(
    std::shared_ptr<const PropertyGraph> base,
    std::shared_ptr<const GraphSnapshot> base_snapshot,
    std::shared_ptr<const SnapshotStats> base_stats) {
  std::lock_guard<std::mutex> lock(mu_);
  base_ = std::move(base);
  base_snapshot_ = std::move(base_snapshot);
  base_stats_ = std::move(base_stats);
  overlay_.reset();
  memo_ = View{};
  memo_valid_ = false;
  ++resets_;
  // The fold ledger restarts with the adopted base; the engine resets its
  // WAL accounting (and checkpoints the new base) in the same breath.
  total_folded_ops_ = 0;
  ticket_.fetch_add(1, std::memory_order_acq_rel);
}

MutationManager::Info MutationManager::GetInfo() const {
  std::lock_guard<std::mutex> lock(mu_);
  Info info;
  info.pending_ops = overlay_ != nullptr ? overlay_->seq() : 0;
  info.compactions = compactions_;
  info.base_resets = resets_;
  info.approx_delta_bytes = overlay_ != nullptr ? overlay_->ApproxBytes() : 0;
  return info;
}

}  // namespace gqzoo
