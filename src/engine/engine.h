#ifndef GQZOO_ENGINE_ENGINE_H_
#define GQZOO_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "src/crpq/crpq.h"
#include "src/engine/executor.h"
#include "src/engine/governor.h"
#include "src/engine/language.h"
#include "src/engine/metrics.h"
#include "src/engine/mutation/write_path.h"
#include "src/engine/plan.h"
#include "src/engine/plan_cache.h"
#include "src/graph/csr.h"
#include "src/graph/delta/delta.h"
#include "src/graph/graph.h"
#include "src/storage/durable.h"
#include "src/util/query_context.h"
#include "src/util/result.h"

namespace gqzoo {

/// Runtime parameters for QueryLanguage::kPaths — not part of the compiled
/// plan (the plan caches the regex + automaton; endpoints and mode vary per
/// request).
struct PathRequestParams {
  std::string from;
  std::string to;
  PathMode mode = PathMode::kAll;
  /// When > 0, stream the k shortest matching paths (plain one-way regexes
  /// only) instead of mode-restricted enumeration.
  size_t k_shortest = 0;
};

/// Receives rendered result rows incrementally as a query executes — the
/// streaming alternative to materializing `QueryResponse::text`. Chunks
/// arrive in order and concatenate to exactly the text a sink-less request
/// would have returned (the network server relies on this byte-identity to
/// stream over the wire what `Execute` would have buffered).
///
/// `Write` is called from whichever thread runs the query (the caller's
/// thread for `Execute`, a pool thread for `Submit`); at most one call is
/// in flight at a time. Returning false abandons the stream: the engine
/// cancels the query (`kCancelled`) and stops delivering chunks — the
/// back-pressure path for a client that disconnected mid-stream.
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual bool Write(std::string_view chunk) = 0;
};

/// One query for the engine. `language` + `text` identify the plan;
/// everything else is execution-time policy.
struct QueryRequest {
  QueryLanguage language = QueryLanguage::kRpq;
  std::string text;

  /// Per-query deadline; falls back to the engine's default when unset.
  /// Exceeding it returns ErrorCode::kDeadlineExceeded. For `Submit`, the
  /// clock starts at submission, so queue wait counts against it.
  std::optional<std::chrono::milliseconds> timeout;

  /// Per-query resource budgets; each falls back to the engine default
  /// when unset (an explicit 0 means unlimited, overriding the default).
  /// Exceeding any returns ErrorCode::kResourceExhausted with a
  /// structured BudgetReport in the message.
  std::optional<uint64_t> memory_budget;  // accounted bytes
  std::optional<uint64_t> row_budget;     // emitted result rows
  std::optional<uint64_t> step_budget;    // hot-loop iterations (fuel)

  /// CoreGQL only: WHERE-pushdown before evaluation (the shell's `gqlopt`).
  bool optimize = false;

  /// Render the plan (conjunct join order + per-atom estimates) instead of
  /// executing it. The plan is still compiled/cached exactly as it would be
  /// for execution.
  bool explain = false;

  /// Ignore the planner's join order and evaluate conjuncts in textual
  /// order (differential testing / benchmarking). Execution-time policy:
  /// the cached plan is shared with planner-ordered requests.
  bool textual_join_order = false;

  /// Per-query overrides of the engine's `Options::use_wcoj` /
  /// `Options::use_batch_kernel` (unset = engine default). Execution-time
  /// policy, like `textual_join_order`: the cached plan always carries the
  /// wcoj group when the planner found one; these only decide whether the
  /// execution honors it / routes joins through the batch kernel. Results
  /// are byte-identical either way — the toggles exist as differential
  /// oracles (fuzzer legs, wcoj_test) and for benchmarking.
  std::optional<bool> use_wcoj;
  std::optional<bool> use_batch_kernel;

  /// Overrides for the per-language enumeration limits (defaults preserve
  /// each evaluator's historical limits).
  std::optional<size_t> max_results;
  std::optional<size_t> max_path_length;

  /// Row cap for the rendered `text` of listing-style results (rpq, paths,
  /// gqlgroup); counts are always exact.
  size_t max_display_rows = 50;

  PathRequestParams paths;  // kPaths only

  /// When set, rendered rows are delivered through the sink in chunks as
  /// they are produced and `QueryResponse::text` comes back empty; the
  /// concatenated chunks are byte-identical to the sink-less text. The sink
  /// must outlive the execution (for `Submit`, until the future resolves).
  RowSink* sink = nullptr;

  /// External cancellation: when the pointee becomes true the query trips
  /// with `kCancelled` at its next cooperative poll. The server sets this
  /// from the connection thread when the peer disconnects or sends an
  /// explicit cancel frame while the query runs on a pool thread.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// A successful query outcome: rendered rows plus execution metadata.
struct QueryResponse {
  std::string text;  // human-readable rows, shell-style (empty when the
                     // request carried a RowSink — the rows went there)
  size_t num_rows = 0;
  bool truncated = false;   // an enumeration limit cut the result short
  bool cache_hit = false;   // plan came from the compiled-plan cache
  std::chrono::microseconds latency{0};
};

/// The unified query-engine facade: language dispatch, compiled-plan
/// caching, a fixed thread pool, per-query deadlines, and metrics.
///
/// Thread-safety: `Execute` may be called concurrently from any thread
/// (including pool threads via `Submit`); `SetGraph` may race with
/// executions — in-flight queries keep the graph snapshot they started
/// with alive via shared_ptr, and the epoch bump makes their plans
/// uncacheable for later requests.
class QueryEngine {
 public:
  struct Options {
    /// 0 = hardware concurrency.
    size_t num_threads = 0;
    size_t cache_shards = 8;
    size_t cache_capacity_per_shard = 64;
    /// Applied when a request has no timeout of its own; unset = unbounded.
    std::optional<std::chrono::milliseconds> default_timeout;
    /// Applied when a request has no budget of its own; 0 = unlimited.
    ResourceBudgets default_budgets;
    /// Admission control (see governor.h). Applies to `Submit` only;
    /// direct `Execute` calls are the caller's own thread and bypass it.
    GovernorOptions governor;
    /// Shard count for parallel RPQ evaluation over the CSR snapshot;
    /// 0 = auto (4 shards per participating thread).
    size_t rpq_shards = 0;
    /// Honor planner-selected worst-case-optimal join groups for cyclic
    /// conjunct cores (crpq/dlcrpq/coregql). Off = the binary join order
    /// serves every query; the plan (and its `explain` rendering) is the
    /// same either way.
    bool use_wcoj = true;
    /// Route relational joins/projections through the columnar batch
    /// kernel (rel/batch.h) instead of the row kernel. Byte-identical
    /// results and budget accounting; kept as a toggle so both kernels
    /// stay live differential oracles.
    bool use_batch_kernel = false;
    /// Delta-overlay write path: compaction thresholds and scheduling.
    MutationPolicy mutation;
    /// Durability: WAL + checkpoints under `durability.dir`. Empty dir =
    /// RAM-only (the historical behavior). Engines with durability must be
    /// built through `RecoverFrom`, which replays any existing state.
    storage::DurabilityOptions durability;
  };

  explicit QueryEngine(PropertyGraph graph);
  QueryEngine(PropertyGraph graph, Options options);

  /// The durable way in: opens `options.durability.dir`, recovers any
  /// existing checkpoint + WAL state (replacing `initial` — the seed graph
  /// only matters for a fresh directory), and returns an engine whose
  /// writes are logged before they publish. Recovery policy: a torn WAL
  /// tail (crash mid-append) is truncated with a warning in
  /// `recovery_info()`; mid-log corruption or missing files fail with
  /// `kDataLoss` rather than serving a silently incomplete graph. With an
  /// empty `durability.dir` this is just the plain constructor.
  static Result<std::unique_ptr<QueryEngine>> RecoverFrom(
      PropertyGraph initial, Options options);
  /// Teardown order matters twice here. First the WAL is flushed *before*
  /// the pool is torn down: with group commit, acked batches can sit
  /// unsynced waiting for the next append to notice the window elapsed, and
  /// a queued compaction run during shutdown rotates the log — flush the
  /// acked tail while the ledger still describes it. Then the pool drains
  /// before member teardown: queued background compactions capture `this`
  /// and use `mutation_`, which the implicit member-destruction order would
  /// destroy before the pool joins. A final sync covers anything those
  /// shutdown-time compactions appended.
  ~QueryEngine();

  /// Compiles (or fetches from cache) and runs the query on the calling
  /// thread, honoring the deadline cooperatively.
  Result<QueryResponse> Execute(const QueryRequest& request);

  /// Runs the query on the thread pool, subject to admission control: at
  /// capacity the query is shed immediately with `kOverloaded` (the future
  /// is ready at once). The deadline clock starts *here*, so time spent
  /// queued counts against the query. The future never throws; errors
  /// come back as Result errors.
  std::future<Result<QueryResponse>> Submit(QueryRequest request);

  /// Replaces the graph and bumps the epoch, invalidating every cached
  /// plan (stale-epoch entries are evicted eagerly, not LRU-aged). Any
  /// pending delta is dropped. In-flight queries finish against the graph
  /// they started with.
  void SetGraph(PropertyGraph graph);

  /// Outcome of `ApplyMutation`.
  struct MutationResult {
    size_t applied = 0;          // ops applied (== batch size on success)
    uint64_t pending_ops = 0;    // delta ops awaiting compaction
    size_t plans_invalidated = 0;  // cache entries dropped (label-scoped)
    bool compaction_scheduled = false;
  };

  /// Applies a mutation batch through the delta overlay: O(delta) work, no
  /// graph clone, no epoch bump. Readers admitted afterwards see a merged
  /// view layering the delta over the unchanged base; cached plans are
  /// invalidated label-scoped (only plans naming a touched label or
  /// property drop). Writes pass governor admission — under overload the
  /// whole batch is shed with `kOverloaded` — and charge the engine's
  /// default budgets per op. On a mid-batch validation error the valid
  /// prefix stays applied (the error names the failing op).
  Result<MutationResult> ApplyMutation(const MutationBatch& batch);

  /// Synchronously folds any pending delta into a fresh base generation.
  /// Returns false when there was nothing to fold or a background fold is
  /// already running. Query-visible state does not change (merged views
  /// and the compacted base assign identical ids).
  bool CompactNow();

  /// Write-path observability for `stats` in the shell.
  MutationManager::Info delta_info() const { return mutation_->GetInfo(); }

  /// Whether this engine persists writes (built via RecoverFrom with a
  /// durability dir).
  bool durable() const { return durable_ != nullptr; }

  /// What RecoverFrom found on startup (all-defaults for RAM-only engines
  /// and fresh directories).
  const storage::RecoveryInfo& recovery_info() const { return recovery_info_; }

  /// Forces any group-commit-deferred WAL fsync to disk (no-op for
  /// RAM-only engines). The shell calls this on clean exit.
  Result<bool> FlushWal();

  uint64_t graph_epoch() const;
  /// A consistent snapshot (graph, epoch) for read access.
  std::shared_ptr<const PropertyGraph> graph_snapshot() const;
  /// The label-indexed CSR snapshot of the current graph epoch. Holding
  /// the returned pointer also keeps the underlying graph alive.
  std::shared_ptr<const GraphSnapshot> csr_snapshot() const;

  void set_default_timeout(std::optional<std::chrono::milliseconds> t);
  std::optional<std::chrono::milliseconds> default_timeout() const;

  void set_default_budgets(const ResourceBudgets& budgets);
  ResourceBudgets default_budgets() const;

  const ResourceGovernor& governor() const { return governor_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  PlanCache& plan_cache() { return cache_; }

  /// Drops all cached plans (cold-cache benchmarking).
  void ClearPlanCache() { cache_.Clear(); }

  size_t num_threads() const { return pool_.num_threads(); }

  /// Metrics report + plan-cache stats, for `stats` in the shell and the
  /// batch driver's final report.
  std::string StatsReport() const;

 private:
  /// Primary constructor: adopts an already shared graph epoch, optionally
  /// with a prebuilt snapshot/stats pair (the memory-mapped artifacts of
  /// an instant restart). Null snapshot/stats are built here — the public
  /// constructors delegate with nulls.
  QueryEngine(std::shared_ptr<const PropertyGraph> graph, Options options,
              std::shared_ptr<const GraphSnapshot> snapshot,
              std::shared_ptr<const SnapshotStats> stats);

  /// `Execute` with the deadline anchored at `admitted_at` instead of now
  /// — a query that burned its whole deadline waiting in the queue fails
  /// fast with `kDeadlineExceeded`, before compiling or evaluating.
  Result<QueryResponse> ExecuteFrom(const QueryRequest& request,
                                    QueryContext::Clock::time_point
                                        admitted_at);

  Result<QueryResponse> ExecutePlan(const Plan& plan, const PropertyGraph& g,
                                    const GraphSnapshot& snapshot,
                                    const QueryRequest& request,
                                    const CancellationToken* cancel);

  /// Re-publishes (graph_, snapshot_, stats_) from the mutation manager
  /// when its ticket moved past the published one. Fast path: one atomic
  /// load + one mutex'd compare. Called lazily by readers, so pure-read
  /// workloads never pay for the write path.
  void RefreshViewIfStale();

  /// Builds a CSR snapshot whose lifetime also pins `graph` (the snapshot
  /// borrows the graph's adjacency arrays).
  static std::shared_ptr<const GraphSnapshot> BuildSnapshot(
      std::shared_ptr<const PropertyGraph> graph);

  /// All compaction goes through here: folds the pending delta and, when
  /// durable, checkpoints the folded base + truncates the WAL. Returns
  /// false when there was nothing to fold, a fold was already running, or
  /// the durable store is broken (folding then would publish unlogged
  /// state).
  bool RunCompaction();

  /// The checkpoint half of RunCompaction: pops the WAL ledger up to the
  /// fold's cumulative op count, derives the covered LSN, and writes
  /// checkpoint + rotated WAL. `generation` guards against a SetGraph that
  /// landed between the fold and here.
  void PersistCheckpoint(const MutationManager::CompactReport& report,
                         uint64_t generation);

  mutable std::mutex graph_mu_;
  std::shared_ptr<const PropertyGraph> graph_;
  std::shared_ptr<const GraphSnapshot> snapshot_;  // built from *graph_
  /// Per-label statistics read off `*snapshot_` (same epoch), feeding the
  /// conjunct planner at compile time. Rebuilt with the snapshot.
  std::shared_ptr<const SnapshotStats> stats_;
  uint64_t epoch_ = 0;
  /// Mutation-manager ticket of the published view, and whether that view
  /// layers a pending delta (merged views block kRegular, see ExecuteFrom).
  uint64_t published_ticket_ = 0;
  bool published_merged_ = false;
  size_t rpq_shards_ = 0;
  bool use_wcoj_ = true;
  bool use_batch_kernel_ = false;
  std::optional<std::chrono::milliseconds> default_timeout_;
  ResourceBudgets default_budgets_;

  PlanCache cache_;
  MetricsRegistry metrics_;
  ResourceGovernor governor_;
  ThreadPool pool_;

  MutationPolicy mutation_policy_;
  std::unique_ptr<MutationManager> mutation_;
  /// Serializes ApplyMutation's apply → invalidate → publish sequence so a
  /// second writer cannot publish a first writer's data before the first
  /// writer's plan invalidation ran.
  mutable std::mutex write_mu_;
  /// Bumped before any plan-cache invalidation (scoped or full). A reader
  /// records it before compiling and skips its `Put` when it moved — a plan
  /// compiled against pre-mutation state must not outlive the invalidation
  /// that raced with it.
  std::atomic<uint64_t> invalidation_version_{0};

  /// Null for RAM-only engines. All access is serialized under `write_mu_`
  /// except the lock-free `broken()` probe.
  std::unique_ptr<storage::DurableStore> durable_;
  storage::RecoveryInfo recovery_info_;
  /// The WAL ledger: records appended since the last checkpoint, in LSN
  /// order (guarded by write_mu_). PersistCheckpoint pops the folded
  /// prefix; what remains becomes the rotated WAL's residual.
  std::deque<storage::WalRecord> pending_records_;
  /// Ops covered by the last checkpoint, in the mutation manager's
  /// cumulative-fold units (guarded by write_mu_).
  uint64_t checkpointed_ops_ = 0;
  uint64_t durable_checkpoint_lsn_ = 0;  // guarded by write_mu_
  /// Bumped by SetGraph; a compaction captured before the bump must not
  /// checkpoint (its fold ledger describes the dead generation).
  std::atomic<uint64_t> durable_generation_{0};
};

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_ENGINE_H_
