#ifndef GQZOO_ENGINE_PLAN_H_
#define GQZOO_ENGINE_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "src/automata/nfa.h"
#include "src/coregql/optimize.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq.h"
#include "src/datatest/dl_rpq.h"
#include "src/engine/language.h"
#include "src/nested/regular_queries.h"
#include "src/planner/explain.h"
#include "src/planner/stats.h"
#include "src/regex/ast.h"
#include "src/rel/wcoj.h"
#include "src/util/result.h"

namespace gqzoo {

/// Compiled forms per language. Parsing and automaton construction happen
/// once at compile time; execution reuses them. Automata resolve label
/// names against a specific graph (Nfa::FromRegex takes the graph), which
/// is why plans are keyed by graph epoch and cannot outlive a mutation.

struct RpqPlan {
  RegexPtr regex;
  Nfa nfa;  // Glushkov automaton, labels resolved against the plan's graph
};

struct CrpqPlan {
  Crpq query;
  /// Per-atom Glushkov automata, parallel to `query.atoms` — compiled once
  /// here so cached plans never recompile them per execution.
  std::vector<Nfa> atom_nfas;
  /// Conjunct execution order from the statistics-driven planner (textual
  /// when compiled without stats), plus the EXPLAIN record behind it.
  std::vector<size_t> join_order;
  ExplainInfo explain;
  /// Set when the planner detected a cyclic core of single-label atoms:
  /// the worst-case-optimal join group, with label ids resolved at
  /// compile time (like the NFAs, covered by the same deps). Execution
  /// honors it only when the engine/request wcoj toggle is on and a
  /// snapshot is available.
  std::optional<rel::WcojSpec> wcoj;
};

struct DlCrpqPlan {
  Crpq query;  // atoms carry dl-dialect regexes
  std::vector<DlNfa> atom_nfas;  // parallel to query.atoms
  std::vector<size_t> join_order;
  ExplainInfo explain;
  std::optional<rel::WcojSpec> wcoj;  // see CrpqPlan::wcoj
};

struct CoreGqlPlan {
  CoreGqlQuery query;  // WHERE pushdown already applied when requested
  bool optimized = false;
  PushdownStats pushdown;
  /// Per-block pattern-entry execution orders + EXPLAIN records, parallel
  /// to `query.blocks`.
  std::vector<std::vector<size_t>> block_orders;
  std::vector<ExplainInfo> block_explains;
  /// Per-block wcoj groups (see CrpqPlan::wcoj), parallel to
  /// `query.blocks`. The baked label ids make these the one CoreGQL
  /// artifact resolved at compile time, so their label names are added to
  /// the plan's deps.
  std::vector<std::optional<rel::WcojSpec>> block_wcoj;
};

struct GqlGroupPlan {
  CorePatternPtr pattern;
};

struct RegularPlan {
  RegularQuery query;
};

/// Path enumeration over a single regex. The dl dialect is tried first
/// (it covers data tests), falling back to the plain dialect — mirroring
/// what the interactive shell always did.
struct PathsPlan {
  RegexPtr regex;
  std::optional<DlNfa> dl_nfa;  // set iff the regex parsed as dl dialect
  std::optional<Nfa> nfa;       // set otherwise (plain dialect)
};

/// The graph names a compiled plan resolved at *compile* time — the
/// fingerprint the mutation path uses for label-scoped cache invalidation.
/// Automata-compiled languages (RPQ / CRPQ / dl-CRPQ / Paths) bake interned
/// label and property ids into their NFAs, so a plan stays valid across a
/// mutation iff none of its named labels/properties were touched (wildcard
/// `_` transitions match by exclusion and are unaffected: merged views only
/// ever *append* label ids, never renumber). Languages that resolve names
/// at evaluation time (CoreGQL, GqlGroup, Regular) have empty deps and
/// survive every label-scoped mutation.
struct PlanDeps {
  std::vector<std::string> labels;      // sorted, unique
  std::vector<std::string> properties;  // sorted, unique
};

/// A compiled, immutable, shareable query plan. Produced by `CompilePlan`,
/// cached by `PlanCache`, executed by `QueryEngine`. Safe to execute from
/// several threads concurrently (execution only reads it).
struct Plan {
  QueryLanguage language;
  std::string text;       // the source query text
  uint64_t graph_epoch;   // epoch of the graph the plan was compiled against
  PlanDeps deps;          // names resolved at compile time
  // monostate only while under construction in CompilePlan (some
  // alternatives, e.g. RpqPlan's Nfa, are not default-constructible).
  std::variant<std::monostate, RpqPlan, CrpqPlan, DlCrpqPlan, CoreGqlPlan,
               GqlGroupPlan, RegularPlan, PathsPlan>
      compiled;
};

using PlanPtr = std::shared_ptr<const Plan>;

/// Options that change the compiled artifact (and therefore participate in
/// the cache key as structural fields, see PlanCacheKey::For).
struct PlanOptions {
  /// CoreGQL only: apply WHERE-pushdown (the shell's `gqlopt`) at compile
  /// time, so cached plans skip the rewrite too.
  bool optimize = false;
};

/// Parses `text` in `language` and compiles automata against `g`.
/// Parse and validation failures come back as ErrorCode::kParse.
///
/// `stats` (optional, not owned, same epoch as `g`) enables the conjunct
/// planner for CRPQ / dl-CRPQ / CoreGQL plans: atom result sizes are
/// estimated from the per-label statistics and conjuncts are ordered
/// smallest-first, connected-preferred. Without stats, conjuncts keep
/// their textual order. `stats` is deliberately *not* a PlanOptions field:
/// it does not change plan identity (the cache key already carries the
/// graph epoch, which determines the statistics).
Result<PlanPtr> CompilePlan(QueryLanguage language, const std::string& text,
                            const PropertyGraph& g, uint64_t graph_epoch,
                            const PlanOptions& options = {},
                            const SnapshotStats* stats = nullptr);

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_PLAN_H_
