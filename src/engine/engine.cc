#include "src/engine/engine.h"

#include <cstdio>
#include <sstream>
#include <utility>
#include <variant>

#include "src/coregql/group_eval.h"
#include "src/coregql/query.h"
#include "src/crpq/eval.h"
#include "src/crpq/modes.h"
#include "src/datatest/dl_eval.h"
#include "src/nested/regular_queries.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {

QueryEngine::QueryEngine(PropertyGraph graph)
    : QueryEngine(std::move(graph), Options{}) {}

QueryEngine::QueryEngine(PropertyGraph graph, Options options)
    : graph_(std::make_shared<const PropertyGraph>(std::move(graph))),
      default_timeout_(options.default_timeout),
      cache_(options.cache_capacity_per_shard, options.cache_shards),
      pool_(options.num_threads) {}

void QueryEngine::SetGraph(PropertyGraph graph) {
  auto next = std::make_shared<const PropertyGraph>(std::move(graph));
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    graph_ = std::move(next);
    ++epoch_;
  }
  metrics_.graph_epoch_bumps.Increment();
}

uint64_t QueryEngine::graph_epoch() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return epoch_;
}

std::shared_ptr<const PropertyGraph> QueryEngine::graph_snapshot() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return graph_;
}

void QueryEngine::set_default_timeout(
    std::optional<std::chrono::milliseconds> t) {
  std::lock_guard<std::mutex> lock(graph_mu_);
  default_timeout_ = t;
}

std::optional<std::chrono::milliseconds> QueryEngine::default_timeout() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return default_timeout_;
}

Result<QueryResponse> QueryEngine::Execute(const QueryRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  metrics_.queries_total.Increment();
  metrics_.RecordLanguage(request.language);

  // Snapshot (graph, epoch, timeout) atomically; in-flight queries keep
  // their graph alive even if SetGraph races with them.
  std::shared_ptr<const PropertyGraph> graph;
  uint64_t epoch;
  std::optional<std::chrono::milliseconds> timeout = request.timeout;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    graph = graph_;
    epoch = epoch_;
    if (!timeout.has_value()) timeout = default_timeout_;
  }

  PlanOptions plan_options;
  plan_options.optimize = request.optimize;
  PlanCacheKey key{request.language,
                   PlanCacheKey::WithOptions(request.text, plan_options),
                   epoch};
  bool cache_hit = false;
  PlanPtr plan = cache_.Get(key);
  if (plan != nullptr) {
    cache_hit = true;
    metrics_.cache_hits.Increment();
  } else {
    metrics_.cache_misses.Increment();
    Result<PlanPtr> compiled = CompilePlan(request.language, request.text,
                                           *graph, epoch, plan_options);
    if (!compiled.ok()) {
      metrics_.queries_error.Increment();
      if (compiled.error().code() == ErrorCode::kParse) {
        metrics_.parse_errors.Increment();
      }
      return compiled.error();
    }
    plan = std::move(compiled).value();
    cache_.Put(key, plan);
  }

  CancellationToken token;
  const CancellationToken* cancel = nullptr;
  if (timeout.has_value() && timeout->count() > 0) {
    token = CancellationToken::WithTimeout(*timeout);
    cancel = &token;
  }

  Result<QueryResponse> result = ExecutePlan(*plan, *graph, request, cancel);

  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  metrics_.latency.Record(elapsed);

  // A tripped token means the evaluators unwound early with a partial
  // result; surface that as a deadline error rather than silent truncation.
  if (cancel != nullptr && cancel->Cancelled()) {
    metrics_.queries_error.Increment();
    metrics_.deadline_exceeded.Increment();
    return Error(ErrorCode::kDeadlineExceeded,
                 "deadline of " + std::to_string(timeout->count()) +
                     "ms exceeded");
  }
  if (!result.ok()) {
    metrics_.queries_error.Increment();
    return result;
  }
  QueryResponse response = std::move(result).value();
  response.cache_hit = cache_hit;
  response.latency = elapsed;
  if (response.truncated) metrics_.truncated_results.Increment();
  metrics_.queries_ok.Increment();
  return response;
}

std::future<Result<QueryResponse>> QueryEngine::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  pool_.Submit([this, promise, request = std::move(request)]() {
    promise->set_value(Execute(request));
  });
  return future;
}

Result<QueryResponse> QueryEngine::ExecutePlan(
    const Plan& plan, const PropertyGraph& g, const QueryRequest& request,
    const CancellationToken* cancel) const {
  QueryResponse response;
  std::ostringstream out;

  if (const auto* rpq = std::get_if<RpqPlan>(&plan.compiled)) {
    auto pairs = EvalRpq(g.skeleton(), rpq->nfa, cancel);
    size_t shown = 0;
    for (const auto& [u, v] : pairs) {
      if (shown++ >= request.max_display_rows) {
        out << "  ... (" << pairs.size() << " pairs total)\n";
        break;
      }
      out << "  (" << g.NodeName(u) << ", " << g.NodeName(v) << ")\n";
    }
    out << pairs.size() << " pairs\n";
    response.num_rows = pairs.size();

  } else if (const auto* crpq = std::get_if<CrpqPlan>(&plan.compiled)) {
    CrpqEvalOptions options;
    if (request.max_results) options.max_bindings_per_pair = *request.max_results;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    options.cancel = cancel;
    Result<CrpqResult> r = EvalCrpq(g.skeleton(), crpq->query, options);
    if (!r.ok()) return r.error();
    out << r.value().ToString(g.skeleton()) << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;

  } else if (const auto* dl = std::get_if<DlCrpqPlan>(&plan.compiled)) {
    DlCrpqEvalOptions options;
    if (request.max_results) options.max_bindings_per_pair = *request.max_results;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    options.cancel = cancel;
    Result<CrpqResult> r = EvalDlCrpq(g, dl->query, options);
    if (!r.ok()) return r.error();
    out << r.value().ToString(g.skeleton()) << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;

  } else if (const auto* gql = std::get_if<CoreGqlPlan>(&plan.compiled)) {
    CoreQueryEvalOptions options;
    if (request.max_path_length) {
      options.path_options.max_path_length = *request.max_path_length;
    }
    if (request.max_results) options.path_options.max_results = *request.max_results;
    options.path_options.cancel = cancel;
    Result<CoreQueryResult> r = EvalCoreGqlQuery(g, gql->query, options);
    if (!r.ok()) return r.error();
    if (gql->optimized) {
      out << "(pushdown: " << gql->pushdown.labels_pushed << " labels, "
          << gql->pushdown.selections_pushed << " selections)\n";
    }
    out << r.value().relation.ToString(g.skeleton())
        << r.value().relation.NumRows() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().relation.NumRows();
    response.truncated = r.value().truncated;

  } else if (const auto* group = std::get_if<GqlGroupPlan>(&plan.compiled)) {
    CorePathEvalOptions options;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    if (request.max_results) options.max_results = *request.max_results;
    options.cancel = cancel;
    Result<GqlEvalResult> r = EvalGqlGroupPattern(g, *group->pattern, options);
    if (!r.ok()) return r.error();
    size_t shown = 0;
    for (const GqlPathRow& row : r.value().rows) {
      if (++shown > request.max_display_rows) {
        out << "  ... (" << r.value().rows.size() << " rows total)\n";
        break;
      }
      out << "  " << row.path.ToString(g.skeleton());
      for (const auto& [var, value] : row.mu) {
        out << "  " << var << " -> " << value.ToString(g.skeleton());
      }
      out << "\n";
    }
    out << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;

  } else if (const auto* regular = std::get_if<RegularPlan>(&plan.compiled)) {
    CrpqEvalOptions options;
    if (request.max_results) options.max_bindings_per_pair = *request.max_results;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    options.cancel = cancel;
    Result<CrpqResult> r = EvalRegularQuery(g.skeleton(), regular->query, options);
    if (!r.ok()) return r.error();
    out << r.value().ToString(g.skeleton()) << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;

  } else if (const auto* paths = std::get_if<PathsPlan>(&plan.compiled)) {
    std::optional<NodeId> u = g.FindNode(request.paths.from);
    if (!u.has_value()) {
      return Error(ErrorCode::kNotFound,
                   "unknown node '" + request.paths.from + "'");
    }
    std::optional<NodeId> v = g.FindNode(request.paths.to);
    if (!v.has_value()) {
      return Error(ErrorCode::kNotFound,
                   "unknown node '" + request.paths.to + "'");
    }

    if (request.paths.k_shortest > 0) {
      if (!paths->nfa.has_value() || paths->nfa->HasInverse()) {
        return Error(ErrorCode::kInvalidArgument,
                     "kshortest requires a plain one-way regex");
      }
      Pmr pmr = BuildPmrBetween(g.skeleton(), *paths->nfa, *u, *v);
      std::vector<PathBinding> results =
          KShortestPathBindings(pmr, request.paths.k_shortest);
      size_t shown = 0;
      for (const PathBinding& pb : results) {
        if (shown++ >= request.max_display_rows) {
          out << "  ... (" << results.size() << " paths total)\n";
          break;
        }
        out << "  [len " << pb.path.Length() << "] "
            << pb.path.ToString(g.skeleton()) << "\n";
      }
      out << results.size() << " paths\n";
      response.num_rows = results.size();
    } else {
      EnumerationLimits limits;
      limits.max_results = request.max_results.value_or(50);
      limits.max_length = request.max_path_length.value_or(32);
      limits.cancel = cancel;
      EnumerationStats stats;
      std::vector<PathBinding> results;
      if (paths->dl_nfa.has_value()) {
        DlEvaluator evaluator(g, *paths->dl_nfa);
        results = evaluator.CollectModePaths(*u, *v, request.paths.mode,
                                             limits, &stats);
      } else {
        results = CollectModePaths(g.skeleton(), *paths->nfa, *u, *v,
                                   request.paths.mode, limits, &stats);
      }
      size_t shown = 0;
      for (const PathBinding& pb : results) {
        if (shown++ >= request.max_display_rows) {
          out << "  ... (" << results.size() << " paths total)\n";
          break;
        }
        out << "  " << pb.path.ToString(g.skeleton());
        if (!pb.mu.lists.empty()) {
          out << "  " << pb.mu.ToString(g.skeleton());
        }
        out << "\n";
      }
      out << results.size() << " paths"
          << (stats.truncated ? " (truncated)" : "") << "\n";
      response.num_rows = results.size();
      response.truncated = stats.truncated;
    }
  } else {
    return Error(ErrorCode::kInvalidArgument, "unsupported plan kind");
  }

  response.text = out.str();
  return response;
}

std::string QueryEngine::StatsReport() const {
  std::string out = metrics_.ReportText();
  PlanCache::Stats s = cache_.GetStats();
  char line[160];
  snprintf(line, sizeof(line),
           "plan_cache     entries %zu  hits %llu  misses %llu  "
           "evictions %llu  (%zu shards x %zu)\n",
           s.entries, static_cast<unsigned long long>(s.hits),
           static_cast<unsigned long long>(s.misses),
           static_cast<unsigned long long>(s.evictions), cache_.num_shards(),
           cache_.capacity_per_shard());
  out += line;
  out += "threads        " + std::to_string(pool_.num_threads()) + "\n";
  return out;
}

}  // namespace gqzoo
