#include "src/engine/engine.h"

#include <cassert>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>
#include <variant>

#include "src/coregql/group_eval.h"
#include "src/coregql/query.h"
#include "src/crpq/eval.h"
#include "src/crpq/modes.h"
#include "src/datatest/dl_eval.h"
#include "src/nested/regular_queries.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/rpq/rpq_eval.h"
#include "src/util/failpoint.h"

namespace gqzoo {

namespace {

/// Renders a compiled plan for EXPLAIN. Only conjunctive plans (CRPQ,
/// dl-CRPQ, CoreGQL) carry a join order; everything else compiles to a
/// single automaton with nothing to reorder.
std::string RenderExplain(const Plan& plan) {
  if (const auto* crpq = std::get_if<CrpqPlan>(&plan.compiled)) {
    return crpq->explain.ToString();
  }
  if (const auto* dl = std::get_if<DlCrpqPlan>(&plan.compiled)) {
    return dl->explain.ToString();
  }
  if (const auto* gql = std::get_if<CoreGqlPlan>(&plan.compiled)) {
    std::string out;
    for (size_t i = 0; i < gql->block_explains.size(); ++i) {
      if (gql->block_explains.size() > 1) {
        out += "block " + std::to_string(i + 1) + ":\n";
      }
      out += gql->block_explains[i].ToString();
    }
    return out;
  }
  return "nothing to reorder: plan compiles to a single automaton\n";
}

/// Render target for ExecutePlan: accumulates rows into one string (the
/// historical materialize-then-return path) or, when the request carries a
/// RowSink, streams them in bounded chunks as the render loop produces
/// them. Chunks flush only at row boundaries, and their concatenation is
/// byte-identical to the sink-less text — the server's wire framing and
/// the in-process response are the same bytes. A sink that refuses a chunk
/// abandons the stream and cancels the query through the context, so a
/// disconnected client stops the enumeration instead of rendering rows
/// nobody will read.
class ChunkedResultWriter {
 public:
  ChunkedResultWriter(RowSink* sink, const QueryContext* ctx)
      : sink_(sink), ctx_(ctx) {}

  template <typename T>
  ChunkedResultWriter& operator<<(T&& v) {
    if (!abandoned_) buf_ << std::forward<T>(v);
    return *this;
  }

  /// Marks a row boundary — the only place a chunk may end.
  void EndRow() {
    if (sink_ != nullptr && !abandoned_ &&
        buf_.tellp() >= static_cast<std::streamoff>(kChunkBytes)) {
      FlushChunk();
    }
  }

  /// True once the sink refused a chunk; render loops bail out early.
  bool abandoned() const { return abandoned_; }

  /// Flushes the tail (sink mode) and returns the materialized text
  /// (sink-less mode; empty otherwise — the rows went through the sink).
  std::string Finish() {
    if (sink_ == nullptr) return std::move(buf_).str();
    if (!abandoned_) FlushChunk();
    return std::string();
  }

 private:
  static constexpr size_t kChunkBytes = 4096;

  void FlushChunk() {
    std::string chunk = std::move(buf_).str();
    buf_.str(std::string());
    if (chunk.empty()) return;
    if (!sink_->Write(chunk)) {
      abandoned_ = true;
      if (ctx_ != nullptr) ctx_->RequestCancel();
    }
  }

  RowSink* sink_;
  const QueryContext* ctx_;
  std::ostringstream buf_;
  bool abandoned_ = false;
};

// Whether the compiled plan carries a planner-selected wcoj group (any
// language); feeds the `wcoj_plans` metric on cache misses.
bool PlanHasWcoj(const Plan& plan) {
  if (const auto* crpq = std::get_if<CrpqPlan>(&plan.compiled)) {
    return crpq->wcoj.has_value();
  }
  if (const auto* dl = std::get_if<DlCrpqPlan>(&plan.compiled)) {
    return dl->wcoj.has_value();
  }
  if (const auto* gql = std::get_if<CoreGqlPlan>(&plan.compiled)) {
    for (const auto& spec : gql->block_wcoj) {
      if (spec.has_value()) return true;
    }
  }
  return false;
}

}  // namespace

QueryEngine::QueryEngine(PropertyGraph graph)
    : QueryEngine(std::move(graph), Options{}) {}

QueryEngine::QueryEngine(PropertyGraph graph, Options options)
    : QueryEngine(std::make_shared<const PropertyGraph>(std::move(graph)),
                  std::move(options), nullptr, nullptr) {}

QueryEngine::QueryEngine(std::shared_ptr<const PropertyGraph> graph,
                         Options options,
                         std::shared_ptr<const GraphSnapshot> snapshot,
                         std::shared_ptr<const SnapshotStats> stats)
    : graph_(std::move(graph)),
      snapshot_(snapshot != nullptr ? std::move(snapshot)
                                    : BuildSnapshot(graph_)),
      stats_(stats != nullptr
                 ? std::move(stats)
                 : std::make_shared<const SnapshotStats>(*snapshot_)),
      rpq_shards_(options.rpq_shards),
      use_wcoj_(options.use_wcoj),
      use_batch_kernel_(options.use_batch_kernel),
      default_timeout_(options.default_timeout),
      default_budgets_(options.default_budgets),
      cache_(options.cache_capacity_per_shard, options.cache_shards),
      governor_(options.governor),
      pool_(options.num_threads),
      mutation_policy_(options.mutation),
      mutation_(std::make_unique<MutationManager>(graph_, snapshot_, stats_)) {
  published_ticket_ = mutation_->ticket();
}

QueryEngine::~QueryEngine() {
  // Group-commit may still owe the disk an fsync for acked writes. Pay it
  // *before* the pool is torn down: shutdown runs any queued compaction,
  // which rotates the WAL — the acked tail must be durable while the live
  // log still holds it, not after it has been rewritten.
  (void)FlushWal();
  pool_.Shutdown();
  // Compactions that ran during shutdown may have appended or rotated; a
  // final sync makes their output durable too.
  if (durable_ != nullptr && !durable_->broken()) durable_->Sync();
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::RecoverFrom(
    PropertyGraph initial, Options options) {
  if (options.durability.dir.empty()) {
    return std::unique_ptr<QueryEngine>(
        new QueryEngine(std::move(initial), std::move(options)));
  }
  Result<storage::DurableStore::Opened> opened =
      storage::DurableStore::Open(options.durability, std::move(initial));
  if (!opened.ok()) return opened.error();
  storage::DurableStore::Opened o = std::move(opened).value();
  // On the mapped fast path o.snapshot/o.stats carry the checkpoint's CSR
  // and statistics, so the engine starts without any O(|E|) build at all.
  std::unique_ptr<QueryEngine> engine(
      new QueryEngine(std::move(o.graph), std::move(options),
                      std::move(o.snapshot), std::move(o.stats)));
  // No writes can race this: we hold the only reference.
  engine->durable_ = std::move(o.store);
  engine->recovery_info_ = std::move(o.info);
  engine->durable_checkpoint_lsn_ = engine->durable_->checkpoint_lsn();
  return engine;
}

Result<bool> QueryEngine::FlushWal() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (durable_ == nullptr) return true;
  return durable_->Sync();
}

std::shared_ptr<const GraphSnapshot> QueryEngine::BuildSnapshot(
    std::shared_ptr<const PropertyGraph> graph) {
  // The snapshot borrows the graph's arrays; the deleter's capture keeps
  // the graph alive for as long as any query pins the snapshot.
  return std::shared_ptr<const GraphSnapshot>(
      new GraphSnapshot(*graph),
      [graph](const GraphSnapshot* s) { delete s; });
}

void QueryEngine::SetGraph(PropertyGraph graph) {
  // Taken for the whole replacement (write_mu_ before graph_mu_, the
  // engine-wide order): the WAL ledger reset below must be atomic with the
  // base reset, or a concurrent writer could log a batch against the
  // outgoing generation after the checkpoint that supersedes it.
  std::lock_guard<std::mutex> write_lock(write_mu_);
  auto next = std::make_shared<const PropertyGraph>(std::move(graph));
  // Build the next epoch's CSR and statistics outside the lock: both are
  // O(|E|) and must not stall concurrent executions.
  auto next_snapshot = BuildSnapshot(next);
  auto next_stats = std::make_shared<const SnapshotStats>(*next_snapshot);
  // Invalidation-version bump first: a reader that compiled against the
  // outgoing graph and races past the eviction below must not re-insert
  // its plan (see the Put guard in ExecuteFrom).
  invalidation_version_.fetch_add(1, std::memory_order_acq_rel);
  mutation_->ResetBase(next, next_snapshot, next_stats);
  if (durable_ != nullptr) {
    // The adopted graph replaces everything logged so far: checkpoint it
    // covering every assigned LSN and restart the ledger. In-flight
    // compactions of the old generation are fenced off by the bump.
    durable_generation_.fetch_add(1, std::memory_order_acq_rel);
    pending_records_.clear();
    checkpointed_ops_ = 0;
    uint64_t covered = durable_->next_lsn() - 1;
    Result<bool> ck = durable_->WriteCheckpoint(*next, covered, {});
    if (ck.ok()) durable_checkpoint_lsn_ = covered;
  }
  uint64_t current_epoch;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    graph_ = std::move(next);
    snapshot_ = std::move(next_snapshot);
    stats_ = std::move(next_stats);
    current_epoch = ++epoch_;
    published_ticket_ = mutation_->ticket();
    published_merged_ = false;
  }
  metrics_.graph_epoch_bumps.Increment();
  metrics_.plan_invalidations_full.Increment();
  metrics_.delta_pending_ops.Set(0);
  // Stale-epoch entries can never be returned (the epoch is part of the
  // key); evict them now instead of letting them age out of the LRU.
  size_t evicted = cache_.EvictOtherEpochs(current_epoch);
  if (evicted > 0) metrics_.plans_evicted_dead_epoch.Increment(evicted);
}

void QueryEngine::RefreshViewIfStale() {
  const uint64_t current = mutation_->ticket();
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    if (published_ticket_ == current) return;
  }
  bool built_merged = false;
  MutationManager::View view = mutation_->CurrentView(&built_merged);
  if (built_merged) metrics_.merged_view_builds.Increment();
  // The displaced generation can be the last reference to a whole graph
  // (old merged view + the base a compaction just retired). Swap it out
  // under the lock but destroy it on the pool: freeing tens of thousands
  // of strings and map nodes on the first read after a compaction would
  // show up directly in that reader's latency.
  std::shared_ptr<const PropertyGraph> retired_graph;
  std::shared_ptr<const GraphSnapshot> retired_snapshot;
  std::shared_ptr<const SnapshotStats> retired_stats;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    if (view.ticket < published_ticket_) return;  // a newer publish won
    retired_graph = std::move(graph_);
    retired_snapshot = std::move(snapshot_);
    retired_stats = std::move(stats_);
    graph_ = std::move(view.graph);
    snapshot_ = std::move(view.snapshot);
    stats_ = std::move(view.stats);
    published_ticket_ = view.ticket;
    published_merged_ = view.is_merged;
  }
  bool deferred = pool_.Submit(
      [g = std::move(retired_graph), s = std::move(retired_snapshot),
       st = std::move(retired_stats)]() mutable {
        st.reset();
        s.reset();
        g.reset();
      });
  (void)deferred;  // pool shutting down: the locals free it here instead
}

uint64_t QueryEngine::graph_epoch() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return epoch_;
}

std::shared_ptr<const PropertyGraph> QueryEngine::graph_snapshot() const {
  // Accessors are readers too: pick up any published-but-unmaterialized
  // delta, so `show` after a mutation renders the merged view (logically
  // const — the view cache is rebuilt, observable state is unchanged).
  const_cast<QueryEngine*>(this)->RefreshViewIfStale();
  std::lock_guard<std::mutex> lock(graph_mu_);
  return graph_;
}

std::shared_ptr<const GraphSnapshot> QueryEngine::csr_snapshot() const {
  const_cast<QueryEngine*>(this)->RefreshViewIfStale();
  std::lock_guard<std::mutex> lock(graph_mu_);
  return snapshot_;
}

void QueryEngine::set_default_timeout(
    std::optional<std::chrono::milliseconds> t) {
  std::lock_guard<std::mutex> lock(graph_mu_);
  default_timeout_ = t;
}

std::optional<std::chrono::milliseconds> QueryEngine::default_timeout() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return default_timeout_;
}

void QueryEngine::set_default_budgets(const ResourceBudgets& budgets) {
  std::lock_guard<std::mutex> lock(graph_mu_);
  default_budgets_ = budgets;
}

ResourceBudgets QueryEngine::default_budgets() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return default_budgets_;
}

Result<QueryResponse> QueryEngine::Execute(const QueryRequest& request) {
  return ExecuteFrom(request, std::chrono::steady_clock::now());
}

Result<QueryResponse> QueryEngine::ExecuteFrom(
    const QueryRequest& request, QueryContext::Clock::time_point admitted_at) {
  const auto start = std::chrono::steady_clock::now();
  const size_t lang = static_cast<size_t>(request.language);
  metrics_.queries_total.Increment();
  metrics_.RecordLanguage(request.language);

  // Publish any pending delta as a merged view before pinning. Pure-read
  // workloads take only the one-atomic-compare fast path here.
  RefreshViewIfStale();

  // Snapshot (graph, CSR, epoch, timeout, budgets) atomically; in-flight
  // queries keep the graph and CSR they started with alive even if
  // SetGraph or a mutation races with them (compaction publish included —
  // the shared_ptrs pin the old generation until the query finishes).
  std::shared_ptr<const PropertyGraph> graph;
  std::shared_ptr<const GraphSnapshot> snapshot;
  std::shared_ptr<const SnapshotStats> stats;
  uint64_t epoch;
  bool merged_view;
  std::optional<std::chrono::milliseconds> timeout = request.timeout;
  ResourceBudgets budgets;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    graph = graph_;
    snapshot = snapshot_;
    stats = stats_;
    epoch = epoch_;
    merged_view = published_merged_;
    if (!timeout.has_value()) timeout = default_timeout_;
    budgets = default_budgets_;
  }

  // Regular queries evaluate against a mutable working copy of the
  // skeleton (rules add edges), which an overlay-mode view cannot provide.
  // Force the pending delta into a plain base first; a bounded retry
  // covers a concurrent background fold holding the compaction slot.
  if (request.language == QueryLanguage::kRegular && merged_view) {
    for (int attempt = 0; merged_view && attempt < 10; ++attempt) {
      if (!RunCompaction()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      RefreshViewIfStale();
      std::lock_guard<std::mutex> lock(graph_mu_);
      graph = graph_;
      snapshot = snapshot_;
      stats = stats_;
      epoch = epoch_;
      merged_view = published_merged_;
    }
    if (merged_view) {
      metrics_.queries_error.Increment();
      return Error(ErrorCode::kUnavailable,
                   "regular queries need a compacted graph and the pending "
                   "delta could not be folded; retry");
    }
  }
  if (request.memory_budget) budgets.memory_bytes = *request.memory_budget;
  if (request.row_budget) budgets.result_rows = *request.row_budget;
  if (request.step_budget) budgets.steps = *request.step_budget;

  QueryContext ctx;
  if (timeout.has_value() && timeout->count() > 0) {
    ctx = QueryContext::WithDeadline(admitted_at + *timeout);
  }
  ctx.set_budgets(budgets);
  if (request.cancel != nullptr) ctx.set_external_cancel(request.cancel.get());
  // Ungoverned queries keep passing a null context so evaluators skip all
  // polling, exactly as before budgets existed. A request with an external
  // cancel flag or a streaming sink is always governed: both need a live
  // context to trip (disconnect mid-evaluation, sink refusing a chunk).
  const QueryContext* cancel =
      (ctx.deadline().has_value() || budgets.any() ||
       request.cancel != nullptr || request.sink != nullptr)
          ? &ctx
          : nullptr;

  // Anchoring the deadline at admission means a query can arrive here with
  // nothing left: its whole budget was spent waiting in the queue. Fail
  // fast without compiling or evaluating anything.
  if (cancel != nullptr && ctx.Cancelled()) {
    metrics_.queries_error.Increment();
    metrics_.deadline_exceeded.Increment();
    metrics_.cancelled_by_language[lang].Increment();
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - admitted_at);
    return Error(ErrorCode::kDeadlineExceeded,
                 "deadline of " + std::to_string(timeout->count()) +
                     "ms exceeded before execution started (queued for " +
                     std::to_string(waited.count()) + "ms)");
  }

  PlanOptions plan_options;
  plan_options.optimize = request.optimize;
  PlanCacheKey key =
      PlanCacheKey::For(request.language, request.text, epoch, plan_options);
  // Recorded before the cache probe: if any invalidation (label-scoped or
  // SetGraph) lands while we compile, our plan may describe pre-mutation
  // state and must not be inserted.
  const uint64_t inval_version =
      invalidation_version_.load(std::memory_order_acquire);
  bool cache_hit = false;
  PlanPtr plan = cache_.Get(key);
  if (plan != nullptr) {
    cache_hit = true;
    metrics_.cache_hits.Increment();
  } else {
    metrics_.cache_misses.Increment();
    Result<PlanPtr> compiled = CompilePlan(request.language, request.text,
                                           *graph, epoch, plan_options,
                                           stats.get());
    if (!compiled.ok()) {
      metrics_.queries_error.Increment();
      if (compiled.error().code() == ErrorCode::kParse) {
        metrics_.parse_errors.Increment();
      }
      return compiled.error();
    }
    plan = std::move(compiled).value();
    if (PlanHasWcoj(*plan)) metrics_.wcoj_plans.Increment();
    if (invalidation_version_.load(std::memory_order_acquire) ==
        inval_version) {
      cache_.Put(key, plan);
    }
  }

  if (request.explain) {
    // EXPLAIN renders the compiled plan instead of executing it. The plan
    // was compiled (and cached) exactly as execution would have used it.
    QueryResponse response;
    response.text = RenderExplain(*plan);
    if (request.sink != nullptr) {
      (void)request.sink->Write(response.text);
      response.text.clear();
    }
    response.cache_hit = cache_hit;
    response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    metrics_.latency.Record(response.latency);
    metrics_.queries_ok.Increment();
    return response;
  }

  Result<QueryResponse> result =
      ExecutePlan(*plan, *graph, *snapshot, request, cancel);

  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  metrics_.latency.Record(elapsed);

  // A tripped context means the evaluators unwound early with a partial
  // result; surface the stop cause as the matching error rather than
  // silent truncation.
  if (cancel != nullptr) {
    metrics_.peak_query_bytes.Update(ctx.memory_peak_bytes());
    (void)ctx.Cancelled();  // fold a just-passed deadline into the cause
    switch (ctx.stop_cause()) {
      case StopCause::kNone:
        break;
      case StopCause::kDeadline:
        metrics_.queries_error.Increment();
        metrics_.deadline_exceeded.Increment();
        metrics_.cancelled_by_language[lang].Increment();
        return Error(ErrorCode::kDeadlineExceeded,
                     "deadline of " + std::to_string(timeout->count()) +
                         "ms exceeded");
      case StopCause::kCancelled:
        metrics_.queries_error.Increment();
        metrics_.cancelled.Increment();
        metrics_.cancelled_by_language[lang].Increment();
        return Error(ErrorCode::kCancelled, "query cancelled");
      default: {  // one of the resource budgets ran out
        metrics_.queries_error.Increment();
        metrics_.resource_exhausted.Increment();
        metrics_.exhausted_by_language[lang].Increment();
        return Error(ErrorCode::kResourceExhausted,
                     "resource budget exhausted: " + ctx.Report().ToString());
      }
    }
  }
  if (!result.ok()) {
    metrics_.queries_error.Increment();
    return result;
  }
  QueryResponse response = std::move(result).value();
  response.cache_hit = cache_hit;
  response.latency = elapsed;
  if (response.truncated) metrics_.truncated_results.Increment();
  metrics_.queries_ok.Increment();
  return response;
}

Result<QueryEngine::MutationResult> QueryEngine::ApplyMutation(
    const MutationBatch& batch) {
  // Writes pass the same admission gate as submitted queries: under
  // overload the whole batch is shed before touching any state.
  if (Failpoint::ShouldFail("engine.apply_mutation") || !governor_.TryAdmit()) {
    metrics_.write_sheds.Increment();
    return Error(ErrorCode::kOverloaded,
                 "write shed: engine at admission capacity (" +
                     std::to_string(governor_.options().admission_capacity) +
                     " in flight); retry later");
  }
  governor_.BeginExecution();

  // A failed WAL append poisons the store: later writes must not publish
  // over ops that were applied but never made durable.
  if (durable_ != nullptr && durable_->broken()) {
    governor_.EndExecution();
    return Error(ErrorCode::kUnavailable,
                 "durable store is broken after a failed WAL or checkpoint "
                 "write; restart the process to recover");
  }

  std::optional<std::chrono::milliseconds> timeout;
  ResourceBudgets budgets;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    timeout = default_timeout_;
    budgets = default_budgets_;
  }
  QueryContext ctx;
  if (timeout.has_value() && timeout->count() > 0) {
    ctx = QueryContext::WithDeadline(std::chrono::steady_clock::now() +
                                     *timeout);
  }
  ctx.set_budgets(budgets);
  const QueryContext* cancel =
      (ctx.deadline().has_value() || budgets.any()) ? &ctx : nullptr;

  MutationManager::ApplyOutcome outcome;
  size_t dropped = 0;
  {
    // apply → invalidate → publish, as one unit: a reader must never see
    // this batch's data while a plan naming a touched label is cacheable.
    std::lock_guard<std::mutex> write_lock(write_mu_);
    outcome = mutation_->Apply(batch, mutation_policy_, cancel);
    if (outcome.ops_applied > 0) {
      if (durable_ != nullptr) {
        // WAL rule: durable before visible. Log exactly the applied prefix
        // (a partial batch publishes its prefix). On failure nothing is
        // published — the ops sit in the overlay behind an unbumped ticket
        // and the sticky broken flag keeps every later write out, so the
        // unlogged state can never reach a reader or a checkpoint.
        std::vector<MutationOp> logged(
            batch.ops.begin(),
            batch.ops.begin() + static_cast<ptrdiff_t>(outcome.ops_applied));
        Result<uint64_t> lsn = durable_->AppendBatch(logged);
        if (!lsn.ok()) {
          governor_.EndExecution();
          return Error(lsn.error().code(),
                       "write not acknowledged: " + lsn.error().message());
        }
        pending_records_.push_back(
            storage::WalRecord{lsn.value(), std::move(logged)});
      }
      metrics_.write_batches.Increment();
      metrics_.write_ops.Increment(outcome.ops_applied);
      if (!outcome.touched_labels.empty() ||
          !outcome.touched_properties.empty()) {
        invalidation_version_.fetch_add(1, std::memory_order_acq_rel);
        dropped = cache_.InvalidateDeps(outcome.touched_labels,
                                        outcome.touched_properties);
        metrics_.plan_invalidations_scoped.Increment();
        if (dropped > 0) metrics_.plans_invalidated.Increment(dropped);
      }
      mutation_->Publish();
    }
    metrics_.delta_pending_ops.Set(outcome.pending_ops);
  }
  governor_.EndExecution();

  bool scheduled = false;
  if (outcome.want_compaction) {
    if (mutation_policy_.background_compaction) {
      scheduled = pool_.Submit([this] { RunCompaction(); });
    } else {
      scheduled = CompactNow();
    }
  }

  if (!outcome.applied.ok()) return outcome.applied.error();
  MutationResult result;
  result.applied = outcome.applied.value();
  result.pending_ops = outcome.pending_ops;
  result.plans_invalidated = dropped;
  result.compaction_scheduled = scheduled;
  return result;
}

bool QueryEngine::CompactNow() { return RunCompaction(); }

bool QueryEngine::RunCompaction() {
  // A broken store must not fold: compaction rewrites the WAL, and the
  // overlay may still hold ops whose append failed — folding them in would
  // publish never-logged state as durable.
  if (durable_ != nullptr && durable_->broken()) return false;
  const uint64_t generation =
      durable_generation_.load(std::memory_order_acquire);
  MutationManager::CompactReport report;
  if (!mutation_->Compact(&report)) return false;
  metrics_.compactions_run.Increment();
  metrics_.delta_pending_ops.Set(mutation_->GetInfo().pending_ops);
  if (durable_ != nullptr) PersistCheckpoint(report, generation);
  return true;
}

void QueryEngine::PersistCheckpoint(
    const MutationManager::CompactReport& report, uint64_t generation) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (durable_ == nullptr || durable_->broken()) return;
  if (durable_generation_.load(std::memory_order_acquire) != generation) {
    return;  // SetGraph restarted the ledger while we folded
  }
  if (report.total_ops_folded <= checkpointed_ops_) {
    return;  // a later fold already checkpointed past this one
  }
  // Applies and their WAL appends serialize under write_mu_, so a fold
  // boundary always lands on a record boundary: pop whole records until
  // the op ledgers agree, and the last popped LSN is what the checkpoint
  // covers.
  uint64_t covered_lsn = durable_checkpoint_lsn_;
  while (checkpointed_ops_ < report.total_ops_folded) {
    assert(!pending_records_.empty() &&
           "fold ledger ahead of the WAL record ledger");
    if (pending_records_.empty()) return;
    checkpointed_ops_ += pending_records_.front().ops.size();
    covered_lsn = pending_records_.front().lsn;
    pending_records_.pop_front();
  }
  std::vector<storage::WalRecord> residual(pending_records_.begin(),
                                           pending_records_.end());
  Result<bool> written =
      durable_->WriteCheckpoint(*report.base, covered_lsn, residual);
  if (written.ok()) durable_checkpoint_lsn_ = covered_lsn;
}

std::future<Result<QueryResponse>> QueryEngine::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  const auto admitted_at = std::chrono::steady_clock::now();
  const QueryLanguage language = request.language;
  const size_t lang = static_cast<size_t>(language);

  if (Failpoint::ShouldFail("engine.submit") || !governor_.TryAdmit()) {
    metrics_.queries_total.Increment();
    metrics_.RecordLanguage(language);
    metrics_.queries_error.Increment();
    metrics_.overloaded_shed.Increment();
    metrics_.shed_by_language[lang].Increment();
    promise->set_value(
        Error(ErrorCode::kOverloaded,
              "query shed: engine at admission capacity (" +
                  std::to_string(governor_.options().admission_capacity) +
                  " in flight); retry later"));
    return future;
  }
  metrics_.queue_depth_high_water.Update(governor_.high_water());

  bool accepted =
      pool_.Submit([this, promise, admitted_at,
                    request = std::move(request)]() {
        governor_.BeginExecution();
        Result<QueryResponse> result = ExecuteFrom(request, admitted_at);
        // Free the slot before fulfilling the promise: a caller observing
        // the future must see the query's admission already released.
        governor_.EndExecution();
        promise->set_value(std::move(result));
      });
  if (!accepted) {
    governor_.CancelAdmission();
    metrics_.queries_total.Increment();
    metrics_.RecordLanguage(language);
    metrics_.queries_error.Increment();
    promise->set_value(Error(ErrorCode::kUnavailable,
                             "engine thread pool is shut down"));
  }
  return future;
}

Result<QueryResponse> QueryEngine::ExecutePlan(
    const Plan& plan, const PropertyGraph& g, const GraphSnapshot& snapshot,
    const QueryRequest& request, const CancellationToken* cancel) {
  QueryResponse response;
  ChunkedResultWriter out(request.sink, cancel);
  // Execution-time policy: per-request overrides win over engine defaults.
  const bool use_wcoj = request.use_wcoj.value_or(use_wcoj_);
  const bool use_batch = request.use_batch_kernel.value_or(use_batch_kernel_);
  auto count_wcoj = [&] {
    metrics_.wcoj_by_language[static_cast<size_t>(request.language)]
        .Increment();
  };

  if (const auto* rpq = std::get_if<RpqPlan>(&plan.compiled)) {
    ParallelRpqOptions rpq_options;
    rpq_options.pool = &pool_;
    rpq_options.num_shards = rpq_shards_;
    rpq_options.cancel = cancel;
    auto pairs = EvalRpqParallel(snapshot, rpq->nfa, rpq_options);
    size_t shown = 0;
    for (const auto& [u, v] : pairs) {
      if (out.abandoned()) break;
      if (shown++ >= request.max_display_rows) {
        out << "  ... (" << pairs.size() << " pairs total)\n";
        break;
      }
      out << "  (" << g.NodeName(u) << ", " << g.NodeName(v) << ")\n";
      out.EndRow();
    }
    out << pairs.size() << " pairs\n";
    response.num_rows = pairs.size();

  } else if (const auto* crpq = std::get_if<CrpqPlan>(&plan.compiled)) {
    CrpqEvalOptions options;
    if (request.max_results) options.max_bindings_per_pair = *request.max_results;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    options.cancel = cancel;
    options.snapshot = &snapshot;
    options.pool = &pool_;
    options.num_shards = rpq_shards_;
    options.atom_nfas = &crpq->atom_nfas;
    if (!request.textual_join_order) options.join_order = &crpq->join_order;
    options.use_batch = use_batch;
    if (use_wcoj && crpq->wcoj.has_value()) {
      options.wcoj = &*crpq->wcoj;
      count_wcoj();
    }
    Result<CrpqResult> r = EvalCrpq(g.skeleton(), crpq->query, options);
    if (!r.ok()) return r.error();
    out << r.value().ToString(g.skeleton());
    out.EndRow();
    out << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;
    if (use_batch) metrics_.batch_rows.Increment(response.num_rows);

  } else if (const auto* dl = std::get_if<DlCrpqPlan>(&plan.compiled)) {
    DlCrpqEvalOptions options;
    if (request.max_results) options.max_bindings_per_pair = *request.max_results;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    options.cancel = cancel;
    options.snapshot = &snapshot;
    options.atom_nfas = &dl->atom_nfas;
    if (!request.textual_join_order) options.join_order = &dl->join_order;
    options.use_batch = use_batch;
    if (use_wcoj && dl->wcoj.has_value()) {
      options.wcoj = &*dl->wcoj;
      count_wcoj();
    }
    Result<CrpqResult> r = EvalDlCrpq(g, dl->query, options);
    if (!r.ok()) return r.error();
    out << r.value().ToString(g.skeleton());
    out.EndRow();
    out << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;
    if (use_batch) metrics_.batch_rows.Increment(response.num_rows);

  } else if (const auto* gql = std::get_if<CoreGqlPlan>(&plan.compiled)) {
    CoreQueryEvalOptions options;
    if (request.max_path_length) {
      options.path_options.max_path_length = *request.max_path_length;
    }
    if (request.max_results) options.path_options.max_results = *request.max_results;
    options.path_options.cancel = cancel;
    options.path_options.snapshot = &snapshot;
    if (!request.textual_join_order) options.block_orders = &gql->block_orders;
    options.use_batch = use_batch;
    if (use_wcoj && !gql->block_wcoj.empty()) {
      options.block_wcoj = &gql->block_wcoj;
      for (const auto& spec : gql->block_wcoj) {
        if (spec.has_value()) {
          count_wcoj();
          break;
        }
      }
    }
    Result<CoreQueryResult> r = EvalCoreGqlQuery(g, gql->query, options);
    if (!r.ok()) return r.error();
    if (gql->optimized) {
      out << "(pushdown: " << gql->pushdown.labels_pushed << " labels, "
          << gql->pushdown.selections_pushed << " selections)\n";
    }
    out << r.value().relation.ToString(g.skeleton());
    out.EndRow();
    out << r.value().relation.NumRows() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().relation.NumRows();
    response.truncated = r.value().truncated;
    if (use_batch) metrics_.batch_rows.Increment(response.num_rows);

  } else if (const auto* group = std::get_if<GqlGroupPlan>(&plan.compiled)) {
    CorePathEvalOptions options;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    if (request.max_results) options.max_results = *request.max_results;
    options.cancel = cancel;
    options.snapshot = &snapshot;
    Result<GqlEvalResult> r = EvalGqlGroupPattern(g, *group->pattern, options);
    if (!r.ok()) return r.error();
    size_t shown = 0;
    for (const GqlPathRow& row : r.value().rows) {
      if (out.abandoned()) break;
      if (++shown > request.max_display_rows) {
        out << "  ... (" << r.value().rows.size() << " rows total)\n";
        break;
      }
      out << "  " << row.path.ToString(g.skeleton());
      for (const auto& [var, value] : row.mu) {
        out << "  " << var << " -> " << value.ToString(g.skeleton());
      }
      out << "\n";
      out.EndRow();
    }
    out << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;

  } else if (const auto* regular = std::get_if<RegularPlan>(&plan.compiled)) {
    CrpqEvalOptions options;
    if (request.max_results) options.max_bindings_per_pair = *request.max_results;
    if (request.max_path_length) options.max_path_length = *request.max_path_length;
    options.cancel = cancel;
    // No snapshot: regular queries evaluate against a mutable working copy
    // of the graph (rules add edges), which no cached CSR describes.
    Result<CrpqResult> r = EvalRegularQuery(g.skeleton(), regular->query, options);
    if (!r.ok()) return r.error();
    out << r.value().ToString(g.skeleton());
    out.EndRow();
    out << r.value().rows.size() << " rows"
        << (r.value().truncated ? " (truncated)" : "") << "\n";
    response.num_rows = r.value().rows.size();
    response.truncated = r.value().truncated;

  } else if (const auto* paths = std::get_if<PathsPlan>(&plan.compiled)) {
    std::optional<NodeId> u = g.FindNode(request.paths.from);
    if (!u.has_value()) {
      return Error(ErrorCode::kNotFound,
                   "unknown node '" + request.paths.from + "'");
    }
    std::optional<NodeId> v = g.FindNode(request.paths.to);
    if (!v.has_value()) {
      return Error(ErrorCode::kNotFound,
                   "unknown node '" + request.paths.to + "'");
    }

    if (request.paths.k_shortest > 0) {
      if (!paths->nfa.has_value() || paths->nfa->HasInverse()) {
        return Error(ErrorCode::kInvalidArgument,
                     "kshortest requires a plain one-way regex");
      }
      Pmr pmr = BuildPmrBetween(snapshot, *paths->nfa, *u, *v);
      std::vector<PathBinding> results =
          KShortestPathBindings(pmr, request.paths.k_shortest, cancel);
      size_t shown = 0;
      for (const PathBinding& pb : results) {
        if (out.abandoned()) break;
        if (shown++ >= request.max_display_rows) {
          out << "  ... (" << results.size() << " paths total)\n";
          break;
        }
        out << "  [len " << pb.path.Length() << "] "
            << pb.path.ToString(g.skeleton()) << "\n";
        out.EndRow();
      }
      out << results.size() << " paths\n";
      response.num_rows = results.size();
    } else {
      if (paths->nfa.has_value() && paths->nfa->HasInverse()) {
        // PMRs and the simple/trail search are one-way; an inverse atom
        // would be silently treated as forward (or trip a PMR assert).
        return Error(ErrorCode::kInvalidArgument,
                     "path enumeration requires a one-way regex");
      }
      EnumerationLimits limits;
      limits.max_results = request.max_results.value_or(50);
      limits.max_length = request.max_path_length.value_or(32);
      limits.cancel = cancel;
      EnumerationStats stats;
      std::vector<PathBinding> results;
      if (paths->dl_nfa.has_value()) {
        DlEvaluator evaluator(g, *paths->dl_nfa, &snapshot);
        results = evaluator.CollectModePaths(*u, *v, request.paths.mode,
                                             limits, &stats);
      } else {
        results = CollectModePaths(snapshot, *paths->nfa, *u, *v,
                                   request.paths.mode, limits, &stats);
      }
      size_t shown = 0;
      for (const PathBinding& pb : results) {
        if (out.abandoned()) break;
        if (shown++ >= request.max_display_rows) {
          out << "  ... (" << results.size() << " paths total)\n";
          break;
        }
        out << "  " << pb.path.ToString(g.skeleton());
        if (!pb.mu.lists.empty()) {
          out << "  " << pb.mu.ToString(g.skeleton());
        }
        out << "\n";
        out.EndRow();
      }
      out << results.size() << " paths"
          << (stats.truncated ? " (truncated)" : "") << "\n";
      response.num_rows = results.size();
      response.truncated = stats.truncated;
    }
  } else {
    return Error(ErrorCode::kInvalidArgument, "unsupported plan kind");
  }

  response.text = out.Finish();
  return response;
}

std::string QueryEngine::StatsReport() const {
  std::string out = metrics_.ReportText();
  PlanCache::Stats s = cache_.GetStats();
  char line[160];
  snprintf(line, sizeof(line),
           "plan_cache     entries %zu  hits %llu  misses %llu  "
           "evictions %llu  (%zu shards x %zu)\n",
           s.entries, static_cast<unsigned long long>(s.hits),
           static_cast<unsigned long long>(s.misses),
           static_cast<unsigned long long>(s.evictions), cache_.num_shards(),
           cache_.capacity_per_shard());
  out += line;
  snprintf(line, sizeof(line),
           "governor       in_flight %zu  high_water %zu  shed %llu  "
           "(capacity %zu, max_concurrent %zu)\n",
           governor_.in_flight(), governor_.high_water(),
           static_cast<unsigned long long>(governor_.shed_total()),
           governor_.options().admission_capacity,
           governor_.options().max_concurrent);
  out += line;
  MutationManager::Info delta = mutation_->GetInfo();
  snprintf(line, sizeof(line),
           "delta          pending_ops %llu  ~%zu bytes  compactions %llu  "
           "base_resets %llu\n",
           static_cast<unsigned long long>(delta.pending_ops),
           delta.approx_delta_bytes,
           static_cast<unsigned long long>(delta.compactions),
           static_cast<unsigned long long>(delta.base_resets));
  out += line;
  if (durable_ != nullptr) {
    std::lock_guard<std::mutex> lock(write_mu_);
    snprintf(line, sizeof(line),
             "durable        wal_records %llu  wal_bytes %llu  syncs %llu  "
             "checkpoints %llu  ckpt_lsn %llu%s\n",
             static_cast<unsigned long long>(durable_->wal_records()),
             static_cast<unsigned long long>(durable_->wal_bytes()),
             static_cast<unsigned long long>(durable_->wal_syncs()),
             static_cast<unsigned long long>(durable_->checkpoints_written()),
             static_cast<unsigned long long>(durable_->checkpoint_lsn()),
             durable_->broken() ? "  BROKEN" : "");
    out += line;
  }
  out += "threads        " + std::to_string(pool_.num_threads()) + "\n";
  return out;
}

}  // namespace gqzoo
