#include "src/engine/plan.h"

#include <utility>

#include "src/coregql/pattern_parser.h"
#include "src/crpq/crpq_parser.h"
#include "src/regex/parser.h"

namespace gqzoo {

namespace {

Error AsParseError(const Error& e) {
  return Error(ErrorCode::kParse, e.message());
}

}  // namespace

Result<PlanPtr> CompilePlan(QueryLanguage language, const std::string& text,
                            const PropertyGraph& g, uint64_t graph_epoch,
                            const PlanOptions& options) {
  auto plan = std::make_shared<Plan>();
  plan->language = language;
  plan->text = text;
  plan->graph_epoch = graph_epoch;

  switch (language) {
    case QueryLanguage::kRpq: {
      Result<RegexPtr> regex = ParseRegex(text, RegexDialect::kPlain);
      if (!regex.ok()) return AsParseError(regex.error());
      Nfa nfa = Nfa::FromRegex(*regex.value(), g.skeleton());
      plan->compiled = RpqPlan{std::move(regex).value(), std::move(nfa)};
      break;
    }
    case QueryLanguage::kCrpq: {
      Result<Crpq> query = ParseCrpq(text, RegexDialect::kPlain);
      if (!query.ok()) return AsParseError(query.error());
      Result<bool> valid = query.value().Validate();
      if (!valid.ok()) return AsParseError(valid.error());
      plan->compiled = CrpqPlan{std::move(query).value()};
      break;
    }
    case QueryLanguage::kDlCrpq: {
      Result<Crpq> query = ParseCrpq(text, RegexDialect::kDl);
      if (!query.ok()) return AsParseError(query.error());
      Result<bool> valid = query.value().Validate();
      if (!valid.ok()) return AsParseError(valid.error());
      plan->compiled = DlCrpqPlan{std::move(query).value()};
      break;
    }
    case QueryLanguage::kCoreGql: {
      Result<CoreGqlQuery> query = ParseCoreGqlQuery(text);
      if (!query.ok()) return AsParseError(query.error());
      CoreGqlPlan compiled;
      compiled.optimized = options.optimize;
      if (options.optimize) {
        compiled.query = PushDownConditions(query.value(), &compiled.pushdown);
      } else {
        compiled.query = std::move(query).value();
      }
      plan->compiled = std::move(compiled);
      break;
    }
    case QueryLanguage::kGqlGroup: {
      Result<CorePatternPtr> pattern = ParseCorePattern(text);
      if (!pattern.ok()) return AsParseError(pattern.error());
      plan->compiled = GqlGroupPlan{std::move(pattern).value()};
      break;
    }
    case QueryLanguage::kRegular: {
      Result<RegularQuery> query = ParseRegularQuery(text);
      if (!query.ok()) return AsParseError(query.error());
      plan->compiled = RegularPlan{std::move(query).value()};
      break;
    }
    case QueryLanguage::kPaths: {
      // dl dialect first (covers data tests), then plain — the shell's
      // historical behavior. Report the plain-dialect error on double
      // failure; it is the more common dialect.
      PathsPlan compiled;
      Result<RegexPtr> dl = ParseRegex(text, RegexDialect::kDl);
      if (dl.ok()) {
        compiled.dl_nfa = DlNfa::FromRegex(*dl.value(), g);
        compiled.regex = std::move(dl).value();
      } else {
        Result<RegexPtr> plain = ParseRegex(text, RegexDialect::kPlain);
        if (!plain.ok()) return AsParseError(plain.error());
        compiled.nfa = Nfa::FromRegex(*plain.value(), g.skeleton());
        compiled.regex = std::move(plain).value();
      }
      plan->compiled = std::move(compiled);
      break;
    }
  }
  return PlanPtr(std::move(plan));
}

}  // namespace gqzoo
