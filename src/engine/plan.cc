#include "src/engine/plan.h"

#include <algorithm>
#include <utility>

#include "src/coregql/pattern_parser.h"
#include "src/crpq/crpq_parser.h"
#include "src/planner/cost_model.h"
#include "src/planner/planner.h"
#include "src/regex/parser.h"

namespace gqzoo {

namespace {

Error AsParseError(const Error& e) {
  return Error(ErrorCode::kParse, e.message());
}

// Display form of an atom for EXPLAIN: "mode regex(from, to)".
std::string AtomLabel(const CrpqAtom& atom) {
  std::string out;
  if (atom.mode != PathMode::kAll) {
    out += PathModeName(atom.mode);
    out += " ";
  }
  out += atom.regex->ToString();
  out += "(";
  out += atom.from.is_constant ? "@" + atom.from.name : atom.from.name;
  out += ", ";
  out += atom.to.is_constant ? "@" + atom.to.name : atom.to.name;
  out += ")";
  return out;
}

// Join variables of an atom: its non-constant endpoints. List variables
// are never shared between atoms (condition (4) of Section 3.1.5), so
// they play no role in connectivity.
std::vector<std::string> AtomVars(const CrpqAtom& atom) {
  std::vector<std::string> vars;
  if (!atom.from.is_constant) vars.push_back(atom.from.name);
  if (!atom.to.is_constant && atom.to.name != atom.from.name) {
    vars.push_back(atom.to.name);
  }
  return vars;
}

// Accumulates the label and property names a regex resolves against the
// graph at compile time (Nfa/DlNfa::FromRegex interns them into the
// automaton) — the raw material for Plan::deps. kAny atoms resolve no
// name; kNegSet atoms depend on every *named* member (the wildcard
// remainder matches by exclusion and needs none).
void CollectRegexDeps(const Regex& r, std::vector<std::string>* labels,
                      std::vector<std::string>* properties) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return;
    case Regex::Op::kAtom: {
      const Atom& a = r.atom();
      if (a.label_kind == Atom::LabelKind::kOne ||
          a.label_kind == Atom::LabelKind::kNegSet) {
        labels->insert(labels->end(), a.labels.begin(), a.labels.end());
      }
      if (a.test.has_value()) properties->push_back(a.test->property);
      return;
    }
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      CollectRegexDeps(*r.left(), labels, properties);
      CollectRegexDeps(*r.right(), labels, properties);
      return;
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      CollectRegexDeps(*r.child(), labels, properties);
      return;
  }
}

void SortUnique(std::vector<std::string>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Orders `conjuncts` with the greedy planner when stats were supplied,
// falling back to textual order (recorded as such) otherwise or for
// single-conjunct queries.
std::vector<size_t> OrderConjuncts(const std::vector<Conjunct>& conjuncts,
                                   bool have_stats, ExplainInfo* explain) {
  if (have_stats && conjuncts.size() > 1) {
    return GreedyJoinOrder(conjuncts, explain);
  }
  return TextualJoinOrder(conjuncts, explain);
}

// True when a CRPQ / dl-CRPQ atom's relation is exactly one label's edge
// relation over two distinct variables — the shape the worst-case-optimal
// join can serve straight from the per-label CSR slices. Mode must be
// kAll: restricted modes cannot change the pair set of a single-edge
// regex in useful cases, but kSimple's treatment of self-loops is
// evaluator-defined, so anything but kAll stays on the binary path.
bool WcojEligibleAtom(const CrpqAtom& atom) {
  if (atom.mode != PathMode::kAll) return false;
  if (atom.from.is_constant || atom.to.is_constant) return false;
  if (atom.from.name == atom.to.name) return false;
  if (atom.regex == nullptr || atom.regex->op() != Regex::Op::kAtom) {
    return false;
  }
  const Atom& a = atom.regex->atom();
  return a.target == Atom::Target::kEdge &&
         a.label_kind == Atom::LabelKind::kOne && !a.inverse &&
         !a.capture.has_value() && !a.test.has_value();
}

// Shared spec construction once a cyclic core is detected: maps the
// elimination order to variable indices and bakes the resolved label ids.
// `atoms` holds (conjunct, from, to, label) rows for every candidate.
struct WcojAtomRow {
  size_t conjunct;
  std::string from;
  std::string to;
  LabelId label;
};

std::optional<rel::WcojSpec> BuildWcojSpec(
    const std::vector<WcojAtomRow>& rows, const SnapshotStats& stats,
    ExplainInfo* explain) {
  std::vector<WcojCandidate> candidates;
  candidates.reserve(rows.size());
  for (const WcojAtomRow& r : rows) {
    WcojCandidate c;
    c.conjunct = r.conjunct;
    c.from = r.from;
    c.to = r.to;
    c.distinct_from = stats.DistinctSources(r.label);
    c.distinct_to = stats.DistinctTargets(r.label);
    candidates.push_back(std::move(c));
  }
  std::optional<WcojCore> core = DetectWcojCore(candidates);
  if (!core.has_value()) return std::nullopt;

  rel::WcojSpec spec;
  spec.vars = core->var_order;
  spec.conjuncts = core->conjuncts;
  auto var_index = [&spec](const std::string& v) -> uint32_t {
    for (size_t i = 0; i < spec.vars.size(); ++i) {
      if (spec.vars[i] == v) return static_cast<uint32_t>(i);
    }
    return UINT32_MAX;  // unreachable: group endpoints are core variables
  };
  for (size_t conjunct : core->conjuncts) {
    for (const WcojAtomRow& r : rows) {
      if (r.conjunct != conjunct) continue;
      rel::WcojSpec::AtomSpec a;
      a.from = var_index(r.from);
      a.to = var_index(r.to);
      a.label = r.label;
      spec.atoms.push_back(a);
    }
  }
  if (explain != nullptr) {
    explain->wcoj_vars = spec.vars;
    explain->wcoj_conjuncts = spec.conjuncts;
  }
  return spec;
}

// Detects a cyclic core among the wcoj-eligible atoms of a CRPQ /
// dl-CRPQ. Labels missing from the graph disqualify their atom (its
// relation is empty — the binary path disposes of the query instantly).
std::optional<rel::WcojSpec> PlanCrpqWcoj(const Crpq& q,
                                          const EdgeLabeledGraph& g,
                                          const SnapshotStats& stats,
                                          ExplainInfo* explain) {
  std::vector<WcojAtomRow> rows;
  for (size_t i = 0; i < q.atoms.size(); ++i) {
    const CrpqAtom& atom = q.atoms[i];
    if (!WcojEligibleAtom(atom)) continue;
    std::optional<LabelId> label = g.FindLabel(atom.regex->atom().labels[0]);
    if (!label.has_value()) continue;
    rows.push_back({i, atom.from.name, atom.to.name, *label});
  }
  return BuildWcojSpec(rows, stats, explain);
}

// The CoreGQL analogue of WcojEligibleAtom: an anonymous-edge two-node
// chain `(x)-[:l]->(y)` with unlabeled, distinct node variables and no
// path variable. Returns the endpoints and the label name.
bool WcojEligibleEntry(const CoreMatchBlock::PatternEntry& entry,
                       std::string* from, std::string* to,
                       std::string* label) {
  if (entry.path_var.has_value() || entry.pattern == nullptr) return false;
  std::vector<const CorePattern*> leaves;
  // Flatten the concat spine; any non-atom node disqualifies.
  std::vector<const CorePattern*> stack = {entry.pattern.get()};
  while (!stack.empty()) {
    const CorePattern* p = stack.back();
    stack.pop_back();
    switch (p->kind()) {
      case CorePattern::Kind::kConcat:
        // Push right below left so leaves pop out left-to-right.
        stack.push_back(p->right().get());
        stack.push_back(p->left().get());
        break;
      case CorePattern::Kind::kNode:
      case CorePattern::Kind::kEdge:
        leaves.push_back(p);
        break;
      default:
        return false;
    }
  }
  if (leaves.size() != 3) return false;
  const CorePattern& n1 = *leaves[0];
  const CorePattern& e = *leaves[1];
  const CorePattern& n2 = *leaves[2];
  if (n1.kind() != CorePattern::Kind::kNode ||
      e.kind() != CorePattern::Kind::kEdge ||
      n2.kind() != CorePattern::Kind::kNode) {
    return false;
  }
  if (!n1.var().has_value() || n1.label().has_value()) return false;
  if (!n2.var().has_value() || n2.label().has_value()) return false;
  if (e.var().has_value() || !e.label().has_value()) return false;
  if (*n1.var() == *n2.var()) return false;
  *from = *n1.var();
  *to = *n2.var();
  *label = *e.label();
  return true;
}

std::optional<rel::WcojSpec> PlanCoreGqlWcoj(const CoreMatchBlock& block,
                                             const EdgeLabeledGraph& g,
                                             const SnapshotStats& stats,
                                             ExplainInfo* explain) {
  std::vector<WcojAtomRow> rows;
  for (size_t i = 0; i < block.patterns.size(); ++i) {
    std::string from, to, label;
    if (!WcojEligibleEntry(block.patterns[i], &from, &to, &label)) continue;
    std::optional<LabelId> id = g.FindLabel(label);
    if (!id.has_value()) continue;
    rows.push_back({i, std::move(from), std::move(to), *id});
  }
  return BuildWcojSpec(rows, stats, explain);
}

}  // namespace

Result<PlanPtr> CompilePlan(QueryLanguage language, const std::string& text,
                            const PropertyGraph& g, uint64_t graph_epoch,
                            const PlanOptions& options,
                            const SnapshotStats* stats) {
  auto plan = std::make_shared<Plan>();
  plan->language = language;
  plan->text = text;
  plan->graph_epoch = graph_epoch;

  switch (language) {
    case QueryLanguage::kRpq: {
      Result<RegexPtr> regex = ParseRegex(text, RegexDialect::kPlain);
      if (!regex.ok()) return AsParseError(regex.error());
      Nfa nfa = Nfa::FromRegex(*regex.value(), g.skeleton());
      plan->compiled = RpqPlan{std::move(regex).value(), std::move(nfa)};
      break;
    }
    case QueryLanguage::kCrpq: {
      Result<Crpq> query = ParseCrpq(text, RegexDialect::kPlain);
      if (!query.ok()) return AsParseError(query.error());
      Result<bool> valid = query.value().Validate();
      if (!valid.ok()) return AsParseError(valid.error());
      CrpqPlan compiled;
      compiled.query = std::move(query).value();
      std::vector<Conjunct> conjuncts;
      for (const CrpqAtom& atom : compiled.query.atoms) {
        compiled.atom_nfas.push_back(Nfa::FromRegex(*atom.regex, g.skeleton()));
        Conjunct c;
        c.vars = AtomVars(atom);
        c.label = AtomLabel(atom);
        if (stats != nullptr) {
          c.est_rows = EstimateCrpqAtom(*stats, compiled.atom_nfas.back(),
                                        atom.regex->Nullable(), atom)
                           .rows;
        }
        conjuncts.push_back(std::move(c));
      }
      compiled.join_order =
          OrderConjuncts(conjuncts, stats != nullptr, &compiled.explain);
      if (stats != nullptr) {
        compiled.wcoj = PlanCrpqWcoj(compiled.query, g.skeleton(), *stats,
                                     &compiled.explain);
      }
      plan->compiled = std::move(compiled);
      break;
    }
    case QueryLanguage::kDlCrpq: {
      Result<Crpq> query = ParseCrpq(text, RegexDialect::kDl);
      if (!query.ok()) return AsParseError(query.error());
      Result<bool> valid = query.value().Validate();
      if (!valid.ok()) return AsParseError(valid.error());
      DlCrpqPlan compiled;
      compiled.query = std::move(query).value();
      std::vector<Conjunct> conjuncts;
      for (const CrpqAtom& atom : compiled.query.atoms) {
        compiled.atom_nfas.push_back(DlNfa::FromRegex(*atom.regex, g));
        Conjunct c;
        c.vars = AtomVars(atom);
        c.label = AtomLabel(atom);
        if (stats != nullptr) {
          c.est_rows = EstimateDlCrpqAtom(*stats, compiled.atom_nfas.back(),
                                          atom.regex->Nullable(), atom)
                           .rows;
        }
        conjuncts.push_back(std::move(c));
      }
      compiled.join_order =
          OrderConjuncts(conjuncts, stats != nullptr, &compiled.explain);
      if (stats != nullptr) {
        compiled.wcoj = PlanCrpqWcoj(compiled.query, g.skeleton(), *stats,
                                     &compiled.explain);
      }
      plan->compiled = std::move(compiled);
      break;
    }
    case QueryLanguage::kCoreGql: {
      Result<CoreGqlQuery> query = ParseCoreGqlQuery(text);
      if (!query.ok()) return AsParseError(query.error());
      CoreGqlPlan compiled;
      compiled.optimized = options.optimize;
      if (options.optimize) {
        compiled.query = PushDownConditions(query.value(), &compiled.pushdown);
      } else {
        compiled.query = std::move(query).value();
      }
      for (const CoreMatchBlock& block : compiled.query.blocks) {
        std::vector<Conjunct> conjuncts;
        for (const CoreMatchBlock::PatternEntry& entry : block.patterns) {
          Conjunct c;
          if (entry.path_var.has_value()) c.vars.push_back(*entry.path_var);
          std::vector<std::string> fv = entry.pattern->FreeVariables();
          c.vars.insert(c.vars.end(), fv.begin(), fv.end());
          c.label = (entry.path_var.has_value() ? *entry.path_var + " = " : "") +
                    entry.pattern->ToString();
          if (stats != nullptr) {
            c.est_rows =
                EstimateCorePattern(*stats, g.skeleton(), *entry.pattern);
          }
          conjuncts.push_back(std::move(c));
        }
        ExplainInfo explain;
        compiled.block_orders.push_back(
            OrderConjuncts(conjuncts, stats != nullptr, &explain));
        if (stats != nullptr) {
          compiled.block_wcoj.push_back(
              PlanCoreGqlWcoj(block, g.skeleton(), *stats, &explain));
        } else {
          compiled.block_wcoj.emplace_back();
        }
        compiled.block_explains.push_back(std::move(explain));
      }
      plan->compiled = std::move(compiled);
      break;
    }
    case QueryLanguage::kGqlGroup: {
      Result<CorePatternPtr> pattern = ParseCorePattern(text);
      if (!pattern.ok()) return AsParseError(pattern.error());
      plan->compiled = GqlGroupPlan{std::move(pattern).value()};
      break;
    }
    case QueryLanguage::kRegular: {
      Result<RegularQuery> query = ParseRegularQuery(text);
      if (!query.ok()) return AsParseError(query.error());
      plan->compiled = RegularPlan{std::move(query).value()};
      break;
    }
    case QueryLanguage::kPaths: {
      // dl dialect first (covers data tests), then plain — the shell's
      // historical behavior. Report the plain-dialect error on double
      // failure; it is the more common dialect.
      PathsPlan compiled;
      Result<RegexPtr> dl = ParseRegex(text, RegexDialect::kDl);
      if (dl.ok()) {
        compiled.dl_nfa = DlNfa::FromRegex(*dl.value(), g);
        compiled.regex = std::move(dl).value();
      } else {
        Result<RegexPtr> plain = ParseRegex(text, RegexDialect::kPlain);
        if (!plain.ok()) return AsParseError(plain.error());
        compiled.nfa = Nfa::FromRegex(*plain.value(), g.skeleton());
        compiled.regex = std::move(plain).value();
      }
      plan->compiled = std::move(compiled);
      break;
    }
  }

  // Record compile-time name resolution from the retained regex ASTs.
  // CoreGQL / GqlGroup / Regular plans resolve names at evaluation time and
  // keep empty deps (they survive every label-scoped mutation).
  if (const auto* rpq = std::get_if<RpqPlan>(&plan->compiled)) {
    CollectRegexDeps(*rpq->regex, &plan->deps.labels, &plan->deps.properties);
  } else if (const auto* crpq = std::get_if<CrpqPlan>(&plan->compiled)) {
    for (const CrpqAtom& atom : crpq->query.atoms) {
      CollectRegexDeps(*atom.regex, &plan->deps.labels,
                       &plan->deps.properties);
    }
  } else if (const auto* dl = std::get_if<DlCrpqPlan>(&plan->compiled)) {
    for (const CrpqAtom& atom : dl->query.atoms) {
      CollectRegexDeps(*atom.regex, &plan->deps.labels,
                       &plan->deps.properties);
    }
  } else if (const auto* paths = std::get_if<PathsPlan>(&plan->compiled)) {
    CollectRegexDeps(*paths->regex, &plan->deps.labels,
                     &plan->deps.properties);
  } else if (const auto* gql = std::get_if<CoreGqlPlan>(&plan->compiled)) {
    // CoreGQL normally resolves names at evaluation time, but a wcoj group
    // bakes resolved label ids — record those labels so a label-scoped
    // mutation invalidates the plan exactly like an automata plan.
    for (size_t b = 0; b < gql->block_wcoj.size(); ++b) {
      if (!gql->block_wcoj[b].has_value()) continue;
      const CoreMatchBlock& block = gql->query.blocks[b];
      for (size_t i : gql->block_wcoj[b]->conjuncts) {
        std::string from, to, label;
        if (WcojEligibleEntry(block.patterns[i], &from, &to, &label)) {
          plan->deps.labels.push_back(std::move(label));
        }
      }
    }
  }
  SortUnique(&plan->deps.labels);
  SortUnique(&plan->deps.properties);
  return PlanPtr(std::move(plan));
}

}  // namespace gqzoo
