#include "src/engine/language.h"

#include <algorithm>

namespace gqzoo {

const char* QueryLanguageName(QueryLanguage language) {
  switch (language) {
    case QueryLanguage::kRpq: return "rpq";
    case QueryLanguage::kCrpq: return "crpq";
    case QueryLanguage::kDlCrpq: return "dlcrpq";
    case QueryLanguage::kCoreGql: return "gql";
    case QueryLanguage::kGqlGroup: return "gqlgroup";
    case QueryLanguage::kRegular: return "regular";
    case QueryLanguage::kPaths: return "paths";
  }
  return "unknown";
}

Result<QueryLanguage> ParseQueryLanguage(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "rpq" || lower == "2rpq") return QueryLanguage::kRpq;
  if (lower == "crpq") return QueryLanguage::kCrpq;
  if (lower == "dlcrpq") return QueryLanguage::kDlCrpq;
  if (lower == "gql" || lower == "coregql") return QueryLanguage::kCoreGql;
  if (lower == "gqlgroup") return QueryLanguage::kGqlGroup;
  if (lower == "regular") return QueryLanguage::kRegular;
  if (lower == "paths") return QueryLanguage::kPaths;
  return Error(ErrorCode::kInvalidArgument,
               "unknown query language '" + name +
                   "' (expected rpq|2rpq|crpq|dlcrpq|gql|gqlgroup|regular|"
                   "paths)");
}

}  // namespace gqzoo
