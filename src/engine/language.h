#ifndef GQZOO_ENGINE_LANGUAGE_H_
#define GQZOO_ENGINE_LANGUAGE_H_

#include <string>

#include "src/util/result.h"

namespace gqzoo {

/// The query languages of the zoo that the engine dispatches over
/// (Figure 1 of the paper). 2RPQs (Remark 9) are not a separate entry:
/// the plain regex dialect already admits inverse atoms `~a`, so they ride
/// on `kRpq`.
enum class QueryLanguage : uint8_t {
  kRpq = 0,   // RPQs / 2RPQs (3.1.1, Remark 9): endpoint pairs
  kCrpq,      // CRPQs / l-CRPQs (3.1.2, 3.1.5)
  kDlCrpq,    // dl-CRPQs (3.2.2; dl-dialect regexes)
  kCoreGql,   // CoreGQL MATCH/WHERE/RETURN (Section 4)
  kGqlGroup,  // GQL group-variable pattern semantics (Examples 1-2)
  kRegular,   // regular queries / nested CRPQs (3.1.3)
  kPaths,     // mode-restricted path enumeration over one (dl-)regex
};

inline constexpr size_t kNumQueryLanguages = 7;

/// Canonical lower-case name ("rpq", "crpq", ..., "paths").
const char* QueryLanguageName(QueryLanguage language);

/// Parses a language name as used by the shell and the batch driver.
/// Accepts the canonical names plus the aliases "2rpq" (→ kRpq),
/// "gql"/"coregql" (→ kCoreGql) and "gqlgroup" (→ kGqlGroup).
Result<QueryLanguage> ParseQueryLanguage(const std::string& name);

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_LANGUAGE_H_
