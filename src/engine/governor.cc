#include "src/engine/governor.h"

namespace gqzoo {

bool ResourceGovernor::TryAdmit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.admission_capacity != 0 &&
      in_flight_ >= options_.admission_capacity) {
    ++shed_;
    return false;
  }
  ++in_flight_;
  if (in_flight_ > high_water_) high_water_ = in_flight_;
  return true;
}

void ResourceGovernor::CancelAdmission() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
}

void ResourceGovernor::BeginExecution() {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_concurrent != 0) {
    run_slot_.wait(lock, [this] { return running_ < options_.max_concurrent; });
  }
  ++running_;
}

void ResourceGovernor::EndExecution() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    --in_flight_;
  }
  run_slot_.notify_one();
}

size_t ResourceGovernor::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t ResourceGovernor::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t ResourceGovernor::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace gqzoo
