#include "src/engine/governor.h"

#include <algorithm>

namespace gqzoo {

bool ResourceGovernor::TryAdmit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.admission_capacity != 0 &&
      in_flight_ >= options_.admission_capacity) {
    ++shed_;
    return false;
  }
  ++in_flight_;
  if (in_flight_ > high_water_) high_water_ = in_flight_;
  return true;
}

void ResourceGovernor::CancelAdmission() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
}

void ResourceGovernor::BeginExecution() {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_concurrent != 0) {
    run_slot_.wait(lock, [this] { return running_ < options_.max_concurrent; });
  }
  ++running_;
}

void ResourceGovernor::EndExecution() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    --in_flight_;
  }
  run_slot_.notify_one();
}

size_t ResourceGovernor::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t ResourceGovernor::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t ResourceGovernor::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

TenantQuotas::TenantQuotas(const TenantQuotaOptions& options)
    : options_(options),
      burst_(options.burst > 0
                 ? options.burst
                 : (options.queries_per_sec > 1 ? options.queries_per_sec
                                                : 1.0)) {}

bool TenantQuotas::TryAcquire(const std::string& tenant) {
  if (!enabled()) return true;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, fresh] = buckets_.try_emplace(tenant);
  Bucket& bucket = it->second;
  if (fresh) {
    bucket.tokens = burst_;
    bucket.last_refill = now;
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    bucket.tokens =
        std::min(burst_, bucket.tokens + elapsed * options_.queries_per_sec);
    bucket.last_refill = now;
  }
  if (bucket.tokens < 1.0) {
    ++bucket.counts.shed;
    ++shed_;
    return false;
  }
  bucket.tokens -= 1.0;
  ++bucket.counts.admitted;
  return true;
}

uint64_t TenantQuotas::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

std::map<std::string, TenantQuotas::TenantCounts> TenantQuotas::Counts()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantCounts> out;
  for (const auto& [tenant, bucket] : buckets_) out[tenant] = bucket.counts;
  return out;
}

}  // namespace gqzoo
