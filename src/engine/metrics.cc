#include "src/engine/metrics.h"

#include <algorithm>
#include <cstdio>

namespace gqzoo {

namespace {

// Index of the highest set bit; 0 for 0.
size_t BucketOf(uint64_t us) {
  size_t b = 0;
  while (us > 1 && b + 1 < LatencyHistogram::kNumBuckets) {
    us >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHistogram::Record(std::chrono::microseconds latency) {
  uint64_t us = static_cast<uint64_t>(std::max<int64_t>(latency.count(), 0));
  buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < us &&
         !max_us_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::PercentileUpperBoundUs(double p) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * total);
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) return uint64_t{1} << (i + 1);
  }
  return uint64_t{1} << kNumBuckets;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

std::string MetricsRegistry::ReportText() const {
  char line[160];
  std::string out = "== engine metrics ==\n";
  auto row = [&](const char* name, uint64_t value) {
    snprintf(line, sizeof(line), "%-24s %10llu\n", name,
             static_cast<unsigned long long>(value));
    out += line;
  };
  row("queries_total", queries_total.value());
  row("queries_ok", queries_ok.value());
  row("queries_error", queries_error.value());
  row("parse_errors", parse_errors.value());
  row("deadline_exceeded", deadline_exceeded.value());
  row("cancelled", cancelled.value());
  row("resource_exhausted", resource_exhausted.value());
  row("overloaded_shed", overloaded_shed.value());
  row("cache_hits", cache_hits.value());
  row("cache_misses", cache_misses.value());
  row("truncated_results", truncated_results.value());
  row("graph_epoch_bumps", graph_epoch_bumps.value());
  row("write_batches", write_batches.value());
  row("write_ops", write_ops.value());
  row("write_sheds", write_sheds.value());
  row("compactions_run", compactions_run.value());
  row("merged_view_builds", merged_view_builds.value());
  row("plan_invalidations_scoped", plan_invalidations_scoped.value());
  row("plans_invalidated", plans_invalidated.value());
  row("plan_invalidations_full", plan_invalidations_full.value());
  row("plans_evicted_dead_epoch", plans_evicted_dead_epoch.value());
  row("wcoj_plans", wcoj_plans.value());
  row("batch_rows", batch_rows.value());
  row("queue_depth_high_water", queue_depth_high_water.value());
  row("peak_query_bytes", peak_query_bytes.value());
  row("delta_pending_ops", delta_pending_ops.value());
  if (server_sessions_total.value() > 0) {
    row("server_sessions_total", server_sessions_total.value());
    row("server_connections", server_connections.value());
    row("server_connections_hw", server_connections_high_water.value());
    row("server_queries", server_queries.value());
    row("server_mutations", server_mutations.value());
    row("server_stream_chunks", server_stream_chunks.value());
    row("server_stream_bytes", server_stream_bytes.value());
    row("tenant_quota_shed", tenant_quota_shed.value());
    row("server_drain_shed", server_drain_shed.value());
  }
  auto per_language = [&](const char* prefix,
                          const std::array<Counter, kNumQueryLanguages>& a) {
    for (size_t i = 0; i < kNumQueryLanguages; ++i) {
      uint64_t n = a[i].value();
      if (n == 0) continue;
      std::string name = std::string(prefix) + "[" +
                         QueryLanguageName(static_cast<QueryLanguage>(i)) +
                         "]";
      row(name.c_str(), n);
    }
  };
  per_language("queries", queries_by_language);
  per_language("shed", shed_by_language);
  per_language("exhausted", exhausted_by_language);
  per_language("cancelled", cancelled_by_language);
  per_language("wcoj", wcoj_by_language);
  uint64_t n = latency.count();
  if (n > 0) {
    snprintf(line, sizeof(line),
             "latency_us     mean %llu  p50 <%llu  p95 <%llu  p99 <%llu  "
             "max %llu  (n=%llu)\n",
             static_cast<unsigned long long>(latency.sum_us() / n),
             static_cast<unsigned long long>(
                 latency.PercentileUpperBoundUs(50)),
             static_cast<unsigned long long>(
                 latency.PercentileUpperBoundUs(95)),
             static_cast<unsigned long long>(
                 latency.PercentileUpperBoundUs(99)),
             static_cast<unsigned long long>(latency.max_us()),
             static_cast<unsigned long long>(n));
    out += line;
  }
  return out;
}

void MetricsRegistry::Reset() {
  queries_total.Reset();
  queries_ok.Reset();
  queries_error.Reset();
  parse_errors.Reset();
  deadline_exceeded.Reset();
  cancelled.Reset();
  resource_exhausted.Reset();
  overloaded_shed.Reset();
  cache_hits.Reset();
  cache_misses.Reset();
  truncated_results.Reset();
  graph_epoch_bumps.Reset();
  write_batches.Reset();
  write_ops.Reset();
  write_sheds.Reset();
  compactions_run.Reset();
  merged_view_builds.Reset();
  plan_invalidations_scoped.Reset();
  plans_invalidated.Reset();
  plan_invalidations_full.Reset();
  plans_evicted_dead_epoch.Reset();
  queue_depth_high_water.Reset();
  peak_query_bytes.Reset();
  delta_pending_ops.Reset();
  server_sessions_total.Reset();
  server_queries.Reset();
  server_mutations.Reset();
  server_stream_chunks.Reset();
  server_stream_bytes.Reset();
  tenant_quota_shed.Reset();
  server_drain_shed.Reset();
  server_connections.Reset();
  server_connections_high_water.Reset();
  for (auto& c : queries_by_language) c.Reset();
  for (auto& c : shed_by_language) c.Reset();
  for (auto& c : exhausted_by_language) c.Reset();
  for (auto& c : cancelled_by_language) c.Reset();
  wcoj_plans.Reset();
  batch_rows.Reset();
  for (auto& c : wcoj_by_language) c.Reset();
  latency.Reset();
}

}  // namespace gqzoo
