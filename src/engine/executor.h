#ifndef GQZOO_ENGINE_EXECUTOR_H_
#define GQZOO_ENGINE_EXECUTOR_H_

// The thread pool moved to src/util so evaluator layers (parallel RPQ
// sharding) can use it without depending on the engine; this forwarding
// header keeps existing includes working.
#include "src/util/thread_pool.h"

#endif  // GQZOO_ENGINE_EXECUTOR_H_
