#ifndef GQZOO_ENGINE_PLAN_CACHE_H_
#define GQZOO_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/engine/plan.h"

namespace gqzoo {

/// Cache key: (language, query text, plan options, graph epoch). A graph
/// mutation bumps the engine's epoch, so plans compiled against an older
/// graph can never be returned again — stale entries simply age out of the
/// LRU lists.
///
/// Options are keyed *structurally* — as their own fields — rather than
/// serialized into the text. An earlier scheme appended a "\x01opt" marker
/// to the text for optimized compiles, which collided: the unoptimized
/// query whose literal text is `X + "\x01opt"` shared a cache entry with
/// the optimized compile of `X`. Structural fields cannot collide with any
/// query text.
struct PlanCacheKey {
  QueryLanguage language;
  std::string text;  // query text, verbatim
  uint64_t graph_epoch;
  bool optimize = false;  // PlanOptions::optimize

  static PlanCacheKey For(QueryLanguage language, std::string text,
                          uint64_t graph_epoch, const PlanOptions& options) {
    return PlanCacheKey{language, std::move(text), graph_epoch,
                        options.optimize};
  }

  bool operator==(const PlanCacheKey& o) const {
    return language == o.language && graph_epoch == o.graph_epoch &&
           optimize == o.optimize && text == o.text;
  }

  size_t Hash() const {
    size_t h = std::hash<std::string>()(text);
    h = HashCombine(h, static_cast<size_t>(language));
    h = HashCombine(h, static_cast<size_t>(graph_epoch));
    return HashCombine(h, static_cast<size_t>(optimize));
  }
};

/// A sharded LRU cache of compiled plans, safe for concurrent use: the key
/// hash picks a shard, each shard has its own mutex, LRU list, and map, so
/// threads executing different queries rarely contend.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// `capacity_per_shard` * `num_shards` is the total plan capacity.
  /// `num_shards` is rounded up to a power of two.
  explicit PlanCache(size_t capacity_per_shard = 64, size_t num_shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan and refreshes its LRU position, or nullptr on
  /// miss. Counts a hit/miss either way.
  PlanPtr Get(const PlanCacheKey& key);

  /// Inserts (or replaces) a plan, evicting the least-recently-used entry
  /// of the shard when it is full.
  void Put(const PlanCacheKey& key, PlanPtr plan);

  /// Drops every entry (used by benchmarks to measure cold-cache cost).
  void Clear();

  /// Label-scoped invalidation for the mutation path: drops exactly the
  /// entries whose `Plan::deps` name a touched label or property. Plans
  /// with empty deps (eval-time name resolution, pure-wildcard regexes)
  /// survive. Returns the number of entries dropped.
  size_t InvalidateDeps(const std::vector<std::string>& labels,
                        const std::vector<std::string>& properties);

  /// Eager eviction on base publish: drops every entry whose key was minted
  /// under an epoch other than `current_epoch`. Such entries can never be
  /// returned again (the epoch is part of the key) — evicting them on
  /// `SetGraph` frees their memory now instead of waiting for LRU aging.
  /// Returns the number of entries dropped.
  size_t EvictOtherEpochs(uint64_t current_epoch);

  /// Aggregated over all shards.
  Stats GetStats() const;

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_per_shard_; }

 private:
  struct Entry {
    PlanCacheKey key;
    PlanPtr plan;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    struct KeyHash {
      size_t operator()(const PlanCacheKey& k) const { return k.Hash(); }
    };
    std::unordered_map<PlanCacheKey, std::list<Entry>::iterator, KeyHash> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const PlanCacheKey& key) {
    return shards_[key.Hash() & (shards_.size() - 1)];
  }

  size_t capacity_per_shard_;
  std::vector<Shard> shards_;  // size is a power of two
};

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_PLAN_CACHE_H_
