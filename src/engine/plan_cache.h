#ifndef GQZOO_ENGINE_PLAN_CACHE_H_
#define GQZOO_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/engine/plan.h"

namespace gqzoo {

/// Cache key: (language, query text + option fingerprint, graph epoch).
/// A graph mutation bumps the engine's epoch, so plans compiled against an
/// older graph can never be returned again — stale entries simply age out
/// of the LRU lists.
struct PlanCacheKey {
  QueryLanguage language;
  std::string text;  // query text, plus option fingerprint when non-default
  uint64_t graph_epoch;

  bool operator==(const PlanCacheKey& o) const {
    return language == o.language && graph_epoch == o.graph_epoch &&
           text == o.text;
  }

  size_t Hash() const {
    size_t h = std::hash<std::string>()(text);
    h = HashCombine(h, static_cast<size_t>(language));
    return HashCombine(h, static_cast<size_t>(graph_epoch));
  }

  /// Folds plan options into the key text so that, e.g., an optimized and
  /// an unoptimized compile of the same CoreGQL query occupy distinct
  /// entries. The marker uses '\x01', which cannot occur in query text.
  static std::string WithOptions(const std::string& text,
                                 const PlanOptions& options) {
    return options.optimize ? text + "\x01opt" : text;
  }
};

/// A sharded LRU cache of compiled plans, safe for concurrent use: the key
/// hash picks a shard, each shard has its own mutex, LRU list, and map, so
/// threads executing different queries rarely contend.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// `capacity_per_shard` * `num_shards` is the total plan capacity.
  /// `num_shards` is rounded up to a power of two.
  explicit PlanCache(size_t capacity_per_shard = 64, size_t num_shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan and refreshes its LRU position, or nullptr on
  /// miss. Counts a hit/miss either way.
  PlanPtr Get(const PlanCacheKey& key);

  /// Inserts (or replaces) a plan, evicting the least-recently-used entry
  /// of the shard when it is full.
  void Put(const PlanCacheKey& key, PlanPtr plan);

  /// Drops every entry (used by benchmarks to measure cold-cache cost).
  void Clear();

  /// Aggregated over all shards.
  Stats GetStats() const;

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_per_shard_; }

 private:
  struct Entry {
    PlanCacheKey key;
    PlanPtr plan;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    struct KeyHash {
      size_t operator()(const PlanCacheKey& k) const { return k.Hash(); }
    };
    std::unordered_map<PlanCacheKey, std::list<Entry>::iterator, KeyHash> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const PlanCacheKey& key) {
    return shards_[key.Hash() & (shards_.size() - 1)];
  }

  size_t capacity_per_shard_;
  std::vector<Shard> shards_;  // size is a power of two
};

}  // namespace gqzoo

#endif  // GQZOO_ENGINE_PLAN_CACHE_H_
