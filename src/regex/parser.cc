#include "src/regex/parser.h"

#include <cstdlib>

namespace gqzoo {

namespace {

bool IsCompareOpToken(const Token& t, CompareOp* op) {
  if (t.kind != Token::Kind::kPunct) return false;
  if (t.text == "=") {
    *op = CompareOp::kEq;
  } else if (t.text == "!=") {
    *op = CompareOp::kNe;
  } else if (t.text == "<") {
    *op = CompareOp::kLt;
  } else if (t.text == ">") {
    *op = CompareOp::kGt;
  } else if (t.text == "<=") {
    *op = CompareOp::kLe;
  } else if (t.text == ">=") {
    *op = CompareOp::kGe;
  } else {
    return false;
  }
  return true;
}

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, size_t pos, RegexDialect dialect)
      : tokens_(tokens), pos_(pos), dialect_(dialect) {}

  Result<RegexPtr> ParseUnion() {
    Result<RegexPtr> lhs = ParseConcat();
    if (!lhs.ok()) return lhs;
    RegexPtr result = std::move(lhs).value();
    while (Cur().IsPunct("|")) {
      ++pos_;
      Result<RegexPtr> rhs = ParseConcat();
      if (!rhs.ok()) return rhs;
      result = Regex::Union(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  size_t pos() const { return pos_; }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t k = 1) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Error Err(const std::string& message) {
    return Error("regex parse error at offset " + std::to_string(Cur().offset) +
                 " ('" + Cur().text + "'): " + message);
  }

  Result<RegexPtr> ParseConcat() {
    Result<RegexPtr> first = ParseFactor();
    if (!first.ok()) return first;
    RegexPtr result = std::move(first).value();
    while (StartsFactor()) {
      Result<RegexPtr> next = ParseFactor();
      if (!next.ok()) return next;
      result = Regex::Concat(std::move(result), std::move(next).value());
    }
    return result;
  }

  bool StartsFactor() const {
    const Token& t = Cur();
    if (t.kind == Token::Kind::kIdent) return dialect_ == RegexDialect::kPlain;
    if (t.IsPunct("(")) return true;
    if (t.IsPunct("[")) return dialect_ == RegexDialect::kDl;
    if (t.IsPunct("_") || t.IsPunct("!") || t.IsPunct("~")) {
      return dialect_ == RegexDialect::kPlain;
    }
    return false;
  }

  Result<RegexPtr> ParseFactor() {
    Result<RegexPtr> base = ParseBase();
    if (!base.ok()) return base;
    RegexPtr result = std::move(base).value();
    for (;;) {
      if (Cur().IsPunct("*")) {
        ++pos_;
        result = Regex::Star(std::move(result));
      } else if (Cur().IsPunct("+")) {
        ++pos_;
        result = Regex::Plus(std::move(result));
      } else if (Cur().IsPunct("?")) {
        ++pos_;
        result = Regex::Optional(std::move(result));
      } else if (Cur().IsPunct("{")) {
        Result<RegexPtr> repeated = ParseRepeatSuffix(std::move(result));
        if (!repeated.ok()) return repeated;
        result = std::move(repeated).value();
      } else {
        break;
      }
    }
    return result;
  }

  // Parses "{n}", "{n,}", or "{n,m}" and applies it to `inner`.
  Result<RegexPtr> ParseRepeatSuffix(RegexPtr inner) {
    ++pos_;  // '{'
    if (Cur().kind != Token::Kind::kNumber) return Err("expected number in {}");
    size_t lo = std::strtoull(Cur().text.c_str(), nullptr, 10);
    ++pos_;
    size_t hi = lo;
    if (Cur().IsPunct(",")) {
      ++pos_;
      if (Cur().kind == Token::Kind::kNumber) {
        hi = std::strtoull(Cur().text.c_str(), nullptr, 10);
        ++pos_;
      } else {
        hi = Regex::kUnbounded;
      }
    }
    if (!Cur().IsPunct("}")) return Err("expected '}'");
    ++pos_;
    if (hi != Regex::kUnbounded && hi < lo) return Err("bad repetition bounds");
    return Regex::Repeat(std::move(inner), lo, hi);
  }

  Result<RegexPtr> ParseBase() {
    return dialect_ == RegexDialect::kPlain ? ParsePlainBase() : ParseDlBase();
  }

  // ---- Plain dialect (RPQs, l-RPQs) ----

  Result<RegexPtr> ParsePlainBase() {
    const Token& t = Cur();
    if (t.IsPunct("~")) {
      // Two-way navigation (Remark 9): ~a traverses an a-edge backwards.
      ++pos_;
      Result<RegexPtr> base = ParsePlainBase();
      if (!base.ok()) return base;
      const Regex& r = *base.value();
      if (r.op() != Regex::Op::kAtom) {
        return Err("'~' applies to a single atom");
      }
      return Regex::MakeAtom(r.atom().Inverted());
    }
    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "eps") {
        ++pos_;
        return Regex::Epsilon();
      }
      std::string label = t.text;
      ++pos_;
      Atom atom = Atom::Label(label);
      return FinishCapture(std::move(atom));
    }
    if (t.IsPunct("_")) {
      ++pos_;
      return FinishCapture(Atom::Any());
    }
    if (t.IsPunct("!")) {
      ++pos_;
      Result<std::vector<std::string>> labels = ParseLabelSet();
      if (!labels.ok()) return labels.error();
      return FinishCapture(Atom::NegSet(std::move(labels).value()));
    }
    if (t.IsPunct("(")) {
      ++pos_;
      if (Cur().IsPunct(")")) {  // "()" is ε in the plain dialect
        ++pos_;
        return Regex::Epsilon();
      }
      Result<RegexPtr> inner = ParseUnion();
      if (!inner.ok()) return inner;
      if (!Cur().IsPunct(")")) return Err("expected ')'");
      ++pos_;
      return inner;
    }
    return Err("expected label, wildcard, '!', '(', or 'eps'");
  }

  Result<RegexPtr> FinishCapture(Atom atom) {
    if (Cur().IsPunct("^")) {
      ++pos_;
      if (Cur().kind != Token::Kind::kIdent) {
        return Err("expected capture variable after '^'");
      }
      atom.capture = Cur().text;
      ++pos_;
    }
    return Regex::MakeAtom(std::move(atom));
  }

  Result<std::vector<std::string>> ParseLabelSet() {
    if (!Cur().IsPunct("{")) return Error("expected '{' after '!'");
    ++pos_;
    std::vector<std::string> labels;
    bool first = true;
    while (!Cur().IsPunct("}")) {
      if (!first) {
        if (!Cur().IsPunct(",")) return Error("expected ',' in label set");
        ++pos_;
      }
      first = false;
      if (Cur().kind != Token::Kind::kIdent) {
        return Error("expected label in label set");
      }
      labels.push_back(Cur().text);
      ++pos_;
    }
    ++pos_;  // '}'
    if (labels.empty()) return Error("empty label set in '!{}'");
    return labels;
  }

  // ---- dl dialect (dl-RPQs) ----

  Result<RegexPtr> ParseDlBase() {
    const Token& t = Cur();
    if (t.IsIdent("eps")) {
      ++pos_;
      return Regex::Epsilon();
    }
    if (t.IsPunct("[")) {
      ++pos_;
      Result<Atom> atom = ParseAtomBody();
      if (!atom.ok()) return atom.error();
      if (!Cur().IsPunct("]")) return Err("expected ']'");
      ++pos_;
      return Regex::MakeAtom(atom.value().WithTarget(Atom::Target::kEdge));
    }
    if (t.IsPunct("(")) {
      // Either a node atom `(...)` or a grouped subexpression `( R )`.
      const Token& next = Peek(0 + 1);
      if (next.IsPunct("(") || next.IsPunct("[") || next.IsIdent("eps")) {
        ++pos_;  // group
        Result<RegexPtr> inner = ParseUnion();
        if (!inner.ok()) return inner;
        if (!Cur().IsPunct(")")) return Err("expected ')'");
        ++pos_;
        return inner;
      }
      ++pos_;  // node atom
      if (Cur().IsPunct(")")) {  // "()": anonymous node, any label
        ++pos_;
        return Regex::MakeAtom(Atom::Any().WithTarget(Atom::Target::kNode));
      }
      Result<Atom> atom = ParseAtomBody();
      if (!atom.ok()) return atom.error();
      if (!Cur().IsPunct(")")) return Err("expected ')'");
      ++pos_;
      return Regex::MakeAtom(atom.value().WithTarget(Atom::Target::kNode));
    }
    return Err("expected '(', '[', or 'eps'");
  }

  // Body of a dl atom: label [^var] | `_` [^var] | !{...} [^var] | etest.
  Result<Atom> ParseAtomBody() {
    const Token& t = Cur();
    if (t.IsPunct("_")) {
      ++pos_;
      return CaptureSuffix(Atom::Any());
    }
    if (t.IsPunct("!")) {
      ++pos_;
      Result<std::vector<std::string>> labels = ParseLabelSet();
      if (!labels.ok()) return labels.error();
      return CaptureSuffix(Atom::NegSet(std::move(labels).value()));
    }
    if (t.kind != Token::Kind::kIdent) {
      return Err("expected label, test, '_' or '!' in atom");
    }
    std::string ident = t.text;
    const Token& next = Peek();
    CompareOp op;
    if (next.IsPunct(":=")) {
      // x := pname
      pos_ += 2;
      if (Cur().kind != Token::Kind::kIdent) {
        return Err("expected property name after ':='");
      }
      ElementTest test;
      test.kind = ElementTest::Kind::kAssign;
      test.data_var = ident;
      test.property = Cur().text;
      ++pos_;
      return Atom::Test(std::move(test));
    }
    if (IsCompareOpToken(next, &op)) {
      // pname op c   |   pname op x
      pos_ += 2;
      ElementTest test;
      test.property = ident;
      test.op = op;
      Result<bool> rhs = ParseTestRhs(&test);
      if (!rhs.ok()) return rhs.error();
      return Atom::Test(std::move(test));
    }
    // Plain label atom.
    ++pos_;
    return CaptureSuffix(Atom::Label(ident));
  }

  Result<Atom> CaptureSuffix(Atom atom) {
    if (Cur().IsPunct("^")) {
      ++pos_;
      if (Cur().kind != Token::Kind::kIdent) {
        return Err("expected capture variable after '^'");
      }
      atom.capture = Cur().text;
      ++pos_;
    }
    return atom;
  }

  // Parses the right-hand side of `pname op ...` into `test`.
  Result<bool> ParseTestRhs(ElementTest* test) {
    const Token& t = Cur();
    if (t.kind == Token::Kind::kNumber || t.IsPunct("-")) {
      bool negative = t.IsPunct("-");
      if (negative) ++pos_;
      if (Cur().kind != Token::Kind::kNumber) return Err("expected number");
      const std::string& text = Cur().text;
      test->kind = ElementTest::Kind::kCompareConst;
      if (text.find('.') != std::string::npos ||
          text.find('e') != std::string::npos ||
          text.find('E') != std::string::npos) {
        double v = std::strtod(text.c_str(), nullptr);
        test->constant = Value(negative ? -v : v);
      } else {
        int64_t v = std::strtoll(text.c_str(), nullptr, 10);
        test->constant = Value(negative ? -v : v);
      }
      ++pos_;
      return true;
    }
    if (t.kind == Token::Kind::kString) {
      test->kind = ElementTest::Kind::kCompareConst;
      test->constant = Value(t.text);
      ++pos_;
      return true;
    }
    if (t.IsIdent("true") || t.IsIdent("false")) {
      test->kind = ElementTest::Kind::kCompareConst;
      test->constant = Value(t.text == "true");
      ++pos_;
      return true;
    }
    if (t.kind == Token::Kind::kIdent) {
      test->kind = ElementTest::Kind::kCompareVar;
      test->data_var = t.text;
      ++pos_;
      return true;
    }
    return Err("expected constant or data variable");
  }

  const std::vector<Token>& tokens_;
  size_t pos_;
  RegexDialect dialect_;
};

bool CheckAtoms(const Regex& r, bool allow_captures, bool allow_tests,
                bool allow_nodes) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return true;
    case Regex::Op::kAtom: {
      const Atom& a = r.atom();
      if (!allow_captures && a.capture.has_value()) return false;
      if (!allow_tests && a.is_test()) return false;
      if (!allow_nodes && a.target == Atom::Target::kNode) return false;
      return true;
    }
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      return CheckAtoms(*r.left(), allow_captures, allow_tests, allow_nodes) &&
             CheckAtoms(*r.right(), allow_captures, allow_tests, allow_nodes);
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      return CheckAtoms(*r.child(), allow_captures, allow_tests, allow_nodes);
  }
  return false;
}

}  // namespace

Result<RegexPtr> ParseRegex(const std::string& text, RegexDialect dialect) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.error();
  size_t pos = 0;
  Result<RegexPtr> r = ParseRegexTokens(tokens.value(), &pos, dialect);
  if (!r.ok()) return r;
  if (tokens.value()[pos].kind != Token::Kind::kEnd) {
    return Error("regex parse error: trailing input at offset " +
                 std::to_string(tokens.value()[pos].offset) + " ('" +
                 tokens.value()[pos].text + "')");
  }
  return r;
}

Result<RegexPtr> ParseRegexTokens(const std::vector<Token>& tokens,
                                  size_t* pos, RegexDialect dialect) {
  Parser parser(tokens, *pos, dialect);
  Result<RegexPtr> result = parser.ParseUnion();
  if (result.ok()) *pos = parser.pos();
  return result;
}

bool IsPlainRpq(const Regex& r) {
  return CheckAtoms(r, /*allow_captures=*/false, /*allow_tests=*/false,
                    /*allow_nodes=*/false);
}

bool IsListRpq(const Regex& r) {
  return CheckAtoms(r, /*allow_captures=*/true, /*allow_tests=*/false,
                    /*allow_nodes=*/false);
}

bool HasInverseAtoms(const Regex& r) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return false;
    case Regex::Op::kAtom:
      return r.atom().inverse;
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      return HasInverseAtoms(*r.left()) || HasInverseAtoms(*r.right());
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      return HasInverseAtoms(*r.child());
  }
  return false;
}

}  // namespace gqzoo
