#ifndef GQZOO_REGEX_REWRITE_H_
#define GQZOO_REGEX_REWRITE_H_

#include "src/regex/ast.h"

namespace gqzoo {

/// Algebraic regex simplification — the optimization side of the paper's
/// automata-compatibility argument (Section 6.1: "(((a*)*)*)* can be
/// equivalently rewritten to a*"; Section 6.2: automata "unlock a host of
/// query optimization methods").
///
/// Applies a fixpoint of language-preserving rules bottom-up:
///   (R*)*      → R*            R**-collapse (also R+, R? combinations)
///   (R?)*      → R*,  (R*)? → R*,  (R+)* → R*,  (R*)+ → R*, (R?)+ → R*
///   (R?)?      → R?,  (R+)+ → R+
///   ε·R, R·ε   → R
///   R | R      → R             (syntactic equality)
///   ε | R      → R?  when R is not nullable, R when it is
///   ε*         → ε,  ε+ → ε,  ε? → ε
///
/// Capture variables block rules that would change binding behavior: a
/// starred subexpression with captures is only collapsed when the rule
/// preserves the set of (path, µ) results (e.g. (R*)* → R* is safe — both
/// sides concatenate any number of R-matches — while ε|R → R? is always
/// safe because neither adds captures).
///
/// The rewriter never grows the expression and terminates in O(size²).
RegexPtr SimplifyRegex(const RegexPtr& regex);

/// Structural equality of regex ASTs (used by the R|R → R rule and tests).
bool RegexEquals(const Regex& a, const Regex& b);

/// Number of AST nodes (for measuring shrinkage).
size_t RegexSize(const Regex& r);

}  // namespace gqzoo

#endif  // GQZOO_REGEX_REWRITE_H_
