#ifndef GQZOO_REGEX_LEXER_H_
#define GQZOO_REGEX_LEXER_H_

#include <string>
#include <vector>

#include "src/util/result.h"

namespace gqzoo {

/// A token of the query surface syntax. One lexer serves all the textual
/// languages in the library (regexes, CRPQ rules, CoreGQL queries); the
/// parsers interpret identifier keywords contextually.
struct Token {
  enum class Kind {
    kIdent,   // identifiers, keywords
    kNumber,  // integer or floating literal (text preserved)
    kString,  // double- or single-quoted
    kPunct,   // operators and brackets; see Lex() for the full set
    kEnd,     // end of input (always the last token)
  };

  Kind kind;
  std::string text;
  size_t offset;  // byte offset in the input, for error messages

  bool IsPunct(const char* p) const {
    return kind == Kind::kPunct && text == p;
  }
  bool IsIdent(const char* name) const {
    return kind == Kind::kIdent && text == name;
  }
};

/// Tokenizes `input`. Multi-character operators: `->`, `:=`, `<=`, `>=`,
/// `!=`, `:-`. Single-character: `( ) [ ] { } , | * + ? ^ ! _ = < > . - : @ ;`.
/// `#` starts a line comment. The returned vector always ends with a kEnd
/// token.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace gqzoo

#endif  // GQZOO_REGEX_LEXER_H_
