#ifndef GQZOO_REGEX_PRINTER_H_
#define GQZOO_REGEX_PRINTER_H_

#include <string>

#include "src/regex/ast.h"
#include "src/regex/parser.h"

namespace gqzoo {

/// Renders `r` in the given dialect's concrete syntax; the output re-parses
/// to an equal AST (round-trip property, tested).
std::string RegexToString(const Regex& r, RegexDialect dialect);

}  // namespace gqzoo

#endif  // GQZOO_REGEX_PRINTER_H_
