#ifndef GQZOO_REGEX_PARSER_H_
#define GQZOO_REGEX_PARSER_H_

#include <string>
#include <vector>

#include "src/regex/ast.h"
#include "src/regex/lexer.h"
#include "src/util/result.h"

namespace gqzoo {

/// Which surface syntax to parse.
enum class RegexDialect {
  /// RPQs and l-RPQs (Sections 3.1.1, 3.1.4): bare labels are edge atoms.
  ///
  ///     Transfer (Transfer^z)* (a|b)+ !{a,b} _ eps () a{2,5}
  kPlain,
  /// dl-RPQs (Section 3.2.1): every atom is bracketed; `( )` matches nodes,
  /// `[ ]` matches edges; atoms are labels, captures, or element tests.
  ///
  ///     (a^z)(x := date)([_](a^z)(date > x)(x := date))*
  kDl,
};

/// Parses a complete regex; fails if trailing tokens remain.
Result<RegexPtr> ParseRegex(const std::string& text, RegexDialect dialect);

/// Parses a regex from `tokens` starting at `*pos`, advancing `*pos` past
/// the parsed expression (greedy: stops at the first token that cannot
/// extend the expression). Embedders (the CRPQ parser) use this form.
Result<RegexPtr> ParseRegexTokens(const std::vector<Token>& tokens,
                                  size_t* pos, RegexDialect dialect);

/// True iff `r` uses no captures, no tests, and only edge atoms — i.e. it
/// is a plain RPQ in the sense of Section 3.1.1.
bool IsPlainRpq(const Regex& r);

/// True iff `r` uses no tests and only edge atoms — an l-RPQ (3.1.4).
bool IsListRpq(const Regex& r);

/// True iff `r` contains an inverse atom `~a` (a 2RPQ, Remark 9).
bool HasInverseAtoms(const Regex& r);

}  // namespace gqzoo

#endif  // GQZOO_REGEX_PARSER_H_
