#include "src/regex/ast.h"

#include <algorithm>

namespace gqzoo {

std::string ElementTest::ToString() const {
  switch (kind) {
    case Kind::kAssign:
      return data_var + " := " + property;
    case Kind::kCompareConst:
      return property + " " + CompareOpName(op) + " " + constant.ToString();
    case Kind::kCompareVar:
      return property + " " + CompareOpName(op) + " " + data_var;
  }
  return "?";
}

std::string Atom::ToString() const {
  std::string inner;
  switch (label_kind) {
    case LabelKind::kOne:
      inner = labels[0];
      break;
    case LabelKind::kNegSet: {
      inner = "!{";
      for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) inner += ",";
        inner += labels[i];
      }
      inner += "}";
      break;
    }
    case LabelKind::kAny:
      inner = "_";
      break;
    case LabelKind::kTest:
      inner = test->ToString();
      break;
  }
  if (capture.has_value()) inner += "^" + *capture;
  if (inverse) inner = "~" + inner;
  return inner;
}

namespace {

RegexPtr MakeNode(Regex::Op op, Atom atom, std::vector<RegexPtr> children) {
  struct Access : Regex {
    Access(Op op, Atom atom, std::vector<RegexPtr> children)
        : Regex(op, std::move(atom), std::move(children)) {}
  };
  return std::make_shared<Access>(op, std::move(atom), std::move(children));
}

}  // namespace

RegexPtr Regex::Epsilon() { return MakeNode(Op::kEpsilon, {}, {}); }

RegexPtr Regex::MakeAtom(Atom atom) {
  return MakeNode(Op::kAtom, std::move(atom), {});
}

RegexPtr Regex::Concat(RegexPtr lhs, RegexPtr rhs) {
  return MakeNode(Op::kConcat, {}, {std::move(lhs), std::move(rhs)});
}

RegexPtr Regex::Union(RegexPtr lhs, RegexPtr rhs) {
  return MakeNode(Op::kUnion, {}, {std::move(lhs), std::move(rhs)});
}

RegexPtr Regex::Star(RegexPtr inner) {
  return MakeNode(Op::kStar, {}, {std::move(inner)});
}

RegexPtr Regex::Plus(RegexPtr inner) {
  return MakeNode(Op::kPlus, {}, {std::move(inner)});
}

RegexPtr Regex::Optional(RegexPtr inner) {
  return MakeNode(Op::kOptional, {}, {std::move(inner)});
}

RegexPtr Regex::Repeat(RegexPtr inner, size_t lo, size_t hi) {
  // R{0,0} = ε; R{n,∞} = R^n · R*; R{n,m} = R^n · (R?)^(m-n).
  if (hi == 0) return Epsilon();
  RegexPtr result;
  for (size_t i = 0; i < lo; ++i) {
    result = result ? Concat(result, inner) : inner;
  }
  if (hi == kUnbounded) {
    RegexPtr tail = Star(inner);
    return result ? Concat(std::move(result), std::move(tail))
                  : std::move(tail);
  }
  for (size_t i = lo; i < hi; ++i) {
    RegexPtr opt = Optional(inner);
    result = result ? Concat(result, std::move(opt)) : std::move(opt);
  }
  return result ? result : Epsilon();
}

namespace {

void CollectCaptures(const Regex& r, std::vector<std::string>* out) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return;
    case Regex::Op::kAtom:
      if (r.atom().capture.has_value() &&
          std::find(out->begin(), out->end(), *r.atom().capture) ==
              out->end()) {
        out->push_back(*r.atom().capture);
      }
      return;
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      CollectCaptures(*r.left(), out);
      CollectCaptures(*r.right(), out);
      return;
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      CollectCaptures(*r.child(), out);
      return;
  }
}

void CollectDataVars(const Regex& r, std::vector<std::string>* out) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return;
    case Regex::Op::kAtom: {
      const Atom& a = r.atom();
      if (a.is_test() && !a.test->data_var.empty() &&
          std::find(out->begin(), out->end(), a.test->data_var) ==
              out->end()) {
        out->push_back(a.test->data_var);
      }
      return;
    }
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      CollectDataVars(*r.left(), out);
      CollectDataVars(*r.right(), out);
      return;
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      CollectDataVars(*r.child(), out);
      return;
  }
}

}  // namespace

std::vector<std::string> Regex::CaptureVariables() const {
  std::vector<std::string> out;
  CollectCaptures(*this, &out);
  return out;
}

std::vector<std::string> Regex::DataVariables() const {
  std::vector<std::string> out;
  CollectDataVars(*this, &out);
  return out;
}

bool Regex::Nullable() const {
  switch (op_) {
    case Op::kEpsilon:
    case Op::kStar:
    case Op::kOptional:
      return true;
    case Op::kAtom:
      return false;
    case Op::kConcat:
      return left()->Nullable() && right()->Nullable();
    case Op::kUnion:
      return left()->Nullable() || right()->Nullable();
    case Op::kPlus:
      return child()->Nullable();
  }
  return false;
}

size_t Regex::NumPositions() const {
  switch (op_) {
    case Op::kEpsilon:
      return 0;
    case Op::kAtom:
      return 1;
    case Op::kConcat:
    case Op::kUnion:
      return left()->NumPositions() + right()->NumPositions();
    case Op::kStar:
    case Op::kPlus:
    case Op::kOptional:
      return child()->NumPositions();
  }
  return 0;
}

}  // namespace gqzoo
