#include "src/regex/lexer.h"

#include <cctype>

namespace gqzoo {

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t pos = 0;
  const size_t n = input.size();
  while (pos < n) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '#') {
      while (pos < n && input[pos] != '\n') ++pos;
      continue;
    }
    size_t start = pos;
    if (std::isalpha(static_cast<unsigned char>(c))) {
      while (pos < n && (std::isalnum(static_cast<unsigned char>(input[pos])) ||
                         input[pos] == '_')) {
        ++pos;
      }
      tokens.push_back(
          {Token::Kind::kIdent, input.substr(start, pos - start), start});
      continue;
    }
    if (c == '_') {
      // A bare `_` is the wildcard punct; `_foo` is an identifier.
      if (pos + 1 < n && (std::isalnum(static_cast<unsigned char>(
                              input[pos + 1])) ||
                          input[pos + 1] == '_')) {
        while (pos < n &&
               (std::isalnum(static_cast<unsigned char>(input[pos])) ||
                input[pos] == '_')) {
          ++pos;
        }
        tokens.push_back(
            {Token::Kind::kIdent, input.substr(start, pos - start), start});
      } else {
        ++pos;
        tokens.push_back({Token::Kind::kPunct, "_", start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos < n &&
             (std::isdigit(static_cast<unsigned char>(input[pos])) ||
              input[pos] == '.' || input[pos] == 'e' || input[pos] == 'E' ||
              ((input[pos] == '-' || input[pos] == '+') && pos > start &&
               (input[pos - 1] == 'e' || input[pos - 1] == 'E')))) {
        ++pos;
      }
      tokens.push_back(
          {Token::Kind::kNumber, input.substr(start, pos - start), start});
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      std::string text;
      while (pos < n && input[pos] != quote) {
        if (input[pos] == '\\' && pos + 1 < n) ++pos;
        text += input[pos++];
      }
      if (pos >= n) {
        return Error("unterminated string literal at offset " +
                     std::to_string(start));
      }
      ++pos;  // closing quote
      tokens.push_back({Token::Kind::kString, std::move(text), start});
      continue;
    }
    // Multi-character operators first.
    auto two = [&](const char* op) {
      return pos + 1 < n && input[pos] == op[0] && input[pos + 1] == op[1];
    };
    if (two("->") || two(":=") || two("<=") || two(">=") || two("!=") ||
        two(":-")) {
      tokens.push_back({Token::Kind::kPunct, input.substr(pos, 2), start});
      pos += 2;
      continue;
    }
    static const char kSingle[] = "()[]{},|*+?^!=<>.-:@;~";
    bool matched = false;
    for (const char* p = kSingle; *p != '\0'; ++p) {
      if (c == *p) {
        tokens.push_back({Token::Kind::kPunct, std::string(1, c), start});
        ++pos;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Error("unexpected character '" + std::string(1, c) +
                   "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back({Token::Kind::kEnd, "", n});
  return tokens;
}

}  // namespace gqzoo
