#ifndef GQZOO_REGEX_AST_H_
#define GQZOO_REGEX_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/util/value.h"

namespace gqzoo {

/// An element test of Section 3.2.1:
///
///     ETest := x := pname | pname op c | pname op x
///
/// where `x` ranges over data variables, `pname` over property names and
/// `c` over constant values.
struct ElementTest {
  enum class Kind {
    kAssign,        // x := pname
    kCompareConst,  // pname op c
    kCompareVar,    // pname op x
  };

  Kind kind;
  std::string property;       // pname
  std::string data_var;       // x (kAssign, kCompareVar)
  CompareOp op = CompareOp::kEq;  // kCompareConst, kCompareVar
  Value constant;             // c (kCompareConst)

  std::string ToString() const;
};

/// An atomic step of a regular expression.
///
/// The three regex classes of the paper share this representation:
///  * RPQs (3.1.1): edge atoms with a label constraint (`target` = kEdge,
///    no capture, no test); wildcards `!S` and `_` per Remark 11.
///  * l-RPQs (3.1.4): additionally a capture variable `z` (`a^z`).
///  * dl-RPQs (3.2.1): atoms carry an explicit node/edge target — `(a)`
///    vs `[a]` — and may be element tests `(et)` / `[et]` instead of label
///    constraints.
struct Atom {
  enum class Target : uint8_t { kEdge, kNode };

  /// The label constraint.
  enum class LabelKind : uint8_t {
    kOne,     // a single label
    kNegSet,  // !{a1, ..., an}: anything not in the set (Remark 11)
    kAny,     // "_": any label
    kTest,    // no label constraint; `test` holds an element test
  };

  Target target = Target::kEdge;
  LabelKind label_kind = LabelKind::kOne;
  /// Two-way navigation (Remark 9): an inverse atom `~a` traverses an
  /// a-labeled edge backwards. Supported by the pair-level RPQ evaluator
  /// (2RPQs); path-producing layers require one-way atoms.
  bool inverse = false;
  std::vector<std::string> labels;        // size 1 for kOne, n for kNegSet
  std::optional<std::string> capture;     // list variable z, if any
  std::optional<ElementTest> test;        // set iff label_kind == kTest

  bool is_test() const { return label_kind == LabelKind::kTest; }

  static Atom Label(const std::string& label) {
    Atom a;
    a.labels = {label};
    return a;
  }
  static Atom LabelCapture(const std::string& label, const std::string& var) {
    Atom a = Label(label);
    a.capture = var;
    return a;
  }
  static Atom Any() {
    Atom a;
    a.label_kind = LabelKind::kAny;
    return a;
  }
  static Atom NegSet(std::vector<std::string> labels) {
    Atom a;
    a.label_kind = LabelKind::kNegSet;
    a.labels = std::move(labels);
    return a;
  }
  static Atom Test(ElementTest test) {
    Atom a;
    a.label_kind = LabelKind::kTest;
    a.test = std::move(test);
    return a;
  }

  Atom WithTarget(Target t) const {
    Atom a = *this;
    a.target = t;
    return a;
  }

  Atom Inverted() const {
    Atom a = *this;
    a.inverse = true;
    return a;
  }

  std::string ToString() const;
};

class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

/// A regular expression AST over `Atom`s.
///
/// `R? = R + ε` and `R+ = R·R*` are kept as explicit operators (they
/// matter for Glushkov position bookkeeping and for printing); bounded
/// repetition `R{n,m}` is desugared by the parser.
class Regex {
 public:
  enum class Op : uint8_t {
    kEpsilon,
    kAtom,
    kConcat,
    kUnion,
    kStar,
    kPlus,
    kOptional,
  };

  static RegexPtr Epsilon();
  static RegexPtr MakeAtom(Atom atom);
  static RegexPtr Concat(RegexPtr lhs, RegexPtr rhs);
  static RegexPtr Union(RegexPtr lhs, RegexPtr rhs);
  static RegexPtr Star(RegexPtr inner);
  static RegexPtr Plus(RegexPtr inner);
  static RegexPtr Optional(RegexPtr inner);

  /// `R{lo, hi}` desugared into concatenations/optionals/stars.
  /// `hi == kUnbounded` means `R{lo,}`.
  static constexpr size_t kUnbounded = SIZE_MAX;
  static RegexPtr Repeat(RegexPtr inner, size_t lo, size_t hi);

  Op op() const { return op_; }
  const Atom& atom() const { return atom_; }
  const RegexPtr& left() const { return children_[0]; }
  const RegexPtr& right() const { return children_[1]; }
  const RegexPtr& child() const { return children_[0]; }

  /// All capture (list) variables occurring in the expression (`Var(R)`),
  /// in first-occurrence order.
  std::vector<std::string> CaptureVariables() const;

  /// All data variables occurring in element tests.
  std::vector<std::string> DataVariables() const;

  /// Whether ε ∈ L(R) (for atoms: false).
  bool Nullable() const;

  /// Number of atom occurrences (Glushkov positions).
  size_t NumPositions() const;

  std::string ToString() const;

 protected:
  // Construction goes through the static factories; subclassing is used
  // only by the factory implementation to reach this constructor.
  Regex(Op op, Atom atom, std::vector<RegexPtr> children)
      : op_(op), atom_(std::move(atom)), children_(std::move(children)) {}

 private:
  Op op_;
  Atom atom_;                      // valid iff op_ == kAtom
  std::vector<RegexPtr> children_;
};

}  // namespace gqzoo

#endif  // GQZOO_REGEX_AST_H_
