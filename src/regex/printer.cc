#include "src/regex/printer.h"

namespace gqzoo {

namespace {

// Precedence levels: union < concat < postfix.
enum Prec { kPrecUnion = 0, kPrecConcat = 1, kPrecPostfix = 2 };

bool ContainsDlAtom(const Regex& r) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return false;
    case Regex::Op::kAtom:
      return r.atom().target == Atom::Target::kNode || r.atom().is_test();
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      return ContainsDlAtom(*r.left()) || ContainsDlAtom(*r.right());
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      return ContainsDlAtom(*r.child());
  }
  return false;
}

std::string AtomText(const Atom& a, RegexDialect dialect) {
  std::string inner = a.ToString();
  if (dialect == RegexDialect::kPlain) return inner;
  return a.target == Atom::Target::kNode ? "(" + inner + ")"
                                         : "[" + inner + "]";
}

std::string Print(const Regex& r, RegexDialect dialect, int parent_prec) {
  auto wrap = [&](const std::string& s, int prec) {
    // In the dl dialect, groups must start with '(', '[', or 'eps' to be
    // recognized; a union like `(a)|(b)` already starts with '(' so plain
    // parenthesization works for both dialects.
    return prec < parent_prec ? "(" + s + ")" : s;
  };
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return "eps";
    case Regex::Op::kAtom:
      return AtomText(r.atom(), dialect);
    case Regex::Op::kConcat: {
      std::string s = Print(*r.left(), dialect, kPrecConcat) + " " +
                      Print(*r.right(), dialect, kPrecConcat);
      return wrap(s, kPrecConcat);
    }
    case Regex::Op::kUnion: {
      std::string s = Print(*r.left(), dialect, kPrecUnion) + " | " +
                      Print(*r.right(), dialect, kPrecUnion);
      return wrap(s, kPrecUnion);
    }
    case Regex::Op::kStar:
      return Print(*r.child(), dialect, kPrecPostfix + 1) + "*";
    case Regex::Op::kPlus:
      return Print(*r.child(), dialect, kPrecPostfix + 1) + "+";
    case Regex::Op::kOptional:
      return Print(*r.child(), dialect, kPrecPostfix + 1) + "?";
  }
  return "?";
}

}  // namespace

std::string RegexToString(const Regex& r, RegexDialect dialect) {
  return Print(r, dialect, kPrecUnion);
}

std::string Regex::ToString() const {
  return RegexToString(
      *this, ContainsDlAtom(*this) ? RegexDialect::kDl : RegexDialect::kPlain);
}

}  // namespace gqzoo
