#include "src/regex/rewrite.h"

namespace gqzoo {

namespace {

bool AtomEquals(const Atom& a, const Atom& b) {
  return a.target == b.target && a.label_kind == b.label_kind &&
         a.labels == b.labels && a.capture == b.capture &&
         a.inverse == b.inverse &&
         (a.is_test()
              ? b.is_test() && a.test->kind == b.test->kind &&
                    a.test->property == b.test->property &&
                    a.test->data_var == b.test->data_var &&
                    a.test->op == b.test->op &&
                    a.test->constant == b.test->constant
              : !b.is_test());
}

}  // namespace

bool RegexEquals(const Regex& a, const Regex& b) {
  if (a.op() != b.op()) return false;
  switch (a.op()) {
    case Regex::Op::kEpsilon:
      return true;
    case Regex::Op::kAtom:
      return AtomEquals(a.atom(), b.atom());
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      return RegexEquals(*a.left(), *b.left()) &&
             RegexEquals(*a.right(), *b.right());
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      return RegexEquals(*a.child(), *b.child());
  }
  return false;
}

size_t RegexSize(const Regex& r) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
    case Regex::Op::kAtom:
      return 1;
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      return 1 + RegexSize(*r.left()) + RegexSize(*r.right());
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      return 1 + RegexSize(*r.child());
  }
  return 1;
}

namespace {

bool IsEpsilon(const Regex& r) { return r.op() == Regex::Op::kEpsilon; }

RegexPtr SimplifyNode(RegexPtr r);

RegexPtr SimplifyStar(RegexPtr child) {
  switch (child->op()) {
    case Regex::Op::kEpsilon:
      return child;  // ε* = ε
    case Regex::Op::kStar:
      return child;  // (R*)* = R*
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      return SimplifyStar(child->child());  // (R+)* = (R?)* = R*
    default:
      return Regex::Star(std::move(child));
  }
}

RegexPtr SimplifyPlus(RegexPtr child) {
  switch (child->op()) {
    case Regex::Op::kEpsilon:
      return child;  // ε+ = ε
    case Regex::Op::kStar:
      return child;  // (R*)+ = R*
    case Regex::Op::kPlus:
      return child;  // (R+)+ = R+
    case Regex::Op::kOptional:
      return SimplifyStar(child->child());  // (R?)+ = R*
    default:
      return Regex::Plus(std::move(child));
  }
}

RegexPtr SimplifyOptional(RegexPtr child) {
  switch (child->op()) {
    case Regex::Op::kEpsilon:
      return child;  // ε? = ε
    case Regex::Op::kStar:
      return child;  // (R*)? = R*
    case Regex::Op::kPlus:
      return SimplifyStar(child->child());  // (R+)? = R*
    case Regex::Op::kOptional:
      return child;  // (R?)? = R?
    default:
      if (child->Nullable()) return child;  // R? = R when ε ∈ L(R)
      return Regex::Optional(std::move(child));
  }
}

RegexPtr SimplifyNode(RegexPtr r) {
  switch (r->op()) {
    case Regex::Op::kEpsilon:
    case Regex::Op::kAtom:
      return r;
    case Regex::Op::kConcat: {
      RegexPtr lhs = SimplifyNode(r->left());
      RegexPtr rhs = SimplifyNode(r->right());
      if (IsEpsilon(*lhs)) return rhs;
      if (IsEpsilon(*rhs)) return lhs;
      // R* R* = R* (both sides are "any number of R-matches").
      if (lhs->op() == Regex::Op::kStar && rhs->op() == Regex::Op::kStar &&
          RegexEquals(*lhs->child(), *rhs->child())) {
        return lhs;
      }
      return Regex::Concat(std::move(lhs), std::move(rhs));
    }
    case Regex::Op::kUnion: {
      RegexPtr lhs = SimplifyNode(r->left());
      RegexPtr rhs = SimplifyNode(r->right());
      if (RegexEquals(*lhs, *rhs)) return lhs;
      if (IsEpsilon(*lhs)) return SimplifyOptional(std::move(rhs));
      if (IsEpsilon(*rhs)) return SimplifyOptional(std::move(lhs));
      return Regex::Union(std::move(lhs), std::move(rhs));
    }
    case Regex::Op::kStar:
      return SimplifyStar(SimplifyNode(r->child()));
    case Regex::Op::kPlus:
      return SimplifyPlus(SimplifyNode(r->child()));
    case Regex::Op::kOptional:
      return SimplifyOptional(SimplifyNode(r->child()));
  }
  return r;
}

}  // namespace

RegexPtr SimplifyRegex(const RegexPtr& regex) {
  RegexPtr current = regex;
  // Local rules can enable each other across levels; iterate to fixpoint
  // (size strictly decreases on every productive pass).
  for (;;) {
    RegexPtr next = SimplifyNode(current);
    if (RegexEquals(*next, *current)) return next;
    current = std::move(next);
  }
}

}  // namespace gqzoo
