#include "src/fuzz/graph_gen.h"

#include <cassert>

namespace gqzoo {
namespace fuzz {

namespace {

constexpr const char* kEdgeLabels[] = {"a", "b", "c", "d", "e", "f"};
constexpr size_t kMaxAlphabet = sizeof(kEdgeLabels) / sizeof(kEdgeLabels[0]);

const char* NodeLabelFor(FuzzRng* rng) {
  return rng->Percent(75) ? "N" : "M";
}

/// Copies `g` applying node/edge keep-masks, an edge-label rename, and a
/// name prefix, into `*out` (which may already hold other elements — the
/// disjoint-union path). Properties ride along verbatim.
void CopyInto(const PropertyGraph& g, const std::vector<bool>* keep_nodes,
              const std::vector<bool>* keep_edges,
              const std::map<std::string, std::string>* rename,
              const std::string& prefix, PropertyGraph* out) {
  std::vector<NodeId> node_map(g.NumNodes(), kInvalidId);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (keep_nodes != nullptr && !(*keep_nodes)[n]) continue;
    // Node and edge labels share one interner, so the rename map applies
    // to both.
    std::string node_label = g.LabelName(g.NodeLabel(n));
    if (rename != nullptr) {
      auto it = rename->find(node_label);
      if (it != rename->end()) node_label = it->second;
    }
    NodeId copy = out->AddNode(prefix + std::string(g.NodeName(n)), node_label);
    node_map[n] = copy;
    for (const auto& [prop, value] : g.PropertiesOf(ObjectRef::Node(n))) {
      out->SetProperty(ObjectRef::Node(copy), g.PropertyName(prop), value);
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (keep_edges != nullptr && !(*keep_edges)[e]) continue;
    NodeId src = node_map[g.Src(e)];
    NodeId tgt = node_map[g.Tgt(e)];
    if (src == kInvalidId || tgt == kInvalidId) continue;  // endpoint dropped
    std::string label = g.LabelName(g.EdgeLabel(e));
    if (rename != nullptr) {
      auto it = rename->find(label);
      if (it != rename->end()) label = it->second;
    }
    EdgeId copy = out->AddEdge(src, tgt, label, prefix + std::string(g.EdgeName(e)));
    for (const auto& [prop, value] : g.PropertiesOf(ObjectRef::Edge(e))) {
      out->SetProperty(ObjectRef::Edge(copy), g.PropertyName(prop), value);
    }
  }
}

void MaybeProps(FuzzRng* rng, const GraphGenOptions& options, ObjectRef o,
                PropertyGraph* g) {
  if (!rng->Percent(options.property_percent)) return;
  g->SetProperty(o, "k", Value(static_cast<int64_t>(rng->Below(5))));
}

}  // namespace

const char* GraphFamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kChain: return "chain";
    case GraphFamily::kCycle: return "cycle";
    case GraphFamily::kClique: return "clique";
    case GraphFamily::kParallelChain: return "parallel-chain";
    case GraphFamily::kDiamond: return "diamond";
    case GraphFamily::kRandom: return "random";
    case GraphFamily::kSparseRandom: return "sparse-random";
  }
  return "unknown";
}

std::vector<std::string> LabelAlphabet(size_t num_labels) {
  if (num_labels > kMaxAlphabet) num_labels = kMaxAlphabet;
  std::vector<std::string> labels;
  for (size_t i = 0; i < num_labels; ++i) labels.push_back(kEdgeLabels[i]);
  return labels;
}

PropertyGraph GenGraph(FuzzRng* rng, const GraphGenOptions& options,
                       GraphFamily* family_out,
                       std::vector<std::string>* labels_out) {
  const auto family =
      static_cast<GraphFamily>(rng->Index(kNumGraphFamilies));
  const size_t num_labels = rng->Range(1, options.max_labels);
  std::vector<std::string> labels = LabelAlphabet(num_labels);
  if (family_out != nullptr) *family_out = family;
  if (labels_out != nullptr) *labels_out = labels;

  PropertyGraph g;
  auto add_node = [&]() {
    NodeId n = g.AddNode("n" + std::to_string(g.NumNodes()),
                         NodeLabelFor(rng));
    MaybeProps(rng, options, ObjectRef::Node(n), &g);
    return n;
  };
  auto add_edge = [&](NodeId src, NodeId tgt) {
    EdgeId e = g.AddEdge(src, tgt, labels[rng->Index(labels.size())]);
    MaybeProps(rng, options, ObjectRef::Edge(e), &g);
    return e;
  };

  switch (family) {
    case GraphFamily::kChain: {
      const size_t n = rng->Range(2, options.max_nodes);
      for (size_t i = 0; i < n; ++i) add_node();
      for (size_t i = 0; i + 1 < n; ++i) {
        add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
      }
      break;
    }
    case GraphFamily::kCycle: {
      const size_t n = rng->Range(2, options.max_nodes);
      for (size_t i = 0; i < n; ++i) add_node();
      for (size_t i = 0; i < n; ++i) {
        add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
      }
      break;
    }
    case GraphFamily::kClique: {
      // Dense: keep tiny so the full oracle matrix stays fast.
      const size_t n = rng->Range(2, options.max_nodes < 5 ? options.max_nodes : 5);
      for (size_t i = 0; i < n; ++i) add_node();
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          if (i != j) add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
        }
      }
      break;
    }
    case GraphFamily::kParallelChain: {
      const size_t hops = rng->Range(1, 4);
      const size_t parallel = rng->Range(2, 3);
      for (size_t i = 0; i <= hops; ++i) add_node();
      for (size_t i = 0; i < hops; ++i) {
        for (size_t p = 0; p < parallel; ++p) {
          add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
        }
      }
      break;
    }
    case GraphFamily::kDiamond: {
      // source -> layer of `width` -> sink, possibly repeated.
      const size_t diamonds = rng->Range(1, 2);
      const size_t width = rng->Range(2, 3);
      NodeId tail = add_node();
      for (size_t d = 0; d < diamonds; ++d) {
        std::vector<NodeId> layer;
        for (size_t w = 0; w < width; ++w) layer.push_back(add_node());
        NodeId sink = add_node();
        for (NodeId mid : layer) {
          add_edge(tail, mid);
          add_edge(mid, sink);
        }
        tail = sink;
      }
      break;
    }
    case GraphFamily::kRandom: {
      const size_t n = rng->Range(2, options.max_nodes);
      const size_t m = rng->Range(1, options.max_edges);
      for (size_t i = 0; i < n; ++i) add_node();
      for (size_t i = 0; i < m; ++i) {
        add_edge(static_cast<NodeId>(rng->Index(n)),
                 static_cast<NodeId>(rng->Index(n)));
      }
      break;
    }
    case GraphFamily::kSparseRandom: {
      const size_t n = rng->Range(3, options.max_nodes);
      for (size_t i = 0; i < n; ++i) add_node();
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          if (rng->Percent(15)) {
            add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
          }
        }
      }
      break;
    }
  }
  return g;
}

PropertyGraph RenameEdgeLabels(
    const PropertyGraph& g, const std::map<std::string, std::string>& rename) {
  PropertyGraph out;
  CopyInto(g, nullptr, nullptr, &rename, "", &out);
  return out;
}

PropertyGraph DisjointUnion(const PropertyGraph& a, const PropertyGraph& b,
                            const std::string& b_prefix) {
  PropertyGraph out;
  CopyInto(a, nullptr, nullptr, nullptr, "", &out);
  CopyInto(b, nullptr, nullptr, nullptr, b_prefix, &out);
  return out;
}

PropertyGraph WithEdgeSubset(const PropertyGraph& g,
                             const std::vector<bool>& keep) {
  assert(keep.size() == g.NumEdges());
  PropertyGraph out;
  CopyInto(g, nullptr, &keep, nullptr, "", &out);
  return out;
}

PropertyGraph WithNodeSubset(const PropertyGraph& g,
                             const std::vector<bool>& keep) {
  assert(keep.size() == g.NumNodes());
  PropertyGraph out;
  CopyInto(g, &keep, nullptr, nullptr, "", &out);
  return out;
}

PropertyGraph WithExtraEdge(const PropertyGraph& g, NodeId src, NodeId tgt,
                            const std::string& label) {
  PropertyGraph out;
  CopyInto(g, nullptr, nullptr, nullptr, "", &out);
  // Pick a name no surviving edge uses (auto-names would collide with a
  // preserved "e<k>" after a subset mutation dropped earlier edges).
  std::string name;
  for (size_t i = out.NumEdges();; ++i) {
    name = "x" + std::to_string(i);
    if (!out.FindEdge(name).has_value()) break;
  }
  out.AddEdge(src, tgt, label, name);
  return out;
}

}  // namespace fuzz
}  // namespace gqzoo
