#ifndef GQZOO_FUZZ_QUERY_GEN_H_
#define GQZOO_FUZZ_QUERY_GEN_H_

#include <string>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/engine/language.h"
#include "src/fuzz/rng.h"
#include "src/graph/graph.h"

namespace gqzoo {
namespace fuzz {

/// Knobs for query generation. Depth/atom counts are kept small: the
/// interesting divergences come from operator *combinations*, not size,
/// and small queries minimize into readable repros.
struct QueryGenOptions {
  size_t max_regex_depth = 3;
  size_t max_atoms = 3;
  /// Percent of CRPQ endpoint terms that are node constants (`@n3`) —
  /// including, rarely, a constant naming a node that does not exist, to
  /// exercise error parity across substrates.
  uint64_t constant_percent = 15;
  /// Percent of atoms that carry a list-variable capture (`^z1`).
  uint64_t capture_percent = 30;
  /// Percent of CRPQ / dl-CRPQ / CoreGQL cases generated as a cyclic core
  /// (triangle or 4-clique of single-label forward atoms over distinct
  /// variables) — exactly the shape the planner hands to the worst-case-
  /// optimal join, so the engine's wcoj-vs-binary leg runs through the
  /// wcoj path instead of trivially matching on acyclic queries.
  uint64_t cyclic_percent = 20;
};

/// A regex in the plain dialect over `labels` (atoms may also use `_`,
/// `!{...}`, `eps`, inverse `~l`, and — when `capture_names` is non-null —
/// captures `l^zK`, appending each fresh capture name to the vector).
std::string GenRegexText(FuzzRng* rng, const std::vector<std::string>& labels,
                         size_t depth, bool allow_inverse,
                         std::vector<std::string>* capture_names = nullptr);

/// A dl-dialect regex built from the battle-tested template shapes (label
/// atoms, property tests on "k", register writes/reads, stars and counted
/// repetitions).
std::string GenDlRegexText(FuzzRng* rng,
                           const std::vector<std::string>& labels,
                           std::vector<std::string>* capture_names = nullptr);

/// Query text for `language` over a graph generated with `labels`.
/// `g` supplies node names for constants/endpoints. For kPaths the
/// endpoints/mode are returned through the out-parameters.
std::string GenQueryText(FuzzRng* rng, QueryLanguage language,
                         const PropertyGraph& g,
                         const std::vector<std::string>& labels,
                         const QueryGenOptions& options,
                         std::string* paths_from = nullptr,
                         std::string* paths_to = nullptr,
                         PathMode* paths_mode = nullptr);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_QUERY_GEN_H_
