#ifndef GQZOO_FUZZ_FUZZER_H_
#define GQZOO_FUZZ_FUZZER_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/fuzz/fuzz_case.h"
#include "src/fuzz/graph_gen.h"
#include "src/fuzz/minimize.h"
#include "src/fuzz/mutation_gen.h"
#include "src/fuzz/oracle.h"
#include "src/fuzz/query_gen.h"

namespace gqzoo {
namespace fuzz {

struct FuzzerOptions {
  /// Campaign seed. Case `i` derives its own seed via `CaseSeed(seed, i)`,
  /// so any single case regenerates without replaying the run.
  uint64_t seed = 1;
  size_t num_cases = 1000;
  /// Stop after this much wall time (0 = run all cases). A time-limited
  /// run is still case-for-case deterministic, but the *number* of cases
  /// reached varies with machine speed — reproduce findings by case seed,
  /// not by campaign length.
  uint64_t time_budget_ms = 0;
  /// Run only this case index (for `--seed=S --case=I` repro).
  std::optional<size_t> only_case;
  /// Restrict generation to one language (debugging aid).
  std::optional<QueryLanguage> only_language;

  OracleOptions oracle;
  GraphGenOptions graph;
  QueryGenOptions query;
  MutationGenOptions mutation;
  /// Percent of cases that carry a mutation sequence (and run the
  /// delta-vs-rebuild differential oracle on top of the read-path matrix).
  uint64_t mutation_percent = 35;
  /// Run the metamorphic suite on cases the oracle passes.
  bool metamorphic = true;
  /// Delta-debug failures down before reporting them.
  bool minimize = true;
  /// Stop the campaign after this many distinct failures.
  size_t max_failures = 5;
  /// Percent of cases that carry an injected step/memory budget for the
  /// error-parity legs.
  uint64_t budget_percent = 25;
};

struct FuzzFailure {
  size_t case_index = 0;
  FuzzCase original;
  FuzzCase minimized;
  std::string check;   // first failing check name
  std::string detail;  // first divergence detail
};

struct FuzzStats {
  size_t cases_run = 0;
  size_t queries_parsed = 0;  // generator validity rate numerator
  size_t checks = 0;          // oracle leg comparisons executed
  size_t divergent_cases = 0;
  std::vector<size_t> by_language;  // indexed by QueryLanguage

  FuzzStats();
  std::string ToString() const;
};

struct FuzzRunResult {
  FuzzStats stats;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Deterministically generates case `i` of a campaign: the case's graph,
/// query, endpoints, and injected budgets all derive from
/// `CaseSeed(options.seed, i)` through decorrelated forks, so generator
/// changes to one stream do not cascade into the others.
FuzzCase GenCase(uint64_t case_seed, const FuzzerOptions& options);

/// Runs the campaign: generate, oracle, metamorphic, minimize. Progress
/// and failures stream to `log` when non-null. Deterministic given
/// `options` (modulo `time_budget_ms` cutting the run short).
FuzzRunResult RunFuzzer(const FuzzerOptions& options,
                        std::ostream* log = nullptr);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_FUZZER_H_
