#include "src/fuzz/mutation_gen.h"

#include <algorithm>
#include <sstream>

#include "src/fuzz/metamorphic.h"
#include "src/graph/delta/merge.h"
#include "src/graph/graph_io.h"

namespace gqzoo {
namespace fuzz {

namespace {

/// First differing line of two renderings, for log-friendly divergences.
std::string FirstDiff(const std::string& a, const std::string& b) {
  std::istringstream as(a), bs(b);
  std::string la, lb;
  size_t lineno = 1;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(as, la));
    const bool gb = static_cast<bool>(std::getline(bs, lb));
    if (!ga && !gb) return "renderings identical";
    if (!ga || !gb || la != lb) {
      return "line " + std::to_string(lineno) + ": '" + (ga ? la : "<eof>") +
             "' vs '" + (gb ? lb : "<eof>") + "'";
    }
    ++lineno;
  }
}

std::string StatusString(bool ok, ErrorCode code) {
  return ok ? "OK" : std::string(ErrorCodeName(code));
}

}  // namespace

GraphSim::GraphSim(const PropertyGraph& base) : base_(&base) {
  base_nodes_ = base.NumNodes();
  base_edges_ = base.NumEdges();
  nodes_.reserve(base_nodes_);
  for (size_t n = 0; n < base_nodes_; ++n) {
    NodeId id = static_cast<NodeId>(n);
    nodes_.push_back(
        {std::string(base.NodeName(id)), base.LabelName(base.NodeLabel(id))});
    node_by_name_[std::string(base.NodeName(id))] = n;
  }
  edges_.reserve(base_edges_);
  for (size_t e = 0; e < base_edges_; ++e) {
    EdgeId id = static_cast<EdgeId>(e);
    edges_.push_back({std::string(base.EdgeName(id)), base.Src(id),
                      base.Tgt(id), base.LabelName(base.EdgeLabel(id))});
    edge_by_name_[std::string(base.EdgeName(id))] = e;
  }
  alive_nodes_ = base_nodes_;
  alive_edges_ = base_edges_;
}

std::optional<size_t> GraphSim::ResolveNodeIdx(const std::string& name) const {
  auto it = node_by_name_.find(name);
  if (it == node_by_name_.end() || !nodes_[it->second].alive) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<size_t> GraphSim::ResolveEdgeIdx(const std::string& name) const {
  auto it = edge_by_name_.find(name);
  if (it == edge_by_name_.end() || !edges_[it->second].alive) {
    return std::nullopt;
  }
  return it->second;
}

bool GraphSim::ResolvableNode(const std::string& name) const {
  return ResolveNodeIdx(name).has_value();
}

bool GraphSim::ResolvableEdge(const std::string& name) const {
  return ResolveEdgeIdx(name).has_value();
}

void GraphSim::InternProperty(const std::string& name) {
  if (base_->FindProperty(name).has_value()) return;
  if (std::find(new_props_.begin(), new_props_.end(), name) !=
      new_props_.end()) {
    return;
  }
  new_props_.push_back(name);
}

Result<bool> GraphSim::Apply(const MutationOp& op) {
  // Same up-front identifier validation as DeltaOverlay::ApplyOne (shared
  // predicate, so the two cannot drift on what is WAL-representable).
  Result<bool> valid = ValidateMutationNames(op);
  if (!valid.ok()) return valid;
  switch (op.kind) {
    case MutationOp::Kind::kAddNode: {
      if (ResolveNodeIdx(op.name).has_value()) {
        return Error(ErrorCode::kInvalidArgument,
                     "node '" + op.name + "' already exists");
      }
      node_by_name_[op.name] = nodes_.size();
      nodes_.push_back({op.name, op.label});
      ++alive_nodes_;
      return true;
    }
    case MutationOp::Kind::kRemoveNode: {
      std::optional<size_t> id = ResolveNodeIdx(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.name + "'");
      }
      for (SimEdge& e : edges_) {
        if (e.alive && (e.src == *id || e.tgt == *id)) {
          e.alive = false;
          --alive_edges_;
        }
      }
      nodes_[*id].alive = false;
      --alive_nodes_;
      return true;
    }
    case MutationOp::Kind::kAddEdge: {
      if (ResolveEdgeIdx(op.name).has_value()) {
        return Error(ErrorCode::kInvalidArgument,
                     "edge '" + op.name + "' already exists");
      }
      std::optional<size_t> src = ResolveNodeIdx(op.src);
      if (!src.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.src + "'");
      }
      std::optional<size_t> tgt = ResolveNodeIdx(op.tgt);
      if (!tgt.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.tgt + "'");
      }
      edge_by_name_[op.name] = edges_.size();
      edges_.push_back({op.name, *src, *tgt, op.label});
      ++alive_edges_;
      return true;
    }
    case MutationOp::Kind::kRemoveEdge: {
      std::optional<size_t> id = ResolveEdgeIdx(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown edge '" + op.name + "'");
      }
      edges_[*id].alive = false;
      --alive_edges_;
      return true;
    }
    case MutationOp::Kind::kSetLabel: {
      std::optional<size_t> id = ResolveNodeIdx(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.name + "'");
      }
      nodes_[*id].label = op.label;
      return true;
    }
    case MutationOp::Kind::kSetProperty: {
      std::optional<size_t> id =
          op.on_edge ? ResolveEdgeIdx(op.name) : ResolveNodeIdx(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound,
                     std::string("unknown ") +
                         (op.on_edge ? "edge" : "node") + " '" + op.name +
                         "'");
      }
      InternProperty(op.property);
      overrides_[{op.on_edge, *id, op.property}] = op.value;
      return true;
    }
  }
  return Error(ErrorCode::kInvalidArgument, "unknown mutation kind");
}

PropertyGraph GraphSim::Build() const {
  PropertyGraph out;
  std::vector<NodeId> node_id(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive) {
      node_id[i] = out.AddNode(nodes_[i].name, nodes_[i].label);
    }
  }
  std::vector<EdgeId> edge_id(edges_.size(), 0);
  for (size_t i = 0; i < edges_.size(); ++i) {
    const SimEdge& e = edges_[i];
    if (e.alive) {
      edge_id[i] = out.AddEdge(node_id[e.src], node_id[e.tgt], e.label,
                               e.name);
    }
  }
  // Rendering sorts an object's properties by PropertyId, so the rebuild
  // must intern names in the merged view's order: the base universe in base
  // id order, then the log's first-set order.
  for (size_t p = 0; p < base_->NumProperties(); ++p) {
    out.InternProperty(base_->PropertyName(static_cast<PropertyId>(p)));
  }
  for (const std::string& p : new_props_) out.InternProperty(p);
  // Base properties of surviving base objects, except where overridden.
  for (size_t i = 0; i < base_nodes_; ++i) {
    if (!nodes_[i].alive) continue;
    ObjectRef o = ObjectRef::Node(static_cast<NodeId>(i));
    for (const auto& [pid, v] : base_->PropertiesOf(o)) {
      if (overrides_.count({false, i, base_->PropertyName(pid)}) == 0) {
        out.SetProperty(ObjectRef::Node(node_id[i]), base_->PropertyName(pid),
                        v);
      }
    }
  }
  for (size_t i = 0; i < base_edges_; ++i) {
    if (!edges_[i].alive) continue;
    ObjectRef o = ObjectRef::Edge(static_cast<EdgeId>(i));
    for (const auto& [pid, v] : base_->PropertiesOf(o)) {
      if (overrides_.count({true, i, base_->PropertyName(pid)}) == 0) {
        out.SetProperty(ObjectRef::Edge(edge_id[i]), base_->PropertyName(pid),
                        v);
      }
    }
  }
  for (const auto& [key, v] : overrides_) {
    const bool on_edge = std::get<0>(key);
    const size_t idx = std::get<1>(key);
    const std::string& prop = std::get<2>(key);
    if (on_edge ? !edges_[idx].alive : !nodes_[idx].alive) continue;
    out.SetProperty(on_edge ? ObjectRef::Edge(edge_id[idx])
                            : ObjectRef::Node(node_id[idx]),
                    prop, v);
  }
  return out;
}

std::vector<std::string> GraphSim::AliveNodeNames() const {
  std::vector<std::string> names;
  names.reserve(alive_nodes_);
  for (const SimNode& n : nodes_) {
    if (n.alive) names.push_back(n.name);
  }
  return names;
}

std::vector<std::string> GraphSim::AliveEdgeNames() const {
  std::vector<std::string> names;
  names.reserve(alive_edges_);
  for (const SimEdge& e : edges_) {
    if (e.alive) names.push_back(e.name);
  }
  return names;
}

std::vector<MutationOp> GenMutations(FuzzRng* rng, const PropertyGraph& base,
                                     const std::vector<std::string>& labels,
                                     const MutationGenOptions& options) {
  GraphSim sim(base);
  std::vector<MutationOp> ops;
  const size_t count = rng->Range(options.min_ops, options.max_ops);
  size_t fresh = 0;

  auto pick_label = [&]() -> std::string {
    if (labels.empty() || rng->Percent(options.fresh_label_percent)) {
      return "Lx" + std::to_string(rng->Below(3));
    }
    return labels[rng->Index(labels.size())];
  };
  // Empty pools fall back to a name that cannot exist (the op then
  // exercises the NOT_FOUND path, which is fine coverage too).
  auto pick_node = [&]() -> std::string {
    std::vector<std::string> names = sim.AliveNodeNames();
    return names.empty() ? std::string("zz_missing")
                         : names[rng->Index(names.size())];
  };
  auto pick_edge = [&]() -> std::string {
    std::vector<std::string> names = sim.AliveEdgeNames();
    return names.empty() ? std::string("zz_missing")
                         : names[rng->Index(names.size())];
  };
  auto pick_value = [&]() -> Value {
    switch (rng->Index(3)) {
      case 0: return Value(static_cast<int64_t>(rng->Below(100)));
      case 1: return Value(rng->OneIn(2));
      default: return Value("s" + std::to_string(rng->Below(5)));
    }
  };
  const char* kProps[] = {"k", "v0", "v1"};

  for (size_t i = 0; i < count; ++i) {
    const bool corrupt = rng->Percent(options.invalid_percent);
    MutationOp op;
    switch (rng->Index(6)) {
      case 0:
        op = MutationOp::AddNode("w" + std::to_string(fresh++), pick_label());
        if (corrupt) op.name = pick_node();  // duplicate-name rejection
        break;
      case 1:
        op = MutationOp::AddEdge("t" + std::to_string(fresh++), pick_node(),
                                 pick_node(), pick_label());
        if (corrupt) op.src = "zz_missing";
        break;
      case 2:
        op = MutationOp::RemoveNode(corrupt ? "zz_missing" : pick_node());
        break;
      case 3:
        op = MutationOp::RemoveEdge(corrupt ? "zz_missing" : pick_edge());
        break;
      case 4:
        op = MutationOp::SetLabel(corrupt ? "zz_missing" : pick_node(),
                                  pick_label());
        break;
      default: {
        const std::string prop = kProps[rng->Index(3)];
        if (rng->OneIn(3)) {
          op = MutationOp::SetEdgeProperty(
              corrupt ? "zz_missing" : pick_edge(), prop, pick_value());
        } else {
          op = MutationOp::SetNodeProperty(
              corrupt ? "zz_missing" : pick_node(), prop, pick_value());
        }
        break;
      }
    }
    sim.Apply(op);  // keep the sim in sync; rejected ops stay in the case
    ops.push_back(std::move(op));
  }
  return ops;
}

void RunMutationOracle(const FuzzCase& c, const OracleOptions& options,
                       OracleReport* report) {
  if (c.mutations.empty()) return;
  Result<PropertyGraph> parsed = ParseCaseGraph(c);
  if (!parsed.ok()) return;  // graph parse parity is the main oracle's job

  auto base = std::make_shared<PropertyGraph>(std::move(parsed).value());
  GraphSnapshot base_snapshot(*base);
  DeltaOverlay overlay(base);
  GraphSim sim(*base);

  // Lockstep: overlay and simulator must agree on every op's fate. A
  // disagreement poisons everything downstream, so stop at the first one.
  for (size_t i = 0; i < c.mutations.size(); ++i) {
    MutationBatch batch;
    batch.ops.push_back(c.mutations[i]);
    Result<size_t> via_overlay = overlay.Apply(batch, nullptr, nullptr);
    Result<bool> via_sim = sim.Apply(c.mutations[i]);
    ++report->checks;
    if (via_overlay.ok() != via_sim.ok() ||
        (!via_overlay.ok() &&
         via_overlay.error().code() != via_sim.error().code())) {
      report->Add(
          "mutation.op-status",
          "op " + std::to_string(i) + " (" + c.mutations[i].ToString() +
              "): overlay=" +
              StatusString(via_overlay.ok(),
                           via_overlay.ok() ? ErrorCode::kGeneric
                                            : via_overlay.error().code()) +
              " sim=" +
              StatusString(via_sim.ok(), via_sim.ok()
                                             ? ErrorCode::kGeneric
                                             : via_sim.error().code()));
      return;
    }
  }

  // Delta-vs-rebuild: the merged overlay view and a from-scratch rebuild
  // must render byte-identical.
  MergedGraph merged = GraphDeltaMerger::Merge(base_snapshot, overlay);
  PropertyGraph rebuilt = sim.Build();
  const std::string merged_text = PropertyGraphToText(*merged.graph);
  const std::string rebuilt_text = PropertyGraphToText(rebuilt);
  ++report->checks;
  if (merged_text != rebuilt_text) {
    report->Add("mutation.delta-vs-rebuild",
                FirstDiff(merged_text, rebuilt_text));
    return;
  }

  // Compaction invariance: folding the log into a fresh base changes
  // nothing a query can see.
  const PropertyGraph compacted = GraphDeltaMerger::Replay(*base,
                                                           overlay.log());
  ++report->checks;
  if (PropertyGraphToText(compacted) != merged_text) {
    report->Add("mutation.compact-vs-merged",
                FirstDiff(PropertyGraphToText(compacted), merged_text));
  }

  // The case's query over the merged view vs over the rebuilt graph.
  Result<CanonicalResult> on_merged = EvalCanonical(*merged.graph, c, options);
  Result<CanonicalResult> on_rebuilt = EvalCanonical(rebuilt, c, options);
  ++report->checks;
  if (on_merged.ok() != on_rebuilt.ok()) {
    report->Add("mutation.query-on-merged",
                std::string("merged ") +
                    (on_merged.ok() ? "OK" : on_merged.error().message()) +
                    " vs rebuilt " +
                    (on_rebuilt.ok() ? "OK" : on_rebuilt.error().message()));
  } else if (!on_merged.ok()) {
    if (on_merged.error().code() != on_rebuilt.error().code()) {
      report->Add("mutation.query-on-merged",
                  std::string("error codes differ: ") +
                      ErrorCodeName(on_merged.error().code()) + " vs " +
                      ErrorCodeName(on_rebuilt.error().code()));
    }
  } else {
    std::vector<std::string> a = on_merged.value().rows;
    std::vector<std::string> b = on_rebuilt.value().rows;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b || on_merged.value().truncated != on_rebuilt.value().truncated) {
      report->Add("mutation.query-on-merged",
                  "merged " + std::to_string(a.size()) + " rows vs rebuilt " +
                      std::to_string(b.size()) + " rows");
    }
  }

  // Edge-addition monotonicity lifted to the write path: a purely additive
  // applied log can only grow an RPQ's answer set.
  if (c.language == QueryLanguage::kRpq && !overlay.log().empty()) {
    const bool adds_only = std::all_of(
        overlay.log().begin(), overlay.log().end(), [](const MutationOp& op) {
          return op.kind == MutationOp::Kind::kAddNode ||
                 op.kind == MutationOp::Kind::kAddEdge;
        });
    if (adds_only && on_merged.ok() && !on_merged.value().truncated) {
      Result<CanonicalResult> before = EvalCanonical(*base, c, options);
      if (before.ok() && !before.value().truncated) {
        std::vector<std::string> pre = before.value().rows;
        std::vector<std::string> post = on_merged.value().rows;
        std::sort(pre.begin(), pre.end());
        std::sort(post.begin(), post.end());
        ++report->checks;
        if (!std::includes(post.begin(), post.end(), pre.begin(),
                           pre.end())) {
          report->Add("mutation.monotonic-growth",
                      "additive log shrank the answer set: " +
                          std::to_string(pre.size()) + " -> " +
                          std::to_string(post.size()) + " rows");
        }
      }
    }
  }
}

}  // namespace fuzz
}  // namespace gqzoo
