#ifndef GQZOO_FUZZ_CRASH_ORACLE_H_
#define GQZOO_FUZZ_CRASH_ORACLE_H_

#include "src/fuzz/fuzz_case.h"
#include "src/fuzz/oracle.h"

namespace gqzoo {
namespace fuzz {

/// In-memory crash-recovery differential oracle. Encodes the case's
/// accepted mutation ops as WAL records (one acked batch per record, via
/// the real `AppendWalRecord` encoder), then damages the byte image the
/// way crashes do and checks the decoder + replay path against `GraphSim`
/// snapshots taken at every record boundary:
///
///   crash.wal-roundtrip        the undamaged log decodes clean and replays
///                              to a render byte-identical to the
///                              simulator's final state;
///   crash.torn-tail-truncate   EVERY proper byte-prefix of the log decodes
///                              without `kDataLoss` — a torn append is
///                              always recoverable — classified clean
///                              exactly at record boundaries and torn (with
///                              `valid_bytes` = the last boundary)
///                              everywhere else;
///   crash.prefix-consistency   each truncation recovers precisely the
///                              acked-record prefix: replaying the decoded
///                              records renders byte-identical to the
///                              simulator snapshot at that boundary (every
///                              acked batch durable, no batch half-applied);
///   crash.midlog-dataloss      a flipped payload byte in a non-final
///                              record fails `kDataLoss` (never silent
///                              truncation of acked records), while the
///                              same flip in the final record is a torn
///                              tail truncating exactly one record;
///   crash.checkpoint-roundtrip the final state round-trips through the
///                              checkpoint codec byte-identically, and a
///                              flipped or truncated checkpoint image fails
///                              `kDataLoss`.
///
/// Pure library + bytes: no filesystem, no processes — the process-level
/// companion is `tools/gqzoo_crash.cc`. Divergences append to `report`.
void RunCrashOracle(const FuzzCase& c, OracleReport* report);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_CRASH_ORACLE_H_
