#include "src/fuzz/fuzz_case.h"

#include <sstream>

#include "src/graph/graph_io.h"

namespace gqzoo {
namespace fuzz {

namespace {

const char* PathModeToken(PathMode mode) {
  switch (mode) {
    case PathMode::kAll: return "all";
    case PathMode::kShortest: return "shortest";
    case PathMode::kSimple: return "simple";
    case PathMode::kTrail: return "trail";
  }
  return "all";
}

Result<PathMode> ParsePathModeToken(const std::string& s) {
  if (s == "all") return PathMode::kAll;
  if (s == "shortest") return PathMode::kShortest;
  if (s == "simple") return PathMode::kSimple;
  if (s == "trail") return PathMode::kTrail;
  return Error(ErrorCode::kParse, "unknown path mode '" + s + "'");
}

}  // namespace

QueryRequest FuzzCase::ToRequest() const {
  QueryRequest request;
  request.language = language;
  request.text = query_text;
  if (language == QueryLanguage::kPaths) {
    request.paths.from = paths_from;
    request.paths.to = paths_to;
    request.paths.mode = paths_mode;
  }
  return request;
}

std::string FuzzCase::ToText() const {
  std::ostringstream out;
  out << "# gqzoo fuzz case\n";
  out << "seed " << seed << "\n";
  out << "lang " << QueryLanguageName(language) << "\n";
  out << "query " << query_text << "\n";
  if (language == QueryLanguage::kPaths) {
    out << "paths " << paths_from << " " << paths_to << " "
        << PathModeToken(paths_mode) << "\n";
  }
  if (step_budget != 0) out << "budget_steps " << step_budget << "\n";
  if (memory_budget != 0) out << "budget_memory " << memory_budget << "\n";
  for (const MutationOp& op : mutations) {
    out << "mutate " << op.ToString() << "\n";
  }
  out << "graph\n" << graph_text;
  if (!graph_text.empty() && graph_text.back() != '\n') out << "\n";
  out << "end\n";
  return out.str();
}

Result<FuzzCase> ParseFuzzCase(const std::string& text) {
  if (text.size() > kMaxFuzzCaseBytes) {
    return Error(ErrorCode::kInvalidArgument,
                 "fuzz case is " + std::to_string(text.size()) +
                     " bytes; the cap is " +
                     std::to_string(kMaxFuzzCaseBytes));
  }
  FuzzCase c;
  std::istringstream in(text);
  std::string line;
  bool in_graph = false;
  bool saw_query = false;
  std::ostringstream graph;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (in_graph) {
      if (line == "end") {
        in_graph = false;
        continue;
      }
      graph << line << "\n";
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    std::string rest;
    std::getline(fields, rest);
    if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
    if (key == "seed") {
      c.seed = strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "lang") {
      Result<QueryLanguage> lang = ParseQueryLanguage(rest);
      if (!lang.ok()) return lang.error();
      c.language = lang.value();
    } else if (key == "query") {
      c.query_text = rest;
      saw_query = true;
    } else if (key == "paths") {
      std::istringstream args(rest);
      std::string from, to, mode;
      if (!(args >> from >> to >> mode)) {
        return Error(ErrorCode::kParse,
                     "line " + std::to_string(lineno) +
                         ": paths needs <from> <to> <mode>");
      }
      c.paths_from = from;
      c.paths_to = to;
      Result<PathMode> m = ParsePathModeToken(mode);
      if (!m.ok()) return m.error();
      c.paths_mode = m.value();
    } else if (key == "mutate") {
      Result<MutationOp> op = ParseMutationOp(rest);
      if (!op.ok()) {
        return Error(ErrorCode::kParse, "line " + std::to_string(lineno) +
                                            ": " + op.error().message());
      }
      c.mutations.push_back(std::move(op).value());
    } else if (key == "budget_steps") {
      c.step_budget = strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "budget_memory") {
      c.memory_budget = strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "graph") {
      in_graph = true;
    } else {
      return Error(ErrorCode::kParse, "line " + std::to_string(lineno) +
                                          ": unknown key '" + key + "'");
    }
  }
  if (in_graph) {
    return Error(ErrorCode::kParse, "unterminated graph block (missing 'end')");
  }
  if (!saw_query) return Error(ErrorCode::kParse, "case has no query line");
  c.graph_text = graph.str();
  if (c.graph_text.empty()) {
    return Error(ErrorCode::kParse, "case has no graph block");
  }
  return c;
}

Result<PropertyGraph> ParseCaseGraph(const FuzzCase& c) {
  return ParsePropertyGraph(c.graph_text);
}

}  // namespace fuzz
}  // namespace gqzoo
