#include "src/fuzz/minimize.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "src/crpq/crpq_parser.h"
#include "src/fuzz/crash_oracle.h"
#include "src/fuzz/graph_gen.h"
#include "src/fuzz/metamorphic.h"
#include "src/fuzz/mutation_gen.h"
#include "src/graph/graph_io.h"

namespace gqzoo {
namespace fuzz {

namespace {

/// Identifier tokens of the query surface text — any node whose name shows
/// up here might be load-bearing (an `@name` constant, a label, a path
/// endpoint) and is never pruned.
std::set<std::string> IdentifierTokens(const FuzzCase& c) {
  std::set<std::string> tokens;
  std::string current;
  for (char ch : c.query_text) {
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
      current += ch;
    } else if (!current.empty()) {
      tokens.insert(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.insert(current);
  tokens.insert(c.paths_from);
  tokens.insert(c.paths_to);
  return tokens;
}

class Minimizer {
 public:
  Minimizer(const FuzzCase& failing, const MinimizeOptions& options)
      : options_(options), best_(failing) {}

  MinimizeResult Run() {
    MinimizeResult result;
    result.check = Verdict(best_);
    result.reproduced = !result.check.empty();
    if (!result.reproduced) {
      result.reduced = best_;
      result.evaluations = evaluations_;
      return result;
    }
    target_ = result.check;
    for (size_t round = 0; round < options_.max_rounds; ++round) {
      bool changed = false;
      changed |= DdminEdges();
      changed |= PruneNodes();
      changed |= DropConjuncts();
      changed |= DropMutations();
      changed |= ClearBudgets();
      if (!changed) break;
    }
    result.reduced = best_;
    result.evaluations = evaluations_;
    return result;
  }

 private:
  std::string Verdict(const FuzzCase& c) {
    ++evaluations_;
    OracleReport report = RunOracle(c, options_.oracle);
    if (report.ok() && !c.mutations.empty()) {
      RunMutationOracle(c, options_.oracle, &report);
    }
    if (report.ok() && !c.mutations.empty()) {
      RunCrashOracle(c, &report);
    }
    if (report.ok() && options_.include_metamorphic) {
      FuzzRng rng = FuzzRng(c.seed).Fork(7);
      RunMetamorphic(c, &rng, options_.oracle, &report);
    }
    return report.ok() ? std::string() : report.divergences.front().check;
  }

  /// Still fails the pinned check?
  bool StillFails(const FuzzCase& c) { return Verdict(c) == target_; }

  /// Replaces the graph of `best_` and keeps the change if the failure
  /// survives.
  bool TryGraph(const PropertyGraph& candidate) {
    FuzzCase c = best_;
    c.graph_text = PropertyGraphToText(candidate);
    if (!StillFails(c)) return false;
    best_ = std::move(c);
    return true;
  }

  bool DdminEdges() {
    Result<PropertyGraph> parsed = ParseCaseGraph(best_);
    if (!parsed.ok()) return false;
    size_t num_edges = parsed.value().NumEdges();
    if (num_edges == 0) return false;

    bool changed = false;
    size_t chunks = 2;
    while (true) {
      Result<PropertyGraph> current = ParseCaseGraph(best_);
      num_edges = current.value().NumEdges();
      if (num_edges == 0 || chunks > num_edges) break;
      const size_t chunk = (num_edges + chunks - 1) / chunks;
      bool reduced_this_granularity = false;
      for (size_t start = 0; start < num_edges; start += chunk) {
        // Keep everything except [start, start+chunk).
        std::vector<bool> keep(num_edges, true);
        for (size_t e = start; e < std::min(start + chunk, num_edges); ++e) {
          keep[e] = false;
        }
        if (TryGraph(WithEdgeSubset(current.value(), keep))) {
          changed = true;
          reduced_this_granularity = true;
          break;  // re-parse: edge indices shifted
        }
      }
      if (reduced_this_granularity) {
        chunks = 2;  // restart coarse on the smaller graph
      } else if (chunk == 1) {
        break;  // finest granularity exhausted
      } else {
        chunks = std::min(chunks * 2, num_edges);
      }
    }
    return changed;
  }

  bool PruneNodes() {
    Result<PropertyGraph> parsed = ParseCaseGraph(best_);
    if (!parsed.ok()) return false;
    const PropertyGraph& g = parsed.value();
    const std::set<std::string> referenced = IdentifierTokens(best_);

    std::vector<bool> keep(g.NumNodes(), true);
    bool any = false;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.OutEdges(n).empty() && g.InEdges(n).empty() &&
          referenced.count(std::string(g.NodeName(n))) == 0) {
        keep[n] = false;
        any = true;
      }
    }
    if (!any) return false;
    if (TryGraph(WithNodeSubset(g, keep))) return true;
    // All-at-once failed (some divergence needs a spectator node); try one
    // at a time.
    bool changed = false;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (keep[n]) continue;
      Result<PropertyGraph> current = ParseCaseGraph(best_);
      std::optional<NodeId> id = current.value().FindNode(std::string(g.NodeName(n)));
      if (!id.has_value()) continue;
      std::vector<bool> single(current.value().NumNodes(), true);
      single[*id] = false;
      changed |= TryGraph(WithNodeSubset(current.value(), single));
    }
    return changed;
  }

  bool DropConjuncts() {
    if (best_.language != QueryLanguage::kCrpq &&
        best_.language != QueryLanguage::kDlCrpq) {
      return false;
    }
    const RegexDialect dialect = best_.language == QueryLanguage::kDlCrpq
                                     ? RegexDialect::kDl
                                     : RegexDialect::kPlain;
    bool changed = false;
    for (bool retry = true; retry;) {
      retry = false;
      Result<Crpq> q = ParseCrpq(best_.query_text, dialect);
      if (!q.ok() || q.value().atoms.size() <= 1) break;
      for (size_t drop = 0; drop < q.value().atoms.size(); ++drop) {
        Crpq smaller = q.value();
        smaller.atoms.erase(smaller.atoms.begin() + drop);
        // Re-derive the head: only variables the surviving atoms bind.
        std::set<std::string> bound;
        for (const CrpqAtom& atom : smaller.atoms) {
          if (!atom.from.is_constant) bound.insert(atom.from.name);
          if (!atom.to.is_constant) bound.insert(atom.to.name);
          for (const std::string& v : atom.regex->CaptureVariables()) {
            bound.insert(v);
          }
        }
        std::vector<std::string> head;
        for (const std::string& v : smaller.head) {
          if (bound.count(v) != 0) head.push_back(v);
        }
        smaller.head = std::move(head);
        FuzzCase candidate = best_;
        candidate.query_text = smaller.ToString();
        // Self-check: ToString must round-trip (dl printing is the risky
        // part); a non-reparsing candidate fails the verdict anyway, this
        // just saves an oracle run.
        if (!ParseCrpq(candidate.query_text, dialect).ok()) continue;
        if (StillFails(candidate)) {
          best_ = std::move(candidate);
          changed = true;
          retry = true;
          break;
        }
      }
    }
    return changed;
  }

  /// Shrinks the mutation sequence: first try dropping it wholesale (the
  /// failure may be a pure read-path bug), then ops one at a time from the
  /// back (later ops rarely enable earlier ones, so backwards converges
  /// faster on sequences whose prefix carries the bug).
  bool DropMutations() {
    if (best_.mutations.empty()) return false;
    {
      FuzzCase candidate = best_;
      candidate.mutations.clear();
      if (StillFails(candidate)) {
        best_ = std::move(candidate);
        return true;
      }
    }
    bool changed = false;
    for (bool retry = true; retry;) {
      retry = false;
      for (size_t i = best_.mutations.size(); i-- > 0;) {
        FuzzCase candidate = best_;
        candidate.mutations.erase(candidate.mutations.begin() + i);
        if (StillFails(candidate)) {
          best_ = std::move(candidate);
          changed = true;
          retry = true;
          break;
        }
      }
    }
    return changed;
  }

  bool ClearBudgets() {
    if (best_.step_budget == 0 && best_.memory_budget == 0) return false;
    FuzzCase candidate = best_;
    candidate.step_budget = 0;
    candidate.memory_budget = 0;
    if (!StillFails(candidate)) return false;
    best_ = std::move(candidate);
    return true;
  }

  const MinimizeOptions& options_;
  FuzzCase best_;
  std::string target_;
  size_t evaluations_ = 0;
};

std::string SanitizeForTestName(const std::string& s) {
  std::string out;
  bool upper = true;
  for (char ch : s) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      out += upper ? static_cast<char>(
                         std::toupper(static_cast<unsigned char>(ch)))
                   : ch;
      upper = false;
    } else {
      upper = true;
    }
  }
  return out.empty() ? "Divergence" : out;
}

}  // namespace

std::string FirstFailure(const FuzzCase& c, const MinimizeOptions& options) {
  OracleReport report = RunOracle(c, options.oracle);
  if (report.ok() && !c.mutations.empty()) {
    RunMutationOracle(c, options.oracle, &report);
  }
  if (report.ok() && !c.mutations.empty()) {
    RunCrashOracle(c, &report);
  }
  if (report.ok() && options.include_metamorphic) {
    FuzzRng rng = FuzzRng(c.seed).Fork(7);
    RunMetamorphic(c, &rng, options.oracle, &report);
  }
  return report.ok() ? std::string() : report.divergences.front().check;
}

MinimizeResult MinimizeCase(const FuzzCase& failing,
                            const MinimizeOptions& options) {
  return Minimizer(failing, options).Run();
}

std::string EmitRegressionTest(const FuzzCase& c, const std::string& check) {
  std::ostringstream out;
  out << "// Save the case below under tests/corpus/ (replayed by\n"
      << "// fuzz_corpus_test) or paste the TEST into a regression suite.\n"
      << "//\n";
  {
    std::istringstream lines(c.ToText());
    std::string line;
    while (std::getline(lines, line)) out << "// " << line << "\n";
  }
  out << "\n"
      << "TEST(FuzzRegression, " << SanitizeForTestName(check) << "Seed"
      << c.seed << ") {\n"
      << "  Result<fuzz::FuzzCase> parsed = fuzz::ParseFuzzCase(R\"case(\n"
      << c.ToText() << ")case\");\n"
      << "  ASSERT_TRUE(parsed.ok()) << parsed.error().message();\n"
      << "  fuzz::OracleOptions options;  // library-only: no engine\n"
      << "  fuzz::OracleReport report =\n"
      << "      fuzz::RunOracle(parsed.value(), options);\n"
      << "  fuzz::FuzzRng rng = fuzz::FuzzRng(parsed.value().seed).Fork(7);\n"
      << "  fuzz::RunMetamorphic(parsed.value(), &rng, options, &report);\n"
      << "  EXPECT_TRUE(report.ok()) << report.ToString();  // was: " << check
      << "\n"
      << "}\n";
  return out.str();
}

}  // namespace fuzz
}  // namespace gqzoo
