#include "src/fuzz/metamorphic.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "src/automata/nfa.h"
#include "src/coregql/group_eval.h"
#include "src/coregql/pattern_parser.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/crpq/modes.h"
#include "src/datatest/dl_eval.h"
#include "src/fuzz/graph_gen.h"
#include "src/regex/parser.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {
namespace fuzz {

namespace {

std::string CrpqRowString(const EdgeLabeledGraph& g,
                          const std::vector<CrpqValue>& row) {
  std::string out;
  for (const CrpqValue& v : row) {
    if (!out.empty()) out += ", ";
    out += CrpqValueToString(g, v);
  }
  return out;
}

CanonicalResult CanonCrpq(const EdgeLabeledGraph& g, const CrpqResult& r) {
  CanonicalResult canon;
  canon.truncated = r.truncated;
  for (const auto& row : r.rows) canon.rows.push_back(CrpqRowString(g, row));
  std::sort(canon.rows.begin(), canon.rows.end());
  return canon;
}

std::string BindingString(const EdgeLabeledGraph& g, const PathBinding& pb) {
  return pb.path.ToString(g) + " | " + pb.mu.ToString(g);
}

bool IsSubset(const std::vector<std::string>& small,
              const std::vector<std::string>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

Result<CanonicalResult> EvalCanonical(const PropertyGraph& g,
                                      const FuzzCase& c,
                                      const OracleOptions& options) {
  CanonicalResult canon;
  switch (c.language) {
    case QueryLanguage::kRpq: {
      Result<RegexPtr> regex =
          ParseRegex(c.query_text, RegexDialect::kPlain);
      if (!regex.ok()) return regex.error();
      Nfa nfa = Nfa::FromRegex(*regex.value(), g.skeleton());
      for (const auto& [u, v] : EvalRpq(g.skeleton(), nfa)) {
        canon.rows.push_back("(" + std::string(g.NodeName(u)) + ", " +
                             std::string(g.NodeName(v)) + ")");
      }
      break;
    }
    case QueryLanguage::kCrpq:
    case QueryLanguage::kDlCrpq: {
      const bool dl = c.language == QueryLanguage::kDlCrpq;
      Result<Crpq> q = ParseCrpq(
          c.query_text, dl ? RegexDialect::kDl : RegexDialect::kPlain);
      if (!q.ok()) return q.error();
      Result<CrpqResult> r = Error(ErrorCode::kGeneric, "unreached");
      if (dl) {
        DlCrpqEvalOptions eval_options;
        eval_options.max_bindings_per_pair = options.max_bindings_per_pair;
        eval_options.max_path_length = options.max_path_length;
        r = EvalDlCrpq(g, q.value(), eval_options);
      } else {
        CrpqEvalOptions eval_options;
        eval_options.max_bindings_per_pair = options.max_bindings_per_pair;
        eval_options.max_path_length = options.max_path_length;
        r = EvalCrpq(g.skeleton(), q.value(), eval_options);
      }
      if (!r.ok()) return r.error();
      return CanonCrpq(g.skeleton(), r.value());
    }
    case QueryLanguage::kCoreGql: {
      CoreQueryEvalOptions eval_options;
      eval_options.path_options.max_results = options.max_results;
      eval_options.path_options.max_path_length = options.max_path_length;
      Result<CoreQueryResult> r = RunCoreGql(g, c.query_text, eval_options);
      if (!r.ok()) return r.error();
      canon.truncated = r.value().truncated;
      for (const auto& row : r.value().relation.rows()) {
        std::string line;
        for (const auto& cell : row) {
          if (!line.empty()) line += ", ";
          line += CoreCellToString(g.skeleton(), cell);
        }
        canon.rows.push_back(std::move(line));
      }
      break;
    }
    case QueryLanguage::kGqlGroup: {
      Result<CorePatternPtr> pattern = ParseCorePattern(c.query_text);
      if (!pattern.ok()) return pattern.error();
      CorePathEvalOptions eval_options;
      eval_options.max_results = options.max_results;
      eval_options.max_path_length = options.max_path_length;
      Result<GqlEvalResult> r =
          EvalGqlGroupPattern(g, *pattern.value(), eval_options);
      if (!r.ok()) return r.error();
      canon.truncated = r.value().truncated;
      for (const GqlPathRow& row : r.value().rows) {
        std::string line = row.path.ToString(g.skeleton());
        for (const auto& [var, value] : row.mu) {
          line += " | " + var + " -> " + value.ToString(g.skeleton());
        }
        canon.rows.push_back(std::move(line));
      }
      break;
    }
    case QueryLanguage::kPaths: {
      // Engine dialect order: dl first, then plain (see plan.cc).
      Result<RegexPtr> dl = ParseRegex(c.query_text, RegexDialect::kDl);
      std::optional<NodeId> u = g.FindNode(c.paths_from);
      std::optional<NodeId> v = g.FindNode(c.paths_to);
      if (!u.has_value() || !v.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown endpoint node");
      }
      EnumerationLimits limits;
      limits.max_results = options.max_results;
      limits.max_length = options.max_path_length;
      EnumerationStats stats;
      std::vector<PathBinding> paths;
      if (dl.ok()) {
        DlNfa nfa = DlNfa::FromRegex(*dl.value(), g);
        paths = DlEvaluator(g, nfa).CollectModePaths(*u, *v, c.paths_mode,
                                                     limits, &stats);
      } else {
        Result<RegexPtr> plain =
            ParseRegex(c.query_text, RegexDialect::kPlain);
        if (!plain.ok()) return plain.error();
        Nfa nfa = Nfa::FromRegex(*plain.value(), g.skeleton());
        if (nfa.HasInverse()) {
          return Error(ErrorCode::kInvalidArgument,
                       "path enumeration requires a one-way regex");
        }
        paths = CollectModePaths(g.skeleton(), nfa, *u, *v, c.paths_mode,
                                 limits, &stats);
      }
      canon.truncated = stats.truncated;
      for (const PathBinding& pb : paths) {
        canon.rows.push_back(BindingString(g.skeleton(), pb));
      }
      break;
    }
    case QueryLanguage::kRegular:
      return Error(ErrorCode::kInvalidArgument,
                   "regular queries have no canonical harness evaluation");
  }
  std::sort(canon.rows.begin(), canon.rows.end());
  return canon;
}

std::string RenameLabelsInQuery(
    const std::string& text,
    const std::map<std::string, std::string>& rename) {
  std::string out;
  size_t i = 0;
  auto is_ident = [](char ch) {
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
  };
  while (i < text.size()) {
    if (!is_ident(text[i])) {
      out += text[i++];
      continue;
    }
    size_t j = i;
    while (j < text.size() && is_ident(text[j])) ++j;
    std::string token = text.substr(i, j - i);
    auto it = rename.find(token);
    out += it == rename.end() ? token : it->second;
    i = j;
  }
  return out;
}

namespace {

class MetamorphicRun {
 public:
  MetamorphicRun(const FuzzCase& c, FuzzRng* rng,
                 const OracleOptions& options, const PropertyGraph& g,
                 OracleReport* report)
      : c_(c), rng_(rng), options_(options), g_(g), report_(report) {}

  void Run(const CanonicalResult& base) {
    CheckLabelRename(base);
    CheckDisjointUnion(base);
    CheckConjunctPermutation();
    CheckEdgeAddition(base);
    CheckUnionIdempotence(base);
  }

 private:
  void Fail(const std::string& check, const std::string& detail) {
    std::string brief = detail;
    if (brief.size() > 400) {
      brief.resize(400);
      brief += "...";
    }
    report_->Add(check, brief);
  }

  void Count() { ++report_->checks; }

  /// Compares a transformed run against expected rows; a transformed-side
  /// error or truncation is itself a violation (the base run was complete
  /// and the transformation preserves the result size or shrinks limits
  /// never).
  void ExpectEqual(const char* check, const Result<CanonicalResult>& got,
                   const std::vector<std::string>& want) {
    Count();
    if (!got.ok()) {
      Fail(check, "transformed run failed: " + got.error().message());
      return;
    }
    if (got.value().truncated) return;  // limit interaction: inconclusive
    if (got.value().rows != want) {
      Fail(check, std::to_string(want.size()) + " rows expected, got " +
                      std::to_string(got.value().rows.size()));
    }
  }

  void CheckLabelRename(const CanonicalResult& base) {
    std::map<std::string, std::string> rename;
    size_t next = 0;
    for (const std::string& label : LabelAlphabet(6)) {
      rename[label] = "lr" + std::to_string(next++);
    }
    for (LabelId l = 0; l < g_.skeleton().NumLabels(); ++l) {
      const std::string& label = g_.skeleton().LabelName(l);
      if (rename.count(label) == 0) {
        rename[label] = "lr" + std::to_string(next++);
      }
    }
    FuzzCase renamed = c_;
    renamed.query_text = RenameLabelsInQuery(c_.query_text, rename);
    ExpectEqual("meta.label-rename",
                EvalCanonical(RenameEdgeLabels(g_, rename), renamed, options_),
                base.rows);
  }

  void CheckDisjointUnion(const CanonicalResult& base) {
    // CRPQ atoms need not share variables, so a cross product can mix the
    // two components and no simple identity holds; skip those.
    if (c_.language == QueryLanguage::kCrpq ||
        c_.language == QueryLanguage::kDlCrpq) {
      return;
    }
    PropertyGraph doubled = DisjointUnion(g_, g_, "u_");
    Result<CanonicalResult> got = EvalCanonical(doubled, c_, options_);
    Count();
    if (!got.ok()) {
      Fail("meta.disjoint-union",
           "union run failed: " + got.error().message());
      return;
    }
    if (got.value().truncated) return;
    switch (c_.language) {
      case QueryLanguage::kPaths:
        // Endpoints live in the first component; a disjoint second
        // component cannot contribute or remove paths.
        if (got.value().rows != base.rows) {
          Fail("meta.disjoint-union",
               "paths changed: " + std::to_string(base.rows.size()) +
                   " -> " + std::to_string(got.value().rows.size()));
        }
        break;
      case QueryLanguage::kRpq:
      case QueryLanguage::kGqlGroup:
        // Components are isomorphic and answers name graph elements, so
        // the answer set doubles exactly.
        if (!IsSubset(base.rows, got.value().rows) ||
            got.value().rows.size() != 2 * base.rows.size()) {
          Fail("meta.disjoint-union",
               std::to_string(base.rows.size()) + " rows should double, got " +
                   std::to_string(got.value().rows.size()));
        }
        break;
      case QueryLanguage::kCoreGql:
        // Property-valued rows (x.k) from the two components dedupe under
        // set semantics: only a superset is guaranteed.
        if (!IsSubset(base.rows, got.value().rows)) {
          Fail("meta.disjoint-union", "union result lost base rows");
        }
        break;
      default:
        break;
    }
  }

  void CheckConjunctPermutation() {
    if (c_.language != QueryLanguage::kCrpq &&
        c_.language != QueryLanguage::kDlCrpq) {
      return;
    }
    const bool dl = c_.language == QueryLanguage::kDlCrpq;
    Result<Crpq> q = ParseCrpq(
        c_.query_text, dl ? RegexDialect::kDl : RegexDialect::kPlain);
    if (!q.ok() || q.value().atoms.size() < 2) return;

    Crpq shuffled = q.value();
    for (size_t i = shuffled.atoms.size(); i > 1; --i) {
      std::swap(shuffled.atoms[i - 1], shuffled.atoms[rng_->Index(i)]);
    }

    auto eval = [&](const Crpq& query) -> Result<CrpqResult> {
      if (dl) {
        DlCrpqEvalOptions eval_options;
        eval_options.max_bindings_per_pair = options_.max_bindings_per_pair;
        eval_options.max_path_length = options_.max_path_length;
        return EvalDlCrpq(g_, query, eval_options);
      }
      CrpqEvalOptions eval_options;
      eval_options.max_bindings_per_pair = options_.max_bindings_per_pair;
      eval_options.max_path_length = options_.max_path_length;
      return EvalCrpq(g_.skeleton(), query, eval_options);
    };

    Result<CrpqResult> first = eval(q.value());
    Result<CrpqResult> second = eval(shuffled);
    Count();
    if (first.ok() != second.ok()) {
      Fail("meta.conjunct-permutation",
           first.ok() ? "permuted atoms failed: " + second.error().message()
                      : "original failed but permutation succeeded");
      return;
    }
    if (!first.ok()) return;  // same error either way: fine
    if (first.value().truncated || second.value().truncated) return;
    CanonicalResult a = CanonCrpq(g_.skeleton(), first.value());
    CanonicalResult b = CanonCrpq(g_.skeleton(), second.value());
    if (a.rows != b.rows) {
      Fail("meta.conjunct-permutation",
           std::to_string(a.rows.size()) + " rows vs " +
               std::to_string(b.rows.size()) + " after atom shuffle");
    }
  }

  void CheckEdgeAddition(const CanonicalResult& base) {
    if (c_.language != QueryLanguage::kRpq || g_.NumNodes() == 0) return;
    const NodeId src = static_cast<NodeId>(rng_->Index(g_.NumNodes()));
    const NodeId tgt = static_cast<NodeId>(rng_->Index(g_.NumNodes()));
    std::vector<std::string> alphabet = LabelAlphabet(6);
    const std::string& label = alphabet[rng_->Index(alphabet.size())];
    Result<CanonicalResult> got =
        EvalCanonical(WithExtraEdge(g_, src, tgt, label), c_, options_);
    Count();
    if (!got.ok()) {
      Fail("meta.edge-addition", "grown graph failed: " + got.error().message());
      return;
    }
    if (got.value().truncated) return;
    if (!IsSubset(base.rows, got.value().rows)) {
      Fail("meta.edge-addition",
           "adding edge " + std::string(g_.NodeName(src)) + " -[" + label +
               "]-> " + std::string(g_.NodeName(tgt)) + " removed answers (" +
               std::to_string(base.rows.size()) + " -> " +
               std::to_string(got.value().rows.size()) + ")");
    }
  }

  void CheckUnionIdempotence(const CanonicalResult& base) {
    if (c_.language != QueryLanguage::kRpq) return;
    FuzzCase doubled = c_;
    doubled.query_text =
        "(" + c_.query_text + ")|(" + c_.query_text + ")";
    ExpectEqual("meta.union-idempotence",
                EvalCanonical(g_, doubled, options_), base.rows);
  }

  const FuzzCase& c_;
  FuzzRng* rng_;
  const OracleOptions& options_;
  const PropertyGraph& g_;
  OracleReport* report_;
};

}  // namespace

void RunMetamorphic(const FuzzCase& c, FuzzRng* rng,
                    const OracleOptions& options, OracleReport* report) {
  if (c.language == QueryLanguage::kRegular) return;
  Result<PropertyGraph> g = ParseCaseGraph(c);
  if (!g.ok()) return;
  Result<CanonicalResult> base = EvalCanonical(g.value(), c, options);
  // Properties reason about complete answers of well-formed queries; the
  // oracle owns error and truncation behavior.
  if (!base.ok() || base.value().truncated) return;
  MetamorphicRun(c, rng, options, g.value(), report).Run(base.value());
}

}  // namespace fuzz
}  // namespace gqzoo
