#ifndef GQZOO_FUZZ_MINIMIZE_H_
#define GQZOO_FUZZ_MINIMIZE_H_

#include <string>

#include "src/fuzz/fuzz_case.h"
#include "src/fuzz/oracle.h"

namespace gqzoo {
namespace fuzz {

struct MinimizeOptions {
  /// Oracle configuration the verdict re-runs under; should match the
  /// options of the run that found the failure or the verdict may not
  /// reproduce.
  OracleOptions oracle;
  /// Also re-run the metamorphic properties when judging a candidate
  /// (needed when the original failure was a "meta.*" check).
  bool include_metamorphic = true;
  /// Reduction passes over the whole case; each pass is a fixpoint
  /// iteration of edge-ddmin + node pruning + conjunct dropping.
  size_t max_rounds = 6;
};

struct MinimizeResult {
  FuzzCase reduced;
  /// The check name the reduced case still fails (the verdict pins the
  /// original failure's check so the search cannot drift to a different
  /// bug mid-reduction).
  std::string check;
  size_t evaluations = 0;  // verdict runs spent
  bool reproduced = false;  // original case failed under the verdict at all
};

/// Shrinks a failing case with delta debugging while preserving "fails the
/// same check":
///
///   edges      ddmin over the edge set (chunked removal with granularity
///              doubling, the classic algorithm);
///   nodes      drop nodes that end up isolated and are not referenced by
///              the query (as `@name` constants or path endpoints);
///   conjuncts  for (dl-)CRPQs, drop atoms one at a time, re-deriving the
///              head from the surviving variables;
///   budgets    clear injected budgets if the failure persists without
///              them (an ungoverned repro is strictly more useful).
///
/// Candidates are validated by re-running the oracle (and, optionally, the
/// metamorphic suite) — a candidate whose graph or query no longer parses
/// simply fails the verdict and is discarded, so every reduction step is
/// self-checking.
MinimizeResult MinimizeCase(const FuzzCase& failing,
                            const MinimizeOptions& options);

/// First failing check of `c` under `options` ("" when the case passes).
/// Exposed for tests and for the CLI's verdict print-out.
std::string FirstFailure(const FuzzCase& c, const MinimizeOptions& options);

/// Renders a ready-to-paste GoogleTest regression body replaying `c`
/// library-only through the oracle, plus the corpus-file content in a
/// comment header. `check` names the divergence for the test name.
std::string EmitRegressionTest(const FuzzCase& c, const std::string& check);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_MINIMIZE_H_
