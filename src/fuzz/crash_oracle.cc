#include "src/fuzz/crash_oracle.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fuzz/mutation_gen.h"
#include "src/graph/delta/delta.h"
#include "src/graph/delta/merge.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"
#include "src/storage/checkpoint.h"
#include "src/storage/wal.h"
#include "src/util/result.h"

namespace gqzoo {
namespace fuzz {

namespace {

std::string RenderDiff(const std::string& a, const std::string& b) {
  size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  const size_t from = i > 20 ? i - 20 : 0;
  return "first difference at byte " + std::to_string(i) + ": \"" +
         a.substr(from, 40) + "\" vs \"" + b.substr(from, 40) + "\"";
}

/// Replays decoded records through the real recovery path (overlay apply +
/// materialize) and renders the result; empty string on replay failure
/// (reported by the caller).
std::string ReplayRender(const std::shared_ptr<const PropertyGraph>& base,
                         const std::vector<storage::WalRecord>& records,
                         std::string* error) {
  DeltaOverlay overlay(base);
  for (const storage::WalRecord& record : records) {
    MutationBatch batch;
    batch.ops = record.ops;
    Result<size_t> applied = overlay.Apply(batch, nullptr, nullptr);
    if (!applied.ok()) {
      *error = "record lsn " + std::to_string(record.lsn) +
               " did not replay: " + applied.error().message();
      return std::string();
    }
  }
  return PropertyGraphToText(GraphDeltaMerger::Materialize(overlay));
}

}  // namespace

void RunCrashOracle(const FuzzCase& c, OracleReport* report) {
  if (c.mutations.empty()) return;
  Result<PropertyGraph> parsed = ParseCaseGraph(c);
  if (!parsed.ok()) return;  // graph parse parity is the main oracle's job

  auto base =
      std::make_shared<const PropertyGraph>(std::move(parsed).value());
  GraphSim sim(*base);

  // Acked-batch ledger: every op the write path would accept becomes one
  // WAL record (encoded by the real encoder), and the simulator's render
  // after it is the exact state a crash after that ack must recover.
  std::string wal = storage::WalFileHeader();
  std::vector<size_t> boundaries = {wal.size()};
  std::vector<std::string> snapshots = {PropertyGraphToText(sim.Build())};
  size_t n = 0;
  for (const MutationOp& op : c.mutations) {
    if (!sim.Apply(op).ok()) continue;  // rejected ops are never logged
    storage::AppendWalRecord(&wal, ++n, {op});
    boundaries.push_back(wal.size());
    snapshots.push_back(PropertyGraphToText(sim.Build()));
  }
  if (n == 0) return;

  // The undamaged image decodes clean and replays to the final state.
  {
    Result<storage::WalDecodeResult> d = storage::DecodeWal(wal);
    ++report->checks;
    if (!d.ok()) {
      report->Add("crash.wal-roundtrip",
                  "clean log failed to decode: " + d.error().message());
      return;
    }
    if (d.value().tail != storage::WalTail::kClean ||
        d.value().records.size() != n || d.value().valid_bytes != wal.size()) {
      report->Add("crash.wal-roundtrip",
                  "clean log misclassified: " +
                      std::to_string(d.value().records.size()) + "/" +
                      std::to_string(n) + " records, valid_bytes " +
                      std::to_string(d.value().valid_bytes) + "/" +
                      std::to_string(wal.size()));
      return;
    }
    std::string error;
    const std::string replayed = ReplayRender(base, d.value().records, &error);
    ++report->checks;
    if (!error.empty()) {
      report->Add("crash.wal-roundtrip", error);
      return;
    }
    if (replayed != snapshots[n]) {
      report->Add("crash.wal-roundtrip", RenderDiff(replayed, snapshots[n]));
      return;
    }
  }

  // Byte-level truncation sweep: every proper prefix is a possible torn
  // append and must decode to exactly the acked-record prefix before the
  // cut — never kDataLoss, never a half-applied batch.
  size_t boundary_idx = 0;  // index of the last boundary ≤ L
  std::vector<bool> prefix_checked(n + 1, false);
  for (size_t cut = storage::kWalHeaderBytes; cut < wal.size(); ++cut) {
    while (boundaries[boundary_idx + 1] <= cut) ++boundary_idx;
    const bool at_boundary = boundaries[boundary_idx] == cut;
    Result<storage::WalDecodeResult> d =
        storage::DecodeWal(std::string_view(wal).substr(0, cut));
    ++report->checks;
    if (!d.ok()) {
      report->Add("crash.torn-tail-truncate",
                  "truncation to " + std::to_string(cut) +
                      " bytes decoded as data loss: " + d.error().message());
      return;
    }
    const storage::WalDecodeResult& r = d.value();
    const storage::WalTail want_tail =
        at_boundary ? storage::WalTail::kClean : storage::WalTail::kTorn;
    if (r.tail != want_tail || r.records.size() != boundary_idx ||
        r.valid_bytes != boundaries[boundary_idx]) {
      report->Add(
          "crash.torn-tail-truncate",
          "truncation to " + std::to_string(cut) + " bytes: got " +
              std::to_string(r.records.size()) + " records, valid_bytes " +
              std::to_string(r.valid_bytes) + ", tail " +
              (r.tail == storage::WalTail::kClean ? "clean" : "torn") +
              "; want " + std::to_string(boundary_idx) + " records ending at " +
              std::to_string(boundaries[boundary_idx]));
      return;
    }
    // Prefix consistency per distinct boundary (the decode classification
    // above already ran for every byte).
    if (!prefix_checked[boundary_idx]) {
      prefix_checked[boundary_idx] = true;
      std::string error;
      const std::string replayed = ReplayRender(base, r.records, &error);
      ++report->checks;
      if (!error.empty()) {
        report->Add("crash.prefix-consistency", error);
        return;
      }
      if (replayed != snapshots[boundary_idx]) {
        report->Add("crash.prefix-consistency",
                    "prefix of " + std::to_string(boundary_idx) +
                        " records: " +
                        RenderDiff(replayed, snapshots[boundary_idx]));
        return;
      }
    }
  }

  // A flipped payload byte cannot be a torn append when intact records
  // follow it: mid-log damage must refuse to serve, and final-record
  // damage must truncate exactly one record.
  for (size_t victim = 0; victim < n; ++victim) {
    std::string damaged = wal;
    // Offset into the lsn field — always inside the payload.
    damaged[boundaries[victim] + storage::kWalFrameBytes + 1] ^= 0xFF;
    Result<storage::WalDecodeResult> d = storage::DecodeWal(damaged);
    ++report->checks;
    if (victim + 1 < n) {
      if (d.ok() || d.error().code() != ErrorCode::kDataLoss) {
        report->Add("crash.midlog-dataloss",
                    "flipped byte in record " + std::to_string(victim + 1) +
                        "/" + std::to_string(n) + " was not kDataLoss (" +
                        (d.ok() ? "decoded clean" : d.error().message()) + ")");
        return;
      }
    } else {
      if (!d.ok() || d.value().tail != storage::WalTail::kTorn ||
          d.value().records.size() != n - 1 ||
          d.value().valid_bytes != boundaries[n - 1]) {
        report->Add("crash.midlog-dataloss",
                    "flipped byte in the final record must be a torn tail "
                    "cutting exactly that record; got " +
                        (d.ok() ? std::to_string(d.value().records.size()) +
                                      " records"
                                : d.error().message()));
        return;
      }
    }
  }

  // Checkpoint codec: the final state round-trips byte-identically, and a
  // damaged image is kDataLoss (checkpoints are renamed into place whole,
  // so unlike the WAL there is no torn-tail leniency).
  {
    Result<PropertyGraph> final_graph = ParsePropertyGraph(snapshots[n]);
    if (!final_graph.ok()) return;  // render/parse parity is covered above
    // The baseline is the parsed graph's own render, not snapshots[n]:
    // parsing re-interns property ids in text order, and renders list an
    // object's properties pid-sorted, so a property first used on a later
    // object than in the original interning legally swaps render order.
    // The codec contract is an exact roundtrip of the graph it encoded.
    const std::string expected = PropertyGraphToText(final_graph.value());
    const std::string encoded =
        storage::EncodeCheckpoint(final_graph.value(), n);
    Result<storage::CheckpointData> decoded = storage::DecodeCheckpoint(encoded);
    ++report->checks;
    if (!decoded.ok()) {
      report->Add("crash.checkpoint-roundtrip",
                  "checkpoint failed to decode: " + decoded.error().message());
      return;
    }
    const std::string rendered = PropertyGraphToText(decoded.value().graph);
    if (decoded.value().covered_lsn != n || rendered != expected) {
      report->Add("crash.checkpoint-roundtrip", RenderDiff(rendered, expected));
      return;
    }
    std::string damaged = encoded;
    damaged[encoded.size() / 2] ^= 0xFF;
    Result<storage::CheckpointData> corrupt = storage::DecodeCheckpoint(damaged);
    ++report->checks;
    if (corrupt.ok() || corrupt.error().code() != ErrorCode::kDataLoss) {
      report->Add("crash.checkpoint-roundtrip",
                  "flipped checkpoint byte was not kDataLoss");
      return;
    }
    Result<storage::CheckpointData> truncated = storage::DecodeCheckpoint(
        std::string_view(encoded).substr(0, encoded.size() - 1));
    ++report->checks;
    if (truncated.ok() || truncated.error().code() != ErrorCode::kDataLoss) {
      report->Add("crash.checkpoint-roundtrip",
                  "truncated checkpoint was not kDataLoss");
    }
  }
}

}  // namespace fuzz
}  // namespace gqzoo
