#include "src/fuzz/fuzzer.h"

#include <chrono>
#include <sstream>

#include "src/fuzz/crash_oracle.h"
#include "src/fuzz/metamorphic.h"
#include "src/graph/graph_io.h"

namespace gqzoo {
namespace fuzz {

namespace {

/// Languages the harness generates. kRegular is deliberately absent: it
/// mutates a working copy of the graph and has no second substrate to
/// differentiate against (see DESIGN.md).
constexpr QueryLanguage kFuzzedLanguages[] = {
    QueryLanguage::kRpq,     QueryLanguage::kCrpq,
    QueryLanguage::kDlCrpq,  QueryLanguage::kCoreGql,
    QueryLanguage::kGqlGroup, QueryLanguage::kPaths,
};

}  // namespace

FuzzStats::FuzzStats() : by_language(kNumQueryLanguages, 0) {}

std::string FuzzStats::ToString() const {
  std::ostringstream out;
  out << cases_run << " cases, " << checks << " checks, " << divergent_cases
      << " divergent";
  if (cases_run > 0) {
    out << "; query parse rate " << (100 * queries_parsed / cases_run) << "%";
  }
  out << "; by language:";
  for (size_t i = 0; i < by_language.size(); ++i) {
    if (by_language[i] == 0) continue;
    out << " " << QueryLanguageName(static_cast<QueryLanguage>(i)) << "="
        << by_language[i];
  }
  return out.str();
}

FuzzCase GenCase(uint64_t case_seed, const FuzzerOptions& options) {
  FuzzCase c;
  c.seed = case_seed;
  FuzzRng rng(case_seed);

  c.language = options.only_language.value_or(
      kFuzzedLanguages[rng.Index(sizeof(kFuzzedLanguages) /
                                 sizeof(kFuzzedLanguages[0]))]);

  FuzzRng graph_rng = rng.Fork(1);
  std::vector<std::string> labels;
  PropertyGraph g = GenGraph(&graph_rng, options.graph, nullptr, &labels);
  c.graph_text = PropertyGraphToText(g);

  // Query generation may use one label beyond the graph's alphabet so that
  // match-nothing atoms show up.
  std::vector<std::string> query_labels = labels;
  if (query_labels.size() < 6 && rng.Percent(25)) {
    query_labels = LabelAlphabet(query_labels.size() + 1);
  }
  FuzzRng query_rng = rng.Fork(2);
  c.query_text =
      GenQueryText(&query_rng, c.language, g, query_labels, options.query,
                   &c.paths_from, &c.paths_to, &c.paths_mode);

  FuzzRng budget_rng = rng.Fork(3);
  if (budget_rng.Percent(options.budget_percent)) {
    if (budget_rng.Percent(70)) {
      c.step_budget = budget_rng.Range(50, 5000);
    } else {
      c.memory_budget = budget_rng.Range(1 << 12, 1 << 20);
    }
  }

  FuzzRng mutation_rng = rng.Fork(4);
  if (mutation_rng.Percent(options.mutation_percent)) {
    c.mutations = GenMutations(&mutation_rng, g, labels, options.mutation);
  }
  return c;
}

FuzzRunResult RunFuzzer(const FuzzerOptions& options, std::ostream* log) {
  FuzzRunResult result;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(options.time_budget_ms);

  for (size_t i = 0; i < options.num_cases; ++i) {
    if (options.only_case.has_value() && i != *options.only_case) continue;
    if (options.time_budget_ms != 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      if (log != nullptr) {
        *log << "time budget reached after " << result.stats.cases_run
             << " cases\n";
      }
      break;
    }

    const uint64_t case_seed = CaseSeed(options.seed, i);
    FuzzCase c = GenCase(case_seed, options);
    ++result.stats.cases_run;
    ++result.stats.by_language[static_cast<size_t>(c.language)];

    OracleReport report = RunOracle(c, options.oracle);
    if (report.parsed) ++result.stats.queries_parsed;
    if (report.ok() && !c.mutations.empty()) {
      RunMutationOracle(c, options.oracle, &report);
    }
    if (report.ok() && !c.mutations.empty()) {
      RunCrashOracle(c, &report);
    }
    if (report.ok() && options.metamorphic) {
      FuzzRng meta_rng = FuzzRng(c.seed).Fork(7);
      RunMetamorphic(c, &meta_rng, options.oracle, &report);
    }
    result.stats.checks += report.checks;

    if (!report.ok()) {
      ++result.stats.divergent_cases;
      FuzzFailure failure;
      failure.case_index = i;
      failure.original = c;
      failure.minimized = c;
      failure.check = report.divergences.front().check;
      failure.detail = report.divergences.front().detail;
      if (log != nullptr) {
        *log << "case " << i << " (seed " << case_seed << ") FAILED ["
             << failure.check << "] " << failure.detail << "\n";
      }
      if (options.minimize) {
        MinimizeOptions minimize_options;
        minimize_options.oracle = options.oracle;
        minimize_options.include_metamorphic = options.metamorphic;
        MinimizeResult minimized = MinimizeCase(c, minimize_options);
        if (minimized.reproduced) {
          failure.minimized = minimized.reduced;
          failure.check = minimized.check;
        }
        if (log != nullptr) {
          *log << "minimized (" << minimized.evaluations
               << " verdict runs):\n"
               << failure.minimized.ToText();
        }
      }
      result.failures.push_back(std::move(failure));
      if (result.failures.size() >= options.max_failures) {
        if (log != nullptr) {
          *log << "stopping after " << result.failures.size()
               << " failures\n";
        }
        break;
      }
    }

    if (log != nullptr && (i + 1) % 1000 == 0) {
      *log << "... " << (i + 1) << " cases, " << result.stats.checks
           << " checks, " << result.failures.size() << " failures\n";
    }
  }
  return result;
}

}  // namespace fuzz
}  // namespace gqzoo
