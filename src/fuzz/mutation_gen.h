#ifndef GQZOO_FUZZ_MUTATION_GEN_H_
#define GQZOO_FUZZ_MUTATION_GEN_H_

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/fuzz/fuzz_case.h"
#include "src/fuzz/oracle.h"
#include "src/fuzz/rng.h"
#include "src/graph/delta/delta.h"
#include "src/graph/graph.h"
#include "src/util/result.h"

namespace gqzoo {
namespace fuzz {

struct MutationGenOptions {
  size_t min_ops = 2;
  size_t max_ops = 10;
  /// Percent of ops deliberately invalid (unknown subject, duplicate name);
  /// the oracle checks the overlay rejects them with the same code the
  /// reference simulator does, and that they leave no state behind.
  uint64_t invalid_percent = 12;
  /// Percent of labels drawn fresh (outside the graph's alphabet) instead
  /// of from it — exercises unknown-label-becomes-known invalidation.
  uint64_t fresh_label_percent = 20;
};

/// Reference simulator for the mutation semantics: a deliberately naive
/// reimplementation of the `DeltaOverlay` validity rules on flat vectors,
/// sharing no code with the overlay or the merger. `Build()` constructs the
/// post-mutation graph from scratch in merge-compatible order (surviving
/// base elements first, additions in application order, property names
/// interned base-first) — so if the overlay, the splice-merger, and the
/// compactor are correct, `PropertyGraphToText` of their views is
/// byte-identical to the simulator's rebuild. Any difference is a bug in
/// exactly one of the two implementations.
class GraphSim {
 public:
  explicit GraphSim(const PropertyGraph& base);

  /// Mirrors `DeltaOverlay::ApplyOne`'s validity rules and error codes
  /// (messages are not compared). State changes only on success.
  Result<bool> Apply(const MutationOp& op);

  /// From-scratch rebuild of the current state as a plain graph.
  PropertyGraph Build() const;

  // Generator introspection.
  std::vector<std::string> AliveNodeNames() const;
  std::vector<std::string> AliveEdgeNames() const;
  size_t num_alive_nodes() const { return alive_nodes_; }
  size_t num_alive_edges() const { return alive_edges_; }
  bool ResolvableNode(const std::string& name) const;
  bool ResolvableEdge(const std::string& name) const;

 private:
  struct SimNode {
    std::string name;
    std::string label;
    bool alive = true;
  };
  struct SimEdge {
    std::string name;
    size_t src = 0, tgt = 0;  // indices into nodes_
    std::string label;
    bool alive = true;
  };

  std::optional<size_t> ResolveNodeIdx(const std::string& name) const;
  std::optional<size_t> ResolveEdgeIdx(const std::string& name) const;
  void InternProperty(const std::string& name);

  const PropertyGraph* base_;
  size_t base_nodes_ = 0, base_edges_ = 0;
  std::vector<SimNode> nodes_;  // base records first, additions appended
  std::vector<SimEdge> edges_;
  size_t alive_nodes_ = 0, alive_edges_ = 0;
  /// Latest claimant of each name (additions shadow dead base holders).
  std::unordered_map<std::string, size_t> node_by_name_;
  std::unordered_map<std::string, size_t> edge_by_name_;
  /// Property overrides keyed (is_edge, record index, property name); an
  /// ordered map so Build() is deterministic independent of hash order.
  std::map<std::tuple<bool, size_t, std::string>, Value> overrides_;
  /// Properties not in the base universe, in first-set order (the overlay's
  /// intern order — property *ids* decide rendering order inside `{ }`).
  std::vector<std::string> new_props_;
};

/// Generates a random mutation sequence valid-by-construction against a
/// simulator of `base` (modulo `invalid_percent` deliberately broken ops).
/// Node/edge adds use fresh `w<k>` / `t<k>` names that cannot collide with
/// generator or disjoint-union names.
std::vector<MutationOp> GenMutations(FuzzRng* rng, const PropertyGraph& base,
                                     const std::vector<std::string>& labels,
                                     const MutationGenOptions& options);

/// The delta-vs-rebuild differential oracle. Applies the case's mutation
/// ops one batch each to a `DeltaOverlay` and to a `GraphSim` in lockstep
/// and checks:
///
///   mutation.op-status         overlay and simulator accept/reject each op
///                              with the same error code;
///   mutation.delta-vs-rebuild  the merged overlay view renders
///                              byte-identical to the simulator's
///                              from-scratch rebuild;
///   mutation.compact-vs-merged the compactor's output (log replay against
///                              the base) renders byte-identical to the
///                              merged view — compaction changes nothing a
///                              query can see;
///   mutation.query-on-merged   the case's query evaluates to the same
///                              canonical result over the merged view and
///                              over the rebuilt graph (same error code if
///                              both fail);
///   mutation.monotonic-growth  when every applied op was an addition, the
///                              pre-mutation RPQ answer set is a subset of
///                              the post-mutation one (the edge-addition
///                              monotonicity property, lifted from the
///                              metamorphic suite to the write path).
///
/// Library-level only (no engine needed); never throws — divergences are
/// appended to `report`.
void RunMutationOracle(const FuzzCase& c, const OracleOptions& options,
                       OracleReport* report);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_MUTATION_GEN_H_
