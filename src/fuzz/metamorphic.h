#ifndef GQZOO_FUZZ_METAMORPHIC_H_
#define GQZOO_FUZZ_METAMORPHIC_H_

#include <map>
#include <string>
#include <vector>

#include "src/fuzz/fuzz_case.h"
#include "src/fuzz/oracle.h"
#include "src/fuzz/rng.h"
#include "src/graph/graph.h"
#include "src/util/result.h"

namespace gqzoo {
namespace fuzz {

/// A language-independent canonical form of a query result: one string per
/// row (node/edge *names*, so it is stable under graph rebuilds that
/// preserve names), sorted. Metamorphic properties compare these.
struct CanonicalResult {
  std::vector<std::string> rows;
  bool truncated = false;
};

/// Evaluates the case's query over `g` at the library level and
/// canonicalizes. Errors pass through (callers typically skip the property
/// on error — status parity is the oracle's job, not the metamorphic
/// suite's).
Result<CanonicalResult> EvalCanonical(const PropertyGraph& g,
                                      const FuzzCase& c,
                                      const OracleOptions& options);

/// Replaces whole identifier tokens of `text` per `rename`, leaving every
/// other token (keywords, variables, numbers, punctuation) alone — safe
/// for all query dialects because edge labels are always standalone
/// identifier tokens in each surface syntax.
std::string RenameLabelsInQuery(const std::string& text,
                                const std::map<std::string, std::string>& rename);

/// Runs the metamorphic properties that apply to the case's language:
///
///   label-rename invariance   bijectively rename edge labels in graph and
///                             query: byte-identical canonical result
///                             (all languages);
///   disjoint-union            evaluate over G ⊎ G (copy prefixed "u_"):
///                             kPaths results are unchanged, kRpq and
///                             kGqlGroup results double exactly, kCoreGql
///                             results are a superset (property rows
///                             dedupe under set semantics);
///   conjunct permutation      shuffling CRPQ / dl-CRPQ atoms leaves the
///                             answer set unchanged;
///   edge-addition             adding one edge can only grow an RPQ's
///   monotonicity              answer set;
///   union idempotence         [[R]] = [[(R)|(R)]] for RPQs.
///
/// `rng` drives the random choices (permutation, added edge); divergences
/// are appended to `report` with "meta."-prefixed check names. Properties
/// are skipped (not failed) when the base run errors or truncates — a
/// truncated result set satisfies no algebraic identity.
void RunMetamorphic(const FuzzCase& c, FuzzRng* rng,
                    const OracleOptions& options, OracleReport* report);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_METAMORPHIC_H_
