#ifndef GQZOO_FUZZ_GRAPH_GEN_H_
#define GQZOO_FUZZ_GRAPH_GEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fuzz/rng.h"
#include "src/graph/graph.h"

namespace gqzoo {
namespace fuzz {

/// The graph families the generator draws from — the paper's benchmark
/// shapes (chain / clique / parallel-chain are the Figure-5, 6-clique and
/// blow-up instances) plus unstructured random graphs. Families matter
/// because the historical bugs cluster on them: id overflow needed a dense
/// product (clique × many NFA states), path-mode divergence needs parallel
/// edges (ParallelChain), truncation bugs need diamonds of equal-length
/// alternatives.
enum class GraphFamily : uint8_t {
  kChain = 0,
  kCycle,
  kClique,
  kParallelChain,  // Figure 5: `parallel^n` equally-short s→t paths
  kDiamond,        // layered fan-out/fan-in
  kRandom,         // uniform endpoints, parallel edges allowed
  kSparseRandom,   // Erdős–Rényi-ish, lower density
};

inline constexpr size_t kNumGraphFamilies = 7;

const char* GraphFamilyName(GraphFamily family);

/// Size bounds for generated graphs. Small by default: differential
/// verdicts need the full oracle matrix per case, and tiny graphs shrink
/// counterexamples before the minimizer even runs.
struct GraphGenOptions {
  size_t max_nodes = 10;
  size_t max_edges = 24;
  /// Edge-label alphabet size (labels "a", "b", "c", ...; at most 6).
  size_t max_labels = 3;
  /// Chance (percent) that nodes/edges carry the integer property "k"
  /// (drawn from a small range so data tests hit and miss).
  uint64_t property_percent = 60;
};

/// The edge-label alphabet the generator used for `num_labels` labels —
/// query generation draws its atoms from the same alphabet (including, by
/// design, one label that the graph may not contain, to exercise the
/// match-nothing predicate path).
std::vector<std::string> LabelAlphabet(size_t num_labels);

/// Deterministically generates a property graph from `rng`. Every node gets
/// label "N" or "M"; nodes are named "n0", "n1", ... so queries can use
/// `@nK` constants. `family_out`/`labels_out` (optional) report what was
/// picked so the query generator can agree on the alphabet.
PropertyGraph GenGraph(FuzzRng* rng, const GraphGenOptions& options,
                       GraphFamily* family_out = nullptr,
                       std::vector<std::string>* labels_out = nullptr);

// --- Rebuild-style mutations (graphs are append-only, so every mutation
// --- reconstructs; names and property values are preserved).

/// Renames edge labels through `rename` (identity for labels not in the
/// map). Node labels and properties are untouched.
PropertyGraph RenameEdgeLabels(const PropertyGraph& g,
                               const std::map<std::string, std::string>& rename);

/// Disjoint union: all of `a`, then all of `b` with node/edge names
/// prefixed by `b_prefix` (labels shared — the union is over the same
/// alphabet, which is what the monotonicity properties need).
PropertyGraph DisjointUnion(const PropertyGraph& a, const PropertyGraph& b,
                            const std::string& b_prefix);

/// Keeps exactly the edges whose index has `keep[e]` true (node set and
/// properties preserved). `keep` must have size NumEdges().
PropertyGraph WithEdgeSubset(const PropertyGraph& g,
                             const std::vector<bool>& keep);

/// Drops the nodes whose index has `keep[n]` false, along with their
/// incident edges. `keep` must have size NumNodes().
PropertyGraph WithNodeSubset(const PropertyGraph& g,
                             const std::vector<bool>& keep);

/// Returns `g` plus one extra edge `src -> tgt` with `label`.
PropertyGraph WithExtraEdge(const PropertyGraph& g, NodeId src, NodeId tgt,
                            const std::string& label);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_GRAPH_GEN_H_
