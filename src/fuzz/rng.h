#ifndef GQZOO_FUZZ_RNG_H_
#define GQZOO_FUZZ_RNG_H_

#include <cstdint>
#include <string>

namespace gqzoo {
namespace fuzz {

/// The harness's only randomness source: SplitMix64, fully specified by its
/// 64-bit state. Everything the fuzzer does — graph shapes, query text,
/// substrate schedules — derives from one `uint64_t` seed through this
/// generator, so a failure is reproducible from a single number on any
/// platform (no dependence on std engine or distribution implementations,
/// which the standard leaves underspecified for some distributions).
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits (SplitMix64 step).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n = 0 returns 0. The modulo bias is irrelevant for
  /// fuzzing (and keeping it makes the mapping trivially portable).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return hi <= lo ? lo : lo + Below(hi - lo + 1);
  }

  size_t Index(size_t n) { return static_cast<size_t>(Below(n)); }

  /// True once in `n` draws on average.
  bool OneIn(uint64_t n) { return Below(n) == 0; }

  /// True with probability `percent`/100.
  bool Percent(uint64_t percent) { return Below(100) < percent; }

  /// A decorrelated child generator for an independent decision stream.
  /// Forking by a fixed tag keeps sibling streams stable when one stream
  /// draws a different number of values (generator changes don't cascade).
  FuzzRng Fork(uint64_t stream) const {
    FuzzRng child(state_ ^ (0x632be59bd9b4e019ull * (stream + 1)));
    child.Next();
    return child;
  }

  uint64_t state() const { return state_; }

 private:
  uint64_t state_;
};

/// Derives the per-case seed for case `index` of a run started at `seed`.
/// Exposed so `gqzoo_fuzz --seed=S --case=I` can regenerate exactly one
/// case of a longer run.
inline uint64_t CaseSeed(uint64_t seed, uint64_t index) {
  FuzzRng rng(seed ^ (0xd1342543de82ef95ull * (index + 1)));
  return rng.Next();
}

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_RNG_H_
