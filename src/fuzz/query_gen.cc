#include "src/fuzz/query_gen.h"

#include <cassert>

namespace gqzoo {
namespace fuzz {

namespace {

/// A node name for an endpoint/constant: usually a real node, rarely a
/// missing one (all substrates must agree on the resulting error).
std::string PickNodeName(FuzzRng* rng, const PropertyGraph& g) {
  if (g.NumNodes() == 0 || rng->Percent(5)) return "nope";
  return std::string(g.NodeName(static_cast<NodeId>(rng->Index(g.NumNodes()))));
}

std::string PickLabel(FuzzRng* rng, const std::vector<std::string>& labels) {
  // One slot past the alphabet: a label the graph (probably) lacks, to
  // exercise the match-nothing predicate.
  size_t i = rng->Index(labels.size() + 1);
  return i < labels.size() ? labels[i] : "zz";
}

const char* PickMode(FuzzRng* rng) {
  switch (rng->Index(4)) {
    case 0: return "shortest";
    case 1: return "simple";
    case 2: return "trail";
    default: return "all";
  }
}

std::string GenCoreCondition(FuzzRng* rng,
                             const std::vector<std::string>& vars) {
  const std::string& x = vars[rng->Index(vars.size())];
  switch (rng->Index(5)) {
    case 0: return x + ".k = " + std::to_string(rng->Below(5));
    case 1: return x + ".k < " + std::to_string(rng->Below(5));
    case 2: return x + ".k >= " + std::to_string(rng->Below(5));
    case 3: return x + ":N";
    default: {
      const std::string& y = vars[rng->Index(vars.size())];
      return x + ".k = " + y + ".k";
    }
  }
}

/// `(x)-[e1:a]->(y:N)`-style linear patterns, optionally with a starred
/// group. Returns the pattern and the node variables it binds.
std::string GenCorePattern(FuzzRng* rng,
                           const std::vector<std::string>& labels,
                           std::vector<std::string>* node_vars,
                           size_t* edge_counter) {
  static const char* kNodeVars[] = {"x", "y", "z", "w"};
  std::string out;
  const size_t hops = rng->Range(1, 2);
  for (size_t h = 0; h <= hops; ++h) {
    std::string var = kNodeVars[h];
    node_vars->push_back(var);
    std::string node = "(" + var;
    if (rng->Percent(25)) node += ":" + std::string(rng->Percent(75) ? "N" : "M");
    node += ")";
    out += node;
    if (h == hops) break;
    if (h == 0 && rng->Percent(20)) {
      // A repetition group between the first two named nodes.
      out += " ( ()-[:" + PickLabel(rng, labels) + "]->() )";
      out += rng->Percent(50) ? "*" : "+";
      out += " ";
      continue;
    }
    std::string edge = "-[e" + std::to_string(++*edge_counter);
    if (rng->Percent(80)) edge += ":" + PickLabel(rng, labels);
    edge += "]->";
    out += " " + edge + " ";
  }
  return out;
}

/// A triangle (70%) or 4-clique of single-label forward atoms over
/// distinct variables — the cyclic-core shape the planner replaces with a
/// wcoj group (engine/plan.cc). Labels still go through PickLabel, so
/// match-nothing atoms (which disqualify their conjunct from the group and
/// push the case back to the binary path) stay in the mix, and the head
/// projects a random nonempty variable subset to exercise projection and
/// dedup over wcoj output.
std::string GenCyclicConjuncts(FuzzRng* rng, QueryLanguage language,
                               const std::vector<std::string>& labels) {
  static const char* kVars[] = {"x", "y", "z", "w"};
  const size_t n = rng->Percent(70) ? 3 : 4;
  std::string atoms;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!atoms.empty()) atoms += ", ";
      const std::string label = PickLabel(rng, labels);
      if (language == QueryLanguage::kDlCrpq) {
        atoms += "[" + label + "] (" + kVars[i] + ", " + kVars[j] + ")";
      } else {
        atoms += "(" + label + ")(" + kVars[i] + ", " + kVars[j] + ")";
      }
    }
  }
  std::string head;
  size_t picked = 0;
  for (size_t i = 0; i < n; ++i) {
    // Guarantee nonempty by always keeping the last variable if none made it.
    if (rng->Percent(70) || (picked == 0 && i + 1 == n)) {
      if (picked++ > 0) head += ", ";
      head += kVars[i];
    }
  }
  return "q(" + head + ") := " + atoms;
}

/// The CoreGQL cyclic analogue: comma-joined single-hop patterns forming a
/// triangle or 4-clique, occasionally with a WHERE condition (filters run
/// after the join stage, so they must see identical wcoj/binary output).
std::string GenCyclicCoreGql(FuzzRng* rng,
                             const std::vector<std::string>& labels) {
  static const char* kVars[] = {"x", "y", "z", "w"};
  const size_t n = rng->Percent(70) ? 3 : 4;
  std::vector<std::string> vars(kVars, kVars + n);
  std::string out = "MATCH ";
  bool first = true;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!first) out += ", ";
      first = false;
      out += "(" + vars[i] + ")-[:" + PickLabel(rng, labels) + "]->(" +
             vars[j] + ")";
    }
  }
  if (rng->Percent(30)) out += " WHERE " + GenCoreCondition(rng, vars);
  out += " RETURN ";
  size_t picked = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Percent(70) || (picked == 0 && i + 1 == n)) {
      if (picked++ > 0) out += ", ";
      out += vars[i];
    }
  }
  return out;
}

std::string GenCoreGqlBlock(FuzzRng* rng,
                            const std::vector<std::string>& labels,
                            const std::vector<std::string>& return_items) {
  std::vector<std::string> node_vars;
  size_t edge_counter = 0;
  std::string pattern = GenCorePattern(rng, labels, &node_vars, &edge_counter);
  std::string out = "MATCH " + pattern;
  if (rng->Percent(40)) {
    out += " WHERE " + GenCoreCondition(rng, node_vars);
    if (rng->Percent(25)) {
      out += rng->Percent(50) ? " AND " : " OR ";
      out += GenCoreCondition(rng, node_vars);
    }
  }
  out += " RETURN ";
  for (size_t i = 0; i < return_items.size(); ++i) {
    if (i > 0) out += ", ";
    out += return_items[i];
  }
  return out;
}

std::string GenGqlGroupPattern(FuzzRng* rng,
                               const std::vector<std::string>& labels) {
  // Group-variable semantics shine on repetitions; always include one.
  std::string inner = "()-[z:" + PickLabel(rng, labels) + "]->()";
  std::string rep;
  switch (rng->Index(4)) {
    case 0: rep = "( " + inner + " )*"; break;
    case 1: rep = "( " + inner + " )+"; break;
    case 2: rep = "( " + inner + " ){2}"; break;
    default:
      rep = "( ( " + inner + " ){2} )";
      rep += rng->Percent(50) ? "{2}" : "*";
      break;
  }
  std::string out = "(x) " + rep + " (y)";
  if (rng->Percent(30)) {
    out += " -[w:" + PickLabel(rng, labels) + "]-> (v)";
  }
  return out;
}

}  // namespace

std::string GenRegexText(FuzzRng* rng, const std::vector<std::string>& labels,
                         size_t depth, bool allow_inverse,
                         std::vector<std::string>* capture_names) {
  // Leaf atoms.
  if (depth == 0 || rng->OneIn(3)) {
    std::string atom;
    switch (rng->Index(10)) {
      case 0:
        atom = "_";
        break;
      case 1:
        if (labels.size() >= 2) {
          atom = "!{" + labels[0] + "," + labels[1] + "}";
        } else {
          atom = "!{" + labels[0] + "}";
        }
        break;
      case 2:
        atom = "eps";
        break;
      case 3:
        if (allow_inverse) {
          atom = "~" + PickLabel(rng, labels);
          break;
        }
        [[fallthrough]];
      default:
        atom = PickLabel(rng, labels);
        break;
    }
    if (capture_names != nullptr && atom != "eps" && atom[0] != '!' &&
        rng->Percent(35)) {
      std::string name = "z" + std::to_string(capture_names->size() + 1);
      capture_names->push_back(name);
      atom += "^" + name;
    }
    return atom;
  }
  std::string a = GenRegexText(rng, labels, depth - 1, allow_inverse,
                               capture_names);
  switch (rng->Index(6)) {
    case 0:
      return "(" + a + ") (" +
             GenRegexText(rng, labels, depth - 1, allow_inverse,
                          capture_names) +
             ")";
    case 1:
      return "(" + a + ") | (" +
             GenRegexText(rng, labels, depth - 1, allow_inverse,
                          capture_names) +
             ")";
    case 2:
      return "(" + a + ")*";
    case 3:
      return "(" + a + ")+";
    case 4:
      return "(" + a + ")?";
    default: {
      uint64_t lo = rng->Range(0, 2);
      uint64_t hi = lo + rng->Range(0, 2);
      return "(" + a + "){" + std::to_string(lo) + "," + std::to_string(hi) +
             "}";
    }
  }
}

std::string GenDlRegexText(FuzzRng* rng,
                           const std::vector<std::string>& labels,
                           std::vector<std::string>* capture_names) {
  auto label_atom = [&](bool allow_capture) {
    std::string atom = "[" + PickLabel(rng, labels);
    if (allow_capture && capture_names != nullptr && rng->Percent(40)) {
      std::string name = "z" + std::to_string(capture_names->size() + 1);
      capture_names->push_back(name);
      atom += "^" + name;
    }
    atom += "]";
    return atom;
  };
  const int64_t v = static_cast<int64_t>(rng->Below(5));
  switch (rng->Index(7)) {
    case 0:
      return "( ()" + label_atom(true) + " )+ ()";
    case 1:
      return "( ()" + label_atom(true) + " )* ()";
    case 2:
      return "( ()" + label_atom(false) + " ){" +
             std::to_string(rng->Range(1, 3)) + "} ()";
    case 3:
      // Register chain: strictly increasing edge property k.
      return "()" + label_atom(false) + "[x := k]( ()" + label_atom(false) +
             "[k > x][x := k] )* ()";
    case 4:
      // Node test at the start (property k on nodes).
      return "(k = " + std::to_string(v) + ")( " + label_atom(true) +
             " )+ ()";
    case 5:
      // Edge property test.
      return "( ()" + label_atom(false) + "[k >= " + std::to_string(v) +
             "] )+ ()";
    default:
      return "()" + label_atom(true) + "()" + label_atom(true) + "()";
  }
}

std::string GenQueryText(FuzzRng* rng, QueryLanguage language,
                         const PropertyGraph& g,
                         const std::vector<std::string>& labels,
                         const QueryGenOptions& options,
                         std::string* paths_from, std::string* paths_to,
                         PathMode* paths_mode) {
  assert(!labels.empty());
  switch (language) {
    case QueryLanguage::kRpq:
      return GenRegexText(rng, labels, options.max_regex_depth,
                          /*allow_inverse=*/rng->Percent(40));

    case QueryLanguage::kCrpq:
    case QueryLanguage::kDlCrpq: {
      if (rng->Percent(options.cyclic_percent)) {
        return GenCyclicConjuncts(rng, language, labels);
      }
      static const char* kVars[] = {"x", "y", "z", "w"};
      const size_t num_atoms = rng->Range(1, options.max_atoms);
      std::vector<std::string> endpoint_vars;
      std::vector<std::string> list_vars;
      std::string atoms;
      for (size_t i = 0; i < num_atoms; ++i) {
        if (i > 0) atoms += ", ";
        std::vector<std::string> captures;
        std::string regex;
        if (language == QueryLanguage::kDlCrpq) {
          regex = GenDlRegexText(
              rng, labels, rng->Percent(options.capture_percent)
                               ? &captures
                               : nullptr);
        } else {
          regex = GenRegexText(
              rng, labels, 2, /*allow_inverse=*/rng->Percent(30),
              rng->Percent(options.capture_percent) ? &captures : nullptr);
        }
        // List-variable names must be unique across atoms; suffix by atom.
        std::string suffixed = regex;
        if (!captures.empty()) {
          for (std::string& name : captures) {
            std::string fresh = name + "a" + std::to_string(i + 1);
            size_t pos = 0;
            while ((pos = suffixed.find("^" + name, pos)) !=
                   std::string::npos) {
              suffixed.replace(pos, name.size() + 1, "^" + fresh);
              pos += fresh.size() + 1;
            }
            name = fresh;
            list_vars.push_back(fresh);
          }
        }
        std::string mode;
        if (!captures.empty()) {
          // `all` over a cyclic graph has infinitely many list bindings;
          // weight toward the finite modes but keep `all` in the mix (the
          // truncation path is exactly where divergences hide).
          mode = rng->Percent(60) ? "shortest" : PickMode(rng);
          mode += " ";
        } else if (rng->Percent(20)) {
          mode = std::string(PickMode(rng)) + " ";
        }
        auto term = [&]() -> std::string {
          if (rng->Percent(options.constant_percent)) {
            return "@" + PickNodeName(rng, g);
          }
          std::string var = kVars[rng->Index(4)];
          endpoint_vars.push_back(var);
          return var;
        };
        std::string from = term();
        std::string to = term();
        if (language == QueryLanguage::kDlCrpq) {
          atoms += mode + suffixed + " (" + from + ", " + to + ")";
        } else {
          atoms += mode + "(" + suffixed + ")(" + from + ", " + to + ")";
        }
      }
      // Head: a nonempty subset of the variables we actually used.
      std::vector<std::string> pool = endpoint_vars;
      pool.insert(pool.end(), list_vars.begin(), list_vars.end());
      std::string head;
      if (pool.empty()) {
        head = "";  // boolean query: q() := ...
      } else {
        std::vector<std::string> picked;
        for (const std::string& var : pool) {
          bool already = false;
          for (const std::string& p : picked) already |= (p == var);
          if (!already && (picked.empty() || rng->Percent(60))) {
            picked.push_back(var);
          }
        }
        for (size_t i = 0; i < picked.size(); ++i) {
          if (i > 0) head += ", ";
          head += picked[i];
        }
      }
      return "q(" + head + ") := " + atoms;
    }

    case QueryLanguage::kCoreGql: {
      if (rng->Percent(options.cyclic_percent)) {
        return GenCyclicCoreGql(rng, labels);
      }
      std::vector<std::string> returns;
      returns.push_back("x");
      if (rng->Percent(40)) returns.push_back(rng->Percent(50) ? "y" : "x.k");
      std::string out = GenCoreGqlBlock(rng, labels, returns);
      if (rng->Percent(20)) {
        const char* op = rng->Percent(50)   ? " UNION "
                         : rng->Percent(50) ? " EXCEPT "
                                            : " INTERSECT ";
        out += op + GenCoreGqlBlock(rng, labels, returns);
      }
      return out;
    }

    case QueryLanguage::kGqlGroup:
      return GenGqlGroupPattern(rng, labels);

    case QueryLanguage::kPaths: {
      if (paths_from != nullptr) *paths_from = PickNodeName(rng, g);
      if (paths_to != nullptr) *paths_to = PickNodeName(rng, g);
      if (paths_mode != nullptr) {
        switch (rng->Index(4)) {
          case 0: *paths_mode = PathMode::kShortest; break;
          case 1: *paths_mode = PathMode::kSimple; break;
          case 2: *paths_mode = PathMode::kTrail; break;
          default: *paths_mode = PathMode::kAll; break;
        }
      }
      std::vector<std::string> captures;
      return GenRegexText(rng, labels, 2, /*allow_inverse=*/rng->Percent(30),
                          rng->Percent(30) ? &captures : nullptr);
    }

    case QueryLanguage::kRegular:
      // Regular queries mutate a working copy of the graph and have no
      // snapshot substrate; the harness does not generate them (DESIGN.md).
      return "";
  }
  return "";
}

}  // namespace fuzz
}  // namespace gqzoo
