#ifndef GQZOO_FUZZ_FUZZ_CASE_H_
#define GQZOO_FUZZ_FUZZ_CASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/engine/engine.h"
#include "src/engine/language.h"
#include "src/graph/delta/delta.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"
#include "src/util/result.h"

namespace gqzoo {
namespace fuzz {

/// One generated test case: a property graph (as gqzoo graph text), a query
/// in one of the zoo languages (as surface text), and the execution policy
/// the oracle should inject. Everything is text so a case round-trips
/// through a corpus file and a failing case is a ready-to-commit artifact.
struct FuzzCase {
  /// The per-case seed that generated this case (0 for hand-written
  /// corpus entries). Purely informational after generation.
  uint64_t seed = 0;

  std::string graph_text;  // graph_io text format
  QueryLanguage language = QueryLanguage::kRpq;
  std::string query_text;

  /// kPaths only: endpoints and mode.
  std::string paths_from;
  std::string paths_to;
  PathMode paths_mode = PathMode::kAll;

  /// Injected budgets for the error-parity leg of the oracle (0 = none;
  /// the ungoverned differential legs always run without them).
  uint64_t step_budget = 0;
  uint64_t memory_budget = 0;

  /// Mutation sequence applied before the delta-vs-rebuild differential
  /// oracle (empty = pure-read case). Serialized as one `mutate <op>` line
  /// per op in the shell's mutation syntax.
  std::vector<MutationOp> mutations;

  /// Builds the engine request for this case (no budgets attached).
  QueryRequest ToRequest() const;

  /// Serializes to the corpus file format (parsed back by ParseFuzzCase):
  ///
  ///     # gqzoo fuzz case
  ///     seed 42
  ///     lang crpq
  ///     query q(x, y) := a(x, y), b(y, x)
  ///     budget_steps 500
  ///     graph
  ///     node n0 :N
  ///     edge :a n0 -> n0
  ///     end
  std::string ToText() const;
};

/// Cap on a corpus `.case` file: the graph block is bounded by the graph
/// parser's own cap, plus headroom for headers and mutation lines. Oversized
/// input is rejected up front with kInvalidArgument (no partial parse).
constexpr size_t kMaxFuzzCaseBytes = kMaxGraphTextBytes + (1u << 20);

Result<FuzzCase> ParseFuzzCase(const std::string& text);

/// Parses the case's graph text (convenience; errors mean a corpus file or
/// a minimizer step produced an invalid graph).
Result<PropertyGraph> ParseCaseGraph(const FuzzCase& c);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_FUZZ_CASE_H_
