#ifndef GQZOO_FUZZ_ORACLE_H_
#define GQZOO_FUZZ_ORACLE_H_

#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/fuzz/fuzz_case.h"
#include "src/util/thread_pool.h"

namespace gqzoo {
namespace fuzz {

/// Knobs for one oracle run. The limits are deliberately small: every case
/// runs the full substrate matrix, and small limits keep the per-case cost
/// bounded even on adversarial generated inputs (dense products, nested
/// stars).
struct OracleOptions {
  /// Enumeration caps shared by every leg of a pair (both legs must see
  /// the same limits or truncation itself becomes a false divergence).
  size_t max_results = 80;
  size_t max_path_length = 10;
  size_t max_bindings_per_pair = 200;

  /// Pool + shard count for the serial-vs-sharded RPQ/CRPQ legs. A null
  /// pool still exercises the sharded code path sequentially.
  ThreadPool* pool = nullptr;
  size_t rpq_shards = 3;

  /// Shared engine for the engine-level legs (cold-vs-cached plan,
  /// planner-vs-textual join order, WHERE-pushdown, budget and fail-point
  /// parity). The oracle calls `SetGraph` on it per case. Null skips the
  /// engine matrix (library-only mode, used by some unit tests).
  QueryEngine* engine = nullptr;
  bool engine_checks = true;

  /// Run the governed legs: budget injection (status must be the
  /// ungoverned status or RESOURCE_EXHAUSTED — never a wrong answer) and
  /// fail-point parity across substrates.
  bool error_parity = true;

  /// Cross-check set-semantics RPQ answers against SPARQL-bag counts
  /// (positivity must agree) on small graphs.
  bool bag_checks = true;
};

/// One observed disagreement. `check` is a stable dotted name for the leg
/// pair ("rpq.graph-vs-snapshot", "engine.cold-vs-cached", ...); `detail`
/// is a human-readable explanation, truncated to stay log-friendly.
struct Divergence {
  std::string check;
  std::string detail;
};

/// Outcome of running one case through the whole matrix.
struct OracleReport {
  std::vector<Divergence> divergences;
  /// Individual leg comparisons performed (for throughput reporting).
  size_t checks = 0;
  /// The case's query text parsed at the library level. Cases that fail to
  /// parse still exercise the parse-error-parity legs, but a fuzzer wants
  /// to know its generator's hit rate.
  bool parsed = false;

  bool ok() const { return divergences.empty(); }
  void Add(const std::string& check, const std::string& detail);
  std::string ToString() const;
};

/// Runs `c` through every applicable substrate pair and records any
/// disagreement:
///
///   library level   graph-scan vs CSR-snapshot, serial vs sharded,
///                   rerun determinism, bag-positivity vs set answers,
///                   statistics graph-vs-snapshot, governed-rerun
///                   determinism (same budget => same rows, same cause);
///   engine level    library status vs engine status (same ErrorCode),
///                   cold vs cached plan (byte-identical), planner vs
///                   textual join order, WHERE-pushdown on/off,
///                   budget injection (ungoverned status or
///                   RESOURCE_EXHAUSTED, nothing else), armed fail-points
///                   (expected code or clean completion, on every
///                   substrate).
///
/// Never asserts or throws: all disagreement is data in the report, so the
/// fuzzer can minimize and persist it.
OracleReport RunOracle(const FuzzCase& c, const OracleOptions& options);

}  // namespace fuzz
}  // namespace gqzoo

#endif  // GQZOO_FUZZ_ORACLE_H_
