#include "src/fuzz/oracle.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "src/automata/nfa.h"
#include "src/coregql/group_eval.h"
#include "src/coregql/pattern_parser.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/crpq/modes.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/csr.h"
#include "src/graph/graph_io.h"
#include "src/regex/parser.h"
#include "src/rpq/bag_semantics.h"
#include "src/rpq/cardinality.h"
#include "src/rpq/rpq_eval.h"
#include "src/storage/snapshot_format.h"
#include "src/util/failpoint.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace fuzz {

namespace {

constexpr size_t kMaxDetail = 400;

std::string Brief(std::string s) {
  if (s.size() > kMaxDetail) {
    s.resize(kMaxDetail);
    s += "...";
  }
  return s;
}

std::string PairsBrief(const EdgeLabeledGraph& g,
                       const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  std::ostringstream out;
  out << pairs.size() << " pairs:";
  size_t shown = 0;
  for (const auto& [u, v] : pairs) {
    if (shown++ >= 8) {
      out << " ...";
      break;
    }
    out << " (" << g.NodeName(u) << "," << g.NodeName(v) << ")";
  }
  return out.str();
}

/// Whether the bag-counting semantics covers every atom of `r` (no inverse
/// atoms — the counter walks forward only — and no data tests).
bool BagSafe(const Regex& r) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return true;
    case Regex::Op::kAtom:
      return !r.atom().inverse && !r.atom().is_test() &&
             !r.atom().capture.has_value();
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      return BagSafe(*r.left()) && BagSafe(*r.right());
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      return BagSafe(*r.child());
  }
  return false;
}

ResourceBudgets CaseBudgets(const FuzzCase& c) {
  ResourceBudgets budgets;
  budgets.steps = c.step_budget;
  budgets.memory_bytes = c.memory_budget;
  return budgets;
}

/// What the engine is expected to do with this case, as observed by the
/// library-level run: succeed, or fail with exactly this code.
using ExpectedStatus = std::optional<ErrorCode>;

class OracleRun {
 public:
  OracleRun(const FuzzCase& c, const OracleOptions& options,
            const PropertyGraph& g, OracleReport* report)
      : c_(c),
        options_(options),
        g_(g),
        snap_(g),
        report_(report) {}

  void Run() {
    CheckMappedEpoch();
    ExpectedStatus expected;
    switch (c_.language) {
      case QueryLanguage::kRpq: expected = CheckRpq(); break;
      case QueryLanguage::kCrpq: expected = CheckCrpq(); break;
      case QueryLanguage::kDlCrpq: expected = CheckDlCrpq(); break;
      case QueryLanguage::kCoreGql: expected = CheckCoreGql(); break;
      case QueryLanguage::kGqlGroup: expected = CheckGqlGroup(); break;
      case QueryLanguage::kPaths: expected = CheckPaths(); break;
      case QueryLanguage::kRegular:
        // No second substrate to compare against (regular queries mutate a
        // working copy of the graph); the harness does not generate these.
        return;
    }
    CheckEngine(expected);
  }

 private:
  bool Check(bool agree, const std::string& check, const std::string& detail) {
    ++report_->checks;
    if (!agree) report_->Add(check, Brief(detail));
    return agree;
  }

  /// Serialize -> mmap -> query: round-trip the case graph through the
  /// on-disk snapshot format and reconstitute an epoch served by mapped
  /// accessors. Any encode/open failure or render difference is a
  /// divergence; on success every language check gains a graph-vs-mapped
  /// leg evaluated over the mapped graph + mapped CSR snapshot.
  void CheckMappedEpoch() {
    Result<storage::SnapshotFile> file = storage::SnapshotFile::FromBytes(
        storage::SnapshotCodec::EncodeSnapshot(g_, 0));
    Result<storage::MappedGraph> m =
        file.ok() ? storage::SnapshotCodec::Open(std::move(file).value())
                  : file.error();
    ++report_->checks;
    if (!m.ok()) {
      report_->Add("mapped.open",
                   Brief("snapshot round-trip failed: " + m.error().message()));
      return;
    }
    mapped_ = std::move(m).value();
    have_mapped_ =
        Check(PropertyGraphToText(*mapped_.graph) == PropertyGraphToText(g_),
              "mapped.render",
              "mapped epoch renders differently from the source graph");
  }

  // --- Library-level matrices, one per language. Each returns the status
  // --- the engine must reproduce for the same case.

  ExpectedStatus CheckRpq() {
    Result<RegexPtr> parsed = ParseRegex(c_.query_text, RegexDialect::kPlain);
    if (!parsed.ok()) return ErrorCode::kParse;
    report_->parsed = true;
    const Regex& regex = *parsed.value();
    Nfa nfa = Nfa::FromRegex(regex, g_.skeleton());

    const auto base = EvalRpq(g_.skeleton(), nfa);
    const auto from_snapshot = EvalRpq(snap_, nfa);
    Check(base == from_snapshot, "rpq.graph-vs-snapshot",
          "graph: " + PairsBrief(g_.skeleton(), base) +
              " | snapshot: " + PairsBrief(g_.skeleton(), from_snapshot));
    if (have_mapped_) {
      const auto from_mapped = EvalRpq(*mapped_.snapshot, nfa);
      Check(base == from_mapped, "rpq.graph-vs-mapped",
            "graph: " + PairsBrief(g_.skeleton(), base) +
                " | mapped: " + PairsBrief(g_.skeleton(), from_mapped));
    }

    ParallelRpqOptions par;
    par.pool = options_.pool;
    par.num_shards = options_.rpq_shards;
    const auto sharded = EvalRpqParallel(snap_, nfa, par);
    Check(base == sharded, "rpq.serial-vs-sharded",
          "serial: " + PairsBrief(g_.skeleton(), base) +
              " | sharded: " + PairsBrief(g_.skeleton(), sharded));

    Check(base == EvalRpq(g_.skeleton(), nfa), "rpq.rerun-determinism",
          "two ungoverned runs returned different relations");

    CheckStatistics();

    const double est_graph =
        EstimateRpqCardinalitySampling(g_.skeleton(), nfa, 4, c_.seed);
    const double est_snap =
        EstimateRpqCardinalitySampling(snap_, nfa, 4, c_.seed);
    Check(est_graph == est_snap, "rpq.sampling-graph-vs-snapshot",
          "graph est " + std::to_string(est_graph) + " vs snapshot est " +
              std::to_string(est_snap));

    if (options_.bag_checks && g_.NumNodes() <= 8 && BagSafe(regex)) {
      for (NodeId u = 0; u < g_.NumNodes(); ++u) {
        for (NodeId v = 0; v < g_.NumNodes(); ++v) {
          const BigUint count_graph = BagCount(regex, g_.skeleton(), u, v);
          const BigUint count_snap = BagCount(regex, snap_, u, v);
          if (!Check(count_graph == count_snap, "bag.graph-vs-snapshot",
                     "(" + std::string(g_.NodeName(u)) + "," +
                         std::string(g_.NodeName(v)) + "): graph " + count_graph.ToString() +
                         " vs snapshot " + count_snap.ToString())) {
            return std::nullopt;  // one report per case is enough
          }
          const bool in_set = std::binary_search(
              base.begin(), base.end(), std::make_pair(u, v));
          if (!Check(!count_graph.is_zero() == in_set,
                     "bag.positivity-vs-set",
                     "(" + std::string(g_.NodeName(u)) + "," +
                         std::string(g_.NodeName(v)) + "): bag count " + count_graph.ToString() +
                         " but set membership " +
                         (in_set ? "true" : "false"))) {
            return std::nullopt;
          }
        }
      }
    }

    if (c_.step_budget != 0 || c_.memory_budget != 0) {
      QueryContext ctx1, ctx2;
      ctx1.set_budgets(CaseBudgets(c_));
      ctx2.set_budgets(CaseBudgets(c_));
      const auto run1 = EvalRpq(g_.skeleton(), nfa, &ctx1);
      const auto run2 = EvalRpq(g_.skeleton(), nfa, &ctx2);
      Check(run1 == run2 && ctx1.stop_cause() == ctx2.stop_cause(),
            "rpq.governed-determinism",
            std::string("same budget, different outcome: ") +
                StopCauseName(ctx1.stop_cause()) + "/" +
                std::to_string(run1.size()) + " vs " +
                StopCauseName(ctx2.stop_cause()) + "/" +
                std::to_string(run2.size()));
    }
    return std::nullopt;
  }

  void CheckStatistics() {
    const GraphStatistics stats_graph(g_.skeleton());
    const GraphStatistics stats_snap(snap_);
    for (LabelId l = 0; l < g_.skeleton().NumLabels(); ++l) {
      const bool agree =
          stats_graph.EdgeCount(l) == stats_snap.EdgeCount(l) &&
          stats_graph.DistinctSources(l) == stats_snap.DistinctSources(l) &&
          stats_graph.DistinctTargets(l) == stats_snap.DistinctTargets(l);
      Check(agree, "stats.graph-vs-snapshot",
            "label '" + g_.skeleton().LabelName(l) + "': (" +
                std::to_string(stats_graph.EdgeCount(l)) + "," +
                std::to_string(stats_graph.DistinctSources(l)) + "," +
                std::to_string(stats_graph.DistinctTargets(l)) + ") vs (" +
                std::to_string(stats_snap.EdgeCount(l)) + "," +
                std::to_string(stats_snap.DistinctSources(l)) + "," +
                std::to_string(stats_snap.DistinctTargets(l)) + ")");
    }
  }

  /// Shared shape for the three conjunctive languages: compare a base run
  /// against variants, all through CrpqResult.
  ExpectedStatus CompareCrpqRuns(
      const char* prefix, const Result<CrpqResult>& base,
      const std::vector<std::pair<const char*, Result<CrpqResult>>>&
          variants) {
    for (const auto& [name, variant] : variants) {
      const std::string check = std::string(prefix) + "." + name;
      if (base.ok() != variant.ok()) {
        Check(false, check,
              base.ok()
                  ? "base succeeded but variant failed: " +
                        variant.error().message()
                  : "base failed but variant succeeded: " +
                        base.error().message());
        continue;
      }
      if (!base.ok()) {
        Check(base.error().code() == variant.error().code(), check,
              std::string("error codes differ: ") +
                  ErrorCodeName(base.error().code()) + " vs " +
                  ErrorCodeName(variant.error().code()));
        continue;
      }
      Check(base.value().ToString(g_.skeleton()) ==
                    variant.value().ToString(g_.skeleton()) &&
                base.value().truncated == variant.value().truncated,
            check,
            "base:\n" + base.value().ToString(g_.skeleton()) +
                (base.value().truncated ? "(truncated)\n" : "") +
                "variant:\n" + variant.value().ToString(g_.skeleton()) +
                (variant.value().truncated ? "(truncated)\n" : ""));
    }
    if (!base.ok()) return base.error().code();
    return std::nullopt;
  }

  ExpectedStatus CheckCrpq() {
    Result<Crpq> q = ParseCrpq(c_.query_text, RegexDialect::kPlain);
    if (!q.ok()) return ErrorCode::kParse;
    report_->parsed = true;

    CrpqEvalOptions base_options;
    base_options.max_bindings_per_pair = options_.max_bindings_per_pair;
    base_options.max_path_length = options_.max_path_length;
    Result<CrpqResult> base = EvalCrpq(g_.skeleton(), q.value(), base_options);

    CrpqEvalOptions snap_options = base_options;
    snap_options.snapshot = &snap_;
    CrpqEvalOptions sharded_options = snap_options;
    sharded_options.pool = options_.pool;
    sharded_options.num_shards = options_.rpq_shards;

    std::vector<std::pair<const char*, Result<CrpqResult>>> variants;
    variants.emplace_back("graph-vs-snapshot",
                          EvalCrpq(g_.skeleton(), q.value(), snap_options));
    variants.emplace_back("serial-vs-sharded",
                          EvalCrpq(g_.skeleton(), q.value(), sharded_options));
    variants.emplace_back("rerun-determinism",
                          EvalCrpq(g_.skeleton(), q.value(), base_options));
    CrpqEvalOptions batch_options = base_options;
    batch_options.use_batch = true;
    variants.emplace_back("row-vs-batch",
                          EvalCrpq(g_.skeleton(), q.value(), batch_options));
    if (have_mapped_) {
      CrpqEvalOptions mapped_options = base_options;
      mapped_options.snapshot = mapped_.snapshot.get();
      variants.emplace_back(
          "graph-vs-mapped",
          EvalCrpq(mapped_.graph->skeleton(), q.value(), mapped_options));
    }
    ExpectedStatus expected = CompareCrpqRuns("crpq", base, variants);

    if (base.ok() && (c_.step_budget != 0 || c_.memory_budget != 0)) {
      QueryContext ctx1, ctx2;
      ctx1.set_budgets(CaseBudgets(c_));
      ctx2.set_budgets(CaseBudgets(c_));
      CrpqEvalOptions governed = base_options;
      governed.cancel = &ctx1;
      Result<CrpqResult> run1 = EvalCrpq(g_.skeleton(), q.value(), governed);
      governed.cancel = &ctx2;
      Result<CrpqResult> run2 = EvalCrpq(g_.skeleton(), q.value(), governed);
      CompareCrpqRuns("crpq.governed-determinism", run1,
                      {{"rerun", std::move(run2)}});
      Check(ctx1.stop_cause() == ctx2.stop_cause(),
            "crpq.governed-determinism.cause",
            std::string(StopCauseName(ctx1.stop_cause())) + " vs " +
                StopCauseName(ctx2.stop_cause()));
    }
    return expected;
  }

  ExpectedStatus CheckDlCrpq() {
    Result<Crpq> q = ParseCrpq(c_.query_text, RegexDialect::kDl);
    if (!q.ok()) return ErrorCode::kParse;
    report_->parsed = true;

    DlCrpqEvalOptions base_options;
    base_options.max_bindings_per_pair = options_.max_bindings_per_pair;
    base_options.max_path_length = options_.max_path_length;
    Result<CrpqResult> base = EvalDlCrpq(g_, q.value(), base_options);

    DlCrpqEvalOptions snap_options = base_options;
    snap_options.snapshot = &snap_;

    std::vector<std::pair<const char*, Result<CrpqResult>>> variants;
    variants.emplace_back("graph-vs-snapshot",
                          EvalDlCrpq(g_, q.value(), snap_options));
    variants.emplace_back("rerun-determinism",
                          EvalDlCrpq(g_, q.value(), base_options));
    DlCrpqEvalOptions batch_options = base_options;
    batch_options.use_batch = true;
    variants.emplace_back("row-vs-batch",
                          EvalDlCrpq(g_, q.value(), batch_options));
    if (have_mapped_) {
      DlCrpqEvalOptions mapped_options = base_options;
      mapped_options.snapshot = mapped_.snapshot.get();
      variants.emplace_back(
          "graph-vs-mapped",
          EvalDlCrpq(*mapped_.graph, q.value(), mapped_options));
    }
    ExpectedStatus expected = CompareCrpqRuns("dlcrpq", base, variants);

    if (base.ok() && (c_.step_budget != 0 || c_.memory_budget != 0)) {
      QueryContext ctx1, ctx2;
      ctx1.set_budgets(CaseBudgets(c_));
      ctx2.set_budgets(CaseBudgets(c_));
      DlCrpqEvalOptions governed = base_options;
      governed.cancel = &ctx1;
      Result<CrpqResult> run1 = EvalDlCrpq(g_, q.value(), governed);
      governed.cancel = &ctx2;
      Result<CrpqResult> run2 = EvalDlCrpq(g_, q.value(), governed);
      CompareCrpqRuns("dlcrpq.governed-determinism", run1,
                      {{"rerun", std::move(run2)}});
      Check(ctx1.stop_cause() == ctx2.stop_cause(),
            "dlcrpq.governed-determinism.cause",
            std::string(StopCauseName(ctx1.stop_cause())) + " vs " +
                StopCauseName(ctx2.stop_cause()));
    }
    return expected;
  }

  ExpectedStatus CheckCoreGql() {
    Result<CoreGqlQuery> q = ParseCoreGqlQuery(c_.query_text);
    if (!q.ok()) return ErrorCode::kParse;
    report_->parsed = true;

    CoreQueryEvalOptions base_options;
    base_options.path_options.max_results = options_.max_results;
    base_options.path_options.max_path_length = options_.max_path_length;
    Result<CoreQueryResult> base =
        EvalCoreGqlQuery(g_, q.value(), base_options);

    CoreQueryEvalOptions snap_options = base_options;
    snap_options.path_options.snapshot = &snap_;
    Result<CoreQueryResult> from_snapshot =
        EvalCoreGqlQuery(g_, q.value(), snap_options);

    auto compare = [&](const char* check, const Result<CoreQueryResult>& a,
                       const Result<CoreQueryResult>& b) {
      if (a.ok() != b.ok()) {
        Check(false, check,
              a.ok() ? "base succeeded but variant failed: " +
                           b.error().message()
                     : "base failed but variant succeeded: " +
                           a.error().message());
        return;
      }
      if (!a.ok()) {
        Check(a.error().code() == b.error().code(), check,
              std::string("error codes differ: ") +
                  ErrorCodeName(a.error().code()) + " vs " +
                  ErrorCodeName(b.error().code()));
        return;
      }
      Check(a.value().relation.ToString(g_.skeleton()) ==
                    b.value().relation.ToString(g_.skeleton()) &&
                a.value().truncated == b.value().truncated,
            check,
            "base:\n" + a.value().relation.ToString(g_.skeleton()) +
                "variant:\n" + b.value().relation.ToString(g_.skeleton()));
    };
    compare("coregql.graph-vs-snapshot", base, from_snapshot);
    compare("coregql.rerun-determinism", base,
            EvalCoreGqlQuery(g_, q.value(), base_options));
    CoreQueryEvalOptions batch_options = base_options;
    batch_options.use_batch = true;
    compare("coregql.row-vs-batch", base,
            EvalCoreGqlQuery(g_, q.value(), batch_options));
    if (have_mapped_) {
      CoreQueryEvalOptions mapped_options = base_options;
      mapped_options.path_options.snapshot = mapped_.snapshot.get();
      compare("coregql.graph-vs-mapped", base,
              EvalCoreGqlQuery(*mapped_.graph, q.value(), mapped_options));
    }

    if (!base.ok()) return base.error().code();
    return std::nullopt;
  }

  ExpectedStatus CheckGqlGroup() {
    Result<CorePatternPtr> pattern = ParseCorePattern(c_.query_text);
    if (!pattern.ok()) return ErrorCode::kParse;
    report_->parsed = true;

    CorePathEvalOptions base_options;
    base_options.max_results = options_.max_results;
    base_options.max_path_length = options_.max_path_length;
    Result<GqlEvalResult> base =
        EvalGqlGroupPattern(g_, *pattern.value(), base_options);

    CorePathEvalOptions snap_options = base_options;
    snap_options.snapshot = &snap_;
    Result<GqlEvalResult> from_snapshot =
        EvalGqlGroupPattern(g_, *pattern.value(), snap_options);

    auto compare = [&](const char* check, const Result<GqlEvalResult>& b) {
      if (base.ok() != b.ok()) {
        Check(false, check,
              base.ok() ? "base succeeded but variant leg failed: " +
                              b.error().message()
                        : "base failed but variant leg succeeded: " +
                              base.error().message());
      } else if (!base.ok()) {
        Check(base.error().code() == b.error().code(), check,
              std::string("error codes differ: ") +
                  ErrorCodeName(base.error().code()) + " vs " +
                  ErrorCodeName(b.error().code()));
      } else {
        Check(base.value().rows == b.value().rows &&
                  base.value().truncated == b.value().truncated,
              check,
              std::to_string(base.value().rows.size()) + " rows vs " +
                  std::to_string(b.value().rows.size()) +
                  " rows (truncated " + std::to_string(base.value().truncated) +
                  "/" + std::to_string(b.value().truncated) + ")");
      }
    };
    compare("gqlgroup.graph-vs-snapshot", from_snapshot);
    if (have_mapped_) {
      CorePathEvalOptions mapped_options = base_options;
      mapped_options.snapshot = mapped_.snapshot.get();
      compare("gqlgroup.graph-vs-mapped",
              EvalGqlGroupPattern(*mapped_.graph, *pattern.value(),
                                  mapped_options));
    }
    if (!base.ok()) return base.error().code();
    return std::nullopt;
  }

  ExpectedStatus CheckPaths() {
    // Mirror the engine's dialect resolution exactly: dl first, then
    // plain (plan.cc); a mismatch here would be a false divergence.
    Result<RegexPtr> dl = ParseRegex(c_.query_text, RegexDialect::kDl);
    std::optional<DlNfa> dl_nfa;
    std::optional<Nfa> nfa;
    if (dl.ok()) {
      dl_nfa = DlNfa::FromRegex(*dl.value(), g_);
    } else {
      Result<RegexPtr> plain =
          ParseRegex(c_.query_text, RegexDialect::kPlain);
      if (!plain.ok()) return ErrorCode::kParse;
      nfa = Nfa::FromRegex(*plain.value(), g_.skeleton());
    }
    report_->parsed = true;

    std::optional<NodeId> u = g_.FindNode(c_.paths_from);
    std::optional<NodeId> v = g_.FindNode(c_.paths_to);
    if (!u.has_value() || !v.has_value()) return ErrorCode::kNotFound;
    // Path enumeration is one-way (PMRs have no inverse transitions); the
    // engine rejects these up front and so do we.
    if (nfa.has_value() && nfa->HasInverse()) {
      return ErrorCode::kInvalidArgument;
    }

    EnumerationLimits limits;
    limits.max_results = options_.max_results;
    limits.max_length = options_.max_path_length;

    EnumerationStats stats_graph, stats_snap;
    std::vector<PathBinding> base, from_snapshot;
    if (dl_nfa.has_value()) {
      DlEvaluator eval_graph(g_, *dl_nfa);
      DlEvaluator eval_snap(g_, *dl_nfa, &snap_);
      base = eval_graph.CollectModePaths(*u, *v, c_.paths_mode, limits,
                                         &stats_graph);
      from_snapshot = eval_snap.CollectModePaths(*u, *v, c_.paths_mode,
                                                 limits, &stats_snap);
    } else {
      base = CollectModePaths(g_.skeleton(), *nfa, *u, *v, c_.paths_mode,
                              limits, &stats_graph);
      from_snapshot = CollectModePaths(snap_, *nfa, *u, *v, c_.paths_mode,
                                       limits, &stats_snap);
    }
    Check(stats_graph.truncated == stats_snap.truncated,
          "paths.truncation-agreement",
          std::string("graph truncated=") +
              std::to_string(stats_graph.truncated) + " snapshot truncated=" +
              std::to_string(stats_snap.truncated));
    if (!stats_graph.truncated && !stats_snap.truncated) {
      Check(base == from_snapshot, "paths.graph-vs-snapshot",
            std::to_string(base.size()) + " paths vs " +
                std::to_string(from_snapshot.size()) + " paths");
      if (have_mapped_) {
        EnumerationStats stats_mapped;
        std::vector<PathBinding> from_mapped;
        if (dl_nfa.has_value()) {
          DlEvaluator eval_mapped(*mapped_.graph, *dl_nfa,
                                  mapped_.snapshot.get());
          from_mapped = eval_mapped.CollectModePaths(*u, *v, c_.paths_mode,
                                                     limits, &stats_mapped);
        } else {
          from_mapped = CollectModePaths(*mapped_.snapshot, *nfa, *u, *v,
                                         c_.paths_mode, limits, &stats_mapped);
        }
        Check(!stats_mapped.truncated && base == from_mapped,
              "paths.graph-vs-mapped",
              std::to_string(base.size()) + " paths vs " +
                  std::to_string(from_mapped.size()) + " paths (truncated " +
                  std::to_string(stats_mapped.truncated) + ")");
      }
    } else {
      // Under truncation the kept subset is substrate-dependent (documented
      // for kSimple/kTrail: successors are visited in slice order); the
      // result *count* must still agree when both legs hit max_results.
      Check(base.size() == from_snapshot.size(), "paths.truncated-count",
            std::to_string(base.size()) + " paths vs " +
                std::to_string(from_snapshot.size()) + " paths");
    }

    if (c_.step_budget != 0 || c_.memory_budget != 0) {
      QueryContext ctx1, ctx2;
      ctx1.set_budgets(CaseBudgets(c_));
      ctx2.set_budgets(CaseBudgets(c_));
      EnumerationLimits governed = limits;
      std::vector<PathBinding> run1, run2;
      governed.cancel = &ctx1;
      if (dl_nfa.has_value()) {
        run1 = DlEvaluator(g_, *dl_nfa)
                   .CollectModePaths(*u, *v, c_.paths_mode, governed);
        governed.cancel = &ctx2;
        run2 = DlEvaluator(g_, *dl_nfa)
                   .CollectModePaths(*u, *v, c_.paths_mode, governed);
      } else {
        run1 = CollectModePaths(g_.skeleton(), *nfa, *u, *v, c_.paths_mode,
                                governed);
        governed.cancel = &ctx2;
        run2 = CollectModePaths(g_.skeleton(), *nfa, *u, *v, c_.paths_mode,
                                governed);
      }
      Check(run1 == run2 && ctx1.stop_cause() == ctx2.stop_cause(),
            "paths.governed-determinism",
            std::string("same budget, different outcome: ") +
                StopCauseName(ctx1.stop_cause()) + "/" +
                std::to_string(run1.size()) + " vs " +
                StopCauseName(ctx2.stop_cause()) + "/" +
                std::to_string(run2.size()));
    }
    return std::nullopt;
  }

  // --- Engine-level matrix.

  void CheckEngine(ExpectedStatus expected) {
    if (!options_.engine_checks || options_.engine == nullptr) return;
    QueryEngine& engine = *options_.engine;
    engine.SetGraph(g_);  // epoch bump: the next Execute compiles cold

    QueryRequest request = c_.ToRequest();
    request.max_results = options_.max_results;
    request.max_path_length = options_.max_path_length;

    Result<QueryResponse> cold = engine.Execute(request);

    // Library status vs engine status: same outcome, same ErrorCode.
    if (expected.has_value()) {
      Check(!cold.ok() && cold.error().code() == *expected,
            "engine.status-vs-library",
            cold.ok() ? std::string("library expected ") +
                            ErrorCodeName(*expected) +
                            " but engine succeeded"
                      : std::string("library expected ") +
                            ErrorCodeName(*expected) + " but engine said " +
                            ErrorCodeName(cold.error().code()) + ": " +
                            cold.error().message());
    } else {
      Check(cold.ok(), "engine.status-vs-library",
            cold.ok() ? std::string()
                      : "library succeeded but engine failed: " +
                            std::string(
                                ErrorCodeName(cold.error().code())) +
                            ": " + cold.error().message());
    }

    // Cold vs cached plan: byte-identical response off the warm cache.
    Result<QueryResponse> warm = engine.Execute(request);
    if (cold.ok() != warm.ok()) {
      Check(false, "engine.cold-vs-cached",
            cold.ok() ? "cold ok but cached failed: " + warm.error().message()
                      : "cold failed but cached ok");
    } else if (!cold.ok()) {
      Check(cold.error().code() == warm.error().code(),
            "engine.cold-vs-cached",
            std::string("error codes differ: ") +
                ErrorCodeName(cold.error().code()) + " vs " +
                ErrorCodeName(warm.error().code()));
    } else {
      Check(warm.value().cache_hit, "engine.cold-vs-cached",
            "second execution missed the plan cache");
      Check(cold.value().text == warm.value().text &&
                cold.value().num_rows == warm.value().num_rows &&
                cold.value().truncated == warm.value().truncated,
            "engine.cold-vs-cached",
            "cold:\n" + cold.value().text + "cached:\n" + warm.value().text);
    }

    // Planner order vs textual order.
    QueryRequest textual_request = request;
    textual_request.textual_join_order = true;
    Result<QueryResponse> textual = engine.Execute(textual_request);
    if (cold.ok() != textual.ok()) {
      Check(false, "engine.planner-vs-textual",
            cold.ok()
                ? "planned ok but textual failed: " + textual.error().message()
                : "planned failed but textual ok");
    } else if (!cold.ok()) {
      Check(cold.error().code() == textual.error().code(),
            "engine.planner-vs-textual",
            std::string("error codes differ: ") +
                ErrorCodeName(cold.error().code()) + " vs " +
                ErrorCodeName(textual.error().code()));
    } else if (!cold.value().truncated && !textual.value().truncated) {
      // Under set semantics without truncation the join order is
      // invisible in the result.
      Check(cold.value().text == textual.value().text,
            "engine.planner-vs-textual",
            "planned:\n" + cold.value().text + "textual:\n" +
                textual.value().text);
    }

    // Execution-time kernel policy: every case runs with the wcoj path
    // forced on and forced off, and with the columnar batch kernel forced
    // on — the choice of join kernel must be invisible in the rendered
    // result. On cyclic-core cases (query_gen cyclic_percent) the wcoj
    // legs genuinely diverge in execution strategy; elsewhere the planner
    // selects no group and the legs double as no-op coverage.
    if (c_.language == QueryLanguage::kCrpq ||
        c_.language == QueryLanguage::kDlCrpq ||
        c_.language == QueryLanguage::kCoreGql) {
      struct KernelLeg {
        const char* check;
        bool wcoj;
        bool batch;
      };
      const KernelLeg kLegs[] = {
          {"engine.wcoj-vs-binary", false, false},
          {"engine.batch-vs-row", true, true},
          {"engine.wcoj-off-batch-on", false, true},
      };
      QueryRequest base_request = request;
      base_request.use_wcoj = true;
      base_request.use_batch_kernel = false;
      Result<QueryResponse> base_run = engine.Execute(base_request);
      for (const KernelLeg& leg : kLegs) {
        QueryRequest toggled = request;
        toggled.use_wcoj = leg.wcoj;
        toggled.use_batch_kernel = leg.batch;
        Result<QueryResponse> run = engine.Execute(toggled);
        if (base_run.ok() != run.ok()) {
          Check(false, leg.check,
                base_run.ok()
                    ? "wcoj-on/batch-off ok but toggled leg failed: " +
                          run.error().message()
                    : "wcoj-on/batch-off failed but toggled leg ok: " +
                          base_run.error().message());
        } else if (!base_run.ok()) {
          Check(base_run.error().code() == run.error().code(), leg.check,
                std::string("error codes differ: ") +
                    ErrorCodeName(base_run.error().code()) + " vs " +
                    ErrorCodeName(run.error().code()));
        } else if (!base_run.value().truncated && !run.value().truncated) {
          Check(base_run.value().text == run.value().text, leg.check,
                "base:\n" + base_run.value().text + "toggled:\n" +
                    run.value().text);
        }
      }
    }

    // WHERE-pushdown on/off (CoreGQL only; the response prefixes a
    // "(pushdown: ...)" header line that the comparison strips).
    if (c_.language == QueryLanguage::kCoreGql && cold.ok()) {
      QueryRequest optimized_request = request;
      optimized_request.optimize = true;
      Result<QueryResponse> optimized = engine.Execute(optimized_request);
      if (!optimized.ok()) {
        Check(false, "engine.pushdown",
              "pushdown leg failed: " + optimized.error().message());
      } else if (!cold.value().truncated && !optimized.value().truncated) {
        std::string text = optimized.value().text;
        if (text.rfind("(pushdown:", 0) == 0) {
          size_t eol = text.find('\n');
          text = eol == std::string::npos ? "" : text.substr(eol + 1);
        }
        Check(cold.value().text == text &&
                  cold.value().num_rows == optimized.value().num_rows,
              "engine.pushdown",
              "plain:\n" + cold.value().text + "pushdown:\n" + text);
      }
    }

    if (options_.error_parity) {
      CheckGovernedLegs(request, cold);
      CheckFailpointLegs(request, cold);
    }
  }

  /// Budget injection: on every substrate the governed run must either
  /// reproduce the ungoverned outcome or trip as RESOURCE_EXHAUSTED —
  /// never a different answer, never a different error class.
  void CheckGovernedLegs(const QueryRequest& request,
                         const Result<QueryResponse>& cold) {
    if (c_.step_budget == 0 && c_.memory_budget == 0) return;
    for (bool textual : {false, true}) {
      QueryRequest governed = request;
      governed.textual_join_order = textual;
      if (c_.step_budget != 0) governed.step_budget = c_.step_budget;
      if (c_.memory_budget != 0) governed.memory_budget = c_.memory_budget;
      Result<QueryResponse> run = options_.engine->Execute(governed);
      const char* check =
          textual ? "engine.budget-parity.textual" : "engine.budget-parity";
      if (run.ok()) {
        Check(cold.ok(), check,
              cold.ok() ? std::string()
                        : "governed run succeeded but ungoverned failed: " +
                              cold.error().message());
        if (cold.ok() && !cold.value().truncated && !run.value().truncated) {
          Check(cold.value().text == run.value().text, check,
                "budget did not trip but results differ:\nungoverned:\n" +
                    cold.value().text + "governed:\n" + run.value().text);
        }
      } else {
        const ErrorCode code = run.error().code();
        const bool allowed =
            code == ErrorCode::kResourceExhausted ||
            (!cold.ok() && code == cold.error().code());
        Check(allowed, check,
              std::string("governed run failed with ") + ErrorCodeName(code) +
                  " (ungoverned: " +
                  (cold.ok() ? "OK"
                             : ErrorCodeName(cold.error().code())) +
                  "): " + run.error().message());
      }
    }
  }

  /// Armed fail-points: each site maps to a documented code, and every
  /// substrate must surface exactly that code (or complete cleanly if the
  /// site is never reached) — no wrong answers, no other classes.
  void CheckFailpointLegs(const QueryRequest& request,
                          const Result<QueryResponse>& cold) {
    auto run_site = [&](const char* site, ErrorCode expected_code) {
      for (bool textual : {false, true}) {
        ScopedFailpoint fp(site);
        QueryRequest injected = request;
        injected.textual_join_order = textual;
        // A budget forces a governed context, which is what fail-points
        // trip; large enough to never fire on its own.
        injected.memory_budget = uint64_t{1} << 40;
        Result<QueryResponse> run = options_.engine->Execute(injected);
        const char* check = textual ? "engine.failpoint-parity.textual"
                                    : "engine.failpoint-parity";
        if (run.ok()) {
          // Site not on this query's path (e.g. empty seed set, or a
          // planner that selected no wcoj group): must then match the
          // clean run.
          Check(cold.ok(), check,
                cold.ok() ? std::string()
                          : "injected run succeeded but clean run failed: " +
                                cold.error().message());
          if (cold.ok() && !cold.value().truncated &&
              !run.value().truncated) {
            Check(cold.value().text == run.value().text, check,
                  "fail-point skipped but results differ");
          }
        } else {
          const ErrorCode code = run.error().code();
          const bool allowed = code == expected_code ||
                               (!cold.ok() && code == cold.error().code());
          Check(allowed, check,
                std::string(site) + " surfaced as " + ErrorCodeName(code) +
                    " (expected " + ErrorCodeName(expected_code) + "): " +
                    run.error().message());
        }
      }
    };

    const char* site = nullptr;
    ErrorCode expected_code = ErrorCode::kResourceExhausted;
    switch (c_.language) {
      case QueryLanguage::kRpq: site = "rpq.product.bfs"; break;
      case QueryLanguage::kCrpq: site = "crpq.join.alloc"; break;
      case QueryLanguage::kDlCrpq: site = "datatest.recurse"; break;
      case QueryLanguage::kGqlGroup: site = "coregql.frontier"; break;
      case QueryLanguage::kPaths:
        site = "pmr.enumerate.emit";
        expected_code = ErrorCode::kCancelled;
        break;
      default:
        break;  // no per-language fail-point on this plan's hot path
    }
    if (site != nullptr) run_site(site, expected_code);
    // The wcoj result-tuple alloc site sits on the hot path of every
    // language whose planner can select a cyclic core; on acyclic cases it
    // is simply never reached and the leg degrades to a clean-run match.
    if (c_.language == QueryLanguage::kCrpq ||
        c_.language == QueryLanguage::kDlCrpq ||
        c_.language == QueryLanguage::kCoreGql) {
      run_site("crpq.wcoj.alloc", ErrorCode::kResourceExhausted);
    }
  }

  const FuzzCase& c_;
  const OracleOptions& options_;
  const PropertyGraph& g_;
  GraphSnapshot snap_;
  OracleReport* report_;
  /// The case graph round-tripped through the on-disk snapshot format
  /// (CheckMappedEpoch); valid only when have_mapped_.
  storage::MappedGraph mapped_;
  bool have_mapped_ = false;
};

}  // namespace

void OracleReport::Add(const std::string& check, const std::string& detail) {
  divergences.push_back({check, detail});
}

std::string OracleReport::ToString() const {
  std::ostringstream out;
  out << checks << " checks, " << divergences.size() << " divergences";
  for (const Divergence& d : divergences) {
    out << "\n[" << d.check << "] " << d.detail;
  }
  return out.str();
}

OracleReport RunOracle(const FuzzCase& c, const OracleOptions& options) {
  OracleReport report;
  Result<PropertyGraph> parsed = ParseCaseGraph(c);
  if (!parsed.ok()) {
    report.Add("case.graph-parse", Brief(parsed.error().message()));
    return report;
  }
  OracleRun(c, options, parsed.value(), &report).Run();
  return report;
}

}  // namespace fuzz
}  // namespace gqzoo
