#include "src/planner/cost_model.h"

#include <algorithm>
#include <limits>

namespace gqzoo {

namespace {

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > std::numeric_limits<uint64_t>::max() / a) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? std::numeric_limits<uint64_t>::max() : s;
}

/// Several paths (and hence list bindings) can share one endpoint pair;
/// list-variable atoms get a flat multiplier since the statistics say
/// nothing about path multiplicity.
constexpr uint64_t kListVarFudge = 4;

/// Edge/source/target bounds accumulated over a first or last set.
struct BoundarySet {
  uint64_t edges = 0;
  uint64_t nodes = 0;  // distinct endpoint nodes on this side
};

// Folds endpoint-side bounds into the final estimate, shared by both
// dialects once the first/last sets are reduced to BoundarySets.
AtomEstimate Finish(const SnapshotStats& stats, BoundarySet first,
                    BoundarySet last, bool nullable, bool has_list_vars,
                    const CrpqAtom& atom) {
  const uint64_t n = stats.num_nodes();
  const uint64_t e = stats.num_edges();
  first.edges = std::min(first.edges, e);
  last.edges = std::min(last.edges, e);
  first.nodes = std::min(first.nodes, n);
  last.nodes = std::min(last.nodes, n);

  AtomEstimate est;
  est.distinct_from = std::max<uint64_t>(1, first.nodes);
  est.distinct_to = std::max<uint64_t>(1, last.nodes);
  // A match consumes a first-set edge and a last-set edge, and binds at
  // most distinct_from × distinct_to endpoint pairs.
  uint64_t pairs = std::min(std::min(first.edges, last.edges),
                            SatMul(est.distinct_from, est.distinct_to));
  if (nullable) {
    // ε matches contribute (v, v) for every node.
    pairs = SatAdd(pairs, n);
    est.distinct_from = std::max<uint64_t>(est.distinct_from, n);
    est.distinct_to = std::max<uint64_t>(est.distinct_to, n);
  }

  const bool same_var = !atom.from.is_constant && !atom.to.is_constant &&
                        atom.from.name == atom.to.name;
  if (same_var) {
    // R(x, x) keeps only the diagonal.
    pairs = std::min(pairs, std::min(est.distinct_from, est.distinct_to));
  }
  if (atom.from.is_constant) {
    pairs = std::max<uint64_t>(1, pairs / est.distinct_from);
    est.distinct_from = 1;
  }
  if (atom.to.is_constant) {
    pairs = std::max<uint64_t>(1, pairs / est.distinct_to);
    est.distinct_to = 1;
  }
  est.rows = std::max<uint64_t>(1, pairs);
  if (has_list_vars) est.rows = SatMul(est.rows, kListVarFudge);
  return est;
}

}  // namespace

AtomEstimate EstimateCrpqAtom(const SnapshotStats& stats, const Nfa& nfa,
                              bool nullable, const CrpqAtom& atom) {
  BoundarySet first, last;
  for (const Nfa::Transition& t : nfa.Out(nfa.initial())) {
    first.edges = SatAdd(first.edges, stats.EdgesMatching(t.pred));
    first.nodes = SatAdd(first.nodes, t.inverse ? stats.TargetsMatching(t.pred)
                                                : stats.SourcesMatching(t.pred));
  }
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Transition& t : nfa.Out(s)) {
      if (!nfa.accepting(t.to)) continue;
      last.edges = SatAdd(last.edges, stats.EdgesMatching(t.pred));
      last.nodes = SatAdd(last.nodes, t.inverse ? stats.SourcesMatching(t.pred)
                                                : stats.TargetsMatching(t.pred));
    }
  }
  return Finish(stats, first, last, nullable,
                !atom.regex->CaptureVariables().empty(), atom);
}

AtomEstimate EstimateDlCrpqAtom(const SnapshotStats& stats, const DlNfa& nfa,
                                bool nullable, const CrpqAtom& atom) {
  const uint64_t n = stats.num_nodes();
  const uint64_t e = stats.num_edges();
  auto fold = [&](const DlAtom& a, BoundarySet* side) {
    if (a.is_test) {
      // Tests re-match the current object: no edge-label selectivity.
      side->edges = SatAdd(side->edges, e);
      side->nodes = SatAdd(side->nodes, n);
      return;
    }
    if (a.target == Atom::Target::kNode) {
      uint64_t nodes = stats.NodesMatching(a.pred);
      side->edges = SatAdd(side->edges, e);
      side->nodes = SatAdd(side->nodes, nodes);
      return;
    }
    side->edges = SatAdd(side->edges, stats.EdgesMatching(a.pred));
    side->nodes = SatAdd(side->nodes, stats.SourcesMatching(a.pred));
  };
  BoundarySet first, last;
  for (const DlNfa::Transition& t : nfa.Out(nfa.initial())) {
    fold(t.atom, &first);
  }
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    for (const DlNfa::Transition& t : nfa.Out(s)) {
      if (!nfa.accepting(t.to)) continue;
      if (t.atom.is_test || t.atom.target == Atom::Target::kNode) {
        fold(t.atom, &last);
      } else {
        last.edges = SatAdd(last.edges, stats.EdgesMatching(t.atom.pred));
        last.nodes = SatAdd(last.nodes, stats.TargetsMatching(t.atom.pred));
      }
    }
  }
  return Finish(stats, first, last, nullable,
                !atom.regex->CaptureVariables().empty(), atom);
}

uint64_t EstimateCorePattern(const SnapshotStats& stats,
                             const EdgeLabeledGraph& g, const CorePattern& p) {
  const uint64_t n = std::max<uint64_t>(1, stats.num_nodes());
  const uint64_t e = stats.num_edges();
  switch (p.kind()) {
    case CorePattern::Kind::kNode: {
      if (!p.label().has_value() || !stats.has_node_labels()) return n;
      std::optional<LabelId> l = g.FindLabel(*p.label());
      return l.has_value() ? std::max<uint64_t>(1, stats.NodeLabelCount(*l))
                           : 1;
    }
    case CorePattern::Kind::kEdge: {
      if (!p.label().has_value()) return std::max<uint64_t>(1, e);
      std::optional<LabelId> l = g.FindLabel(*p.label());
      return l.has_value() ? std::max<uint64_t>(1, stats.EdgeCount(*l)) : 1;
    }
    case CorePattern::Kind::kConcat: {
      // Left and right meet on one shared endpoint: the classic
      // |L| · |R| / n join selectivity.
      uint64_t left = EstimateCorePattern(stats, g, *p.left());
      uint64_t right = EstimateCorePattern(stats, g, *p.right());
      return std::max<uint64_t>(1, SatMul(left, right) / n);
    }
    case CorePattern::Kind::kUnion:
      return SatAdd(EstimateCorePattern(stats, g, *p.left()),
                    EstimateCorePattern(stats, g, *p.right()));
    case CorePattern::Kind::kRepeat: {
      uint64_t inner = EstimateCorePattern(stats, g, *p.child());
      // Transitive closure can reach up to n² pairs; estimate a small
      // constant blow-up over one iteration, capped there.
      uint64_t grown = std::min(SatMul(inner, 4), SatMul(n, n));
      if (p.lo() == 0) grown = SatAdd(grown, n);  // ε contributes identity
      return std::max<uint64_t>(1, grown);
    }
    case CorePattern::Kind::kCondition: {
      // WHERE prunes; assume 1-in-3 selectivity (documented fudge).
      uint64_t inner = EstimateCorePattern(stats, g, *p.child());
      return std::max<uint64_t>(1, inner / 3);
    }
  }
  return n;
}

}  // namespace gqzoo
