#ifndef GQZOO_PLANNER_COST_MODEL_H_
#define GQZOO_PLANNER_COST_MODEL_H_

#include <cstdint>

#include "src/automata/nfa.h"
#include "src/coregql/pattern.h"
#include "src/crpq/crpq.h"
#include "src/datatest/dl_rpq.h"
#include "src/planner/stats.h"

namespace gqzoo {

/// The cost model's view of one conjunct: an estimated result-set size
/// plus estimated distinct endpoint bindings (used to account for constant
/// endpoints and self-joins).
///
/// Estimates consult only the regex's *first and last label sets* — the
/// transitions out of the Glushkov automaton's initial state and into its
/// accepting states. That is deliberate: first/last sets are exactly what
/// per-label statistics can bound without evaluating the regex (a match
/// must start with a first-set edge and end with a last-set edge, so
/// |[[R]]| ≤ min(first-set edges, last-set edges) and the endpoint columns
/// are bounded by the matching distinct sources/targets), and they are
/// free — the NFA is already compiled into the plan. Anything deeper
/// (e.g. chain selectivity through the regex body) would amount to
/// partially evaluating the query at plan time.
struct AtomEstimate {
  uint64_t rows = 1;
  uint64_t distinct_from = 1;
  uint64_t distinct_to = 1;
};

/// Estimate for a plain / l-CRPQ atom compiled to `nfa`. `atom` supplies
/// endpoint shape (constants, self-join) and list variables; `nullable`
/// is `regex->Nullable()` (ε-matches contribute the identity pairs).
AtomEstimate EstimateCrpqAtom(const SnapshotStats& stats, const Nfa& nfa,
                              bool nullable, const CrpqAtom& atom);

/// Estimate for a dl-CRPQ atom. Data-test and node atoms in the first /
/// last sets carry no edge-label selectivity and degrade to whole-graph
/// bounds (node-label counts for node atoms where available).
AtomEstimate EstimateDlCrpqAtom(const SnapshotStats& stats, const DlNfa& nfa,
                                bool nullable, const CrpqAtom& atom);

/// Estimated match-relation size of a CoreGQL pattern, by structural
/// recursion: node/edge atoms read label cardinalities, concatenation
/// applies the shared-endpoint join selectivity |L|·|R|/n, union adds,
/// repetition and conditions apply documented fudge factors (DESIGN.md).
/// `g` resolves label names.
uint64_t EstimateCorePattern(const SnapshotStats& stats,
                             const EdgeLabeledGraph& g, const CorePattern& p);

}  // namespace gqzoo

#endif  // GQZOO_PLANNER_COST_MODEL_H_
