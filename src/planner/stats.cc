#include "src/planner/stats.h"

#include <algorithm>

namespace gqzoo {

SnapshotStats::SnapshotStats(const GraphSnapshot& snapshot)
    : num_nodes_(snapshot.NumNodes()),
      num_edges_(snapshot.NumEdges()),
      num_labels_(snapshot.NumLabels()),
      has_node_labels_(snapshot.has_node_labels()) {
  const EdgeLabeledGraph& g = snapshot.graph();
  edge_count_.resize(num_labels_, 0);
  distinct_src_.resize(num_labels_, 0);
  distinct_tgt_.resize(num_labels_, 0);
  node_label_count_.resize(num_labels_, 0);

  std::vector<NodeId> srcs, tgts;
  std::vector<NodeId> all_srcs, all_tgts;
  all_srcs.reserve(num_edges_);
  all_tgts.reserve(num_edges_);
  auto count_distinct = [](std::vector<NodeId>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
    return static_cast<uint64_t>(v->size());
  };
  for (LabelId l = 0; l < num_labels_; ++l) {
    GraphSnapshot::Slice slice = snapshot.EdgesWithLabel(l);
    edge_count_[l] = slice.size();
    srcs.clear();
    tgts.clear();
    srcs.reserve(slice.size());
    tgts.reserve(slice.size());
    for (const GraphSnapshot::Hop& hop : slice) {
      srcs.push_back(g.Src(hop.edge));
      tgts.push_back(hop.node);  // label-wide slices store the target
    }
    all_srcs.insert(all_srcs.end(), srcs.begin(), srcs.end());
    all_tgts.insert(all_tgts.end(), tgts.begin(), tgts.end());
    distinct_src_[l] = count_distinct(&srcs);
    distinct_tgt_[l] = count_distinct(&tgts);
    if (has_node_labels_) {
      node_label_count_[l] = snapshot.NodesWithLabel(l).size();
    }
  }
  any_src_ = count_distinct(&all_srcs);
  any_tgt_ = count_distinct(&all_tgts);
}

SnapshotStats::SnapshotStats(const SnapshotStats& base,
                             const GraphSnapshot& merged,
                             const std::vector<LabelId>& touched_labels)
    : num_nodes_(merged.NumNodes()),
      num_edges_(merged.NumEdges()),
      num_labels_(merged.NumLabels()),
      has_node_labels_(merged.has_node_labels()),
      edge_count_(base.edge_count_),
      distinct_src_(base.distinct_src_),
      distinct_tgt_(base.distinct_tgt_),
      node_label_count_(base.node_label_count_) {
  edge_count_.resize(num_labels_, 0);
  distinct_src_.resize(num_labels_, 0);
  distinct_tgt_.resize(num_labels_, 0);
  node_label_count_.resize(num_labels_, 0);

  const EdgeLabeledGraph& g = merged.graph();
  std::vector<NodeId> srcs, tgts;
  auto count_distinct = [](std::vector<NodeId>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
    return static_cast<uint64_t>(v->size());
  };
  for (LabelId l : touched_labels) {
    if (l >= num_labels_) continue;
    GraphSnapshot::Slice slice = merged.EdgesWithLabel(l);
    edge_count_[l] = slice.size();
    srcs.clear();
    tgts.clear();
    srcs.reserve(slice.size());
    tgts.reserve(slice.size());
    for (const GraphSnapshot::Hop& hop : slice) {
      srcs.push_back(g.Src(hop.edge));
      tgts.push_back(hop.node);
    }
    distinct_src_[l] = count_distinct(&srcs);
    distinct_tgt_[l] = count_distinct(&tgts);
    node_label_count_[l] =
        has_node_labels_ ? merged.NodesWithLabel(l).size() : 0;
  }
  // A node is a distinct source (target) of some edge iff it has nonzero
  // out- (in-) degree: one O(N) pass replaces the full ctor's whole-edge
  // sort-unique.
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (!merged.Out(v).empty()) ++any_src_;
    if (!merged.In(v).empty()) ++any_tgt_;
  }
}

uint64_t SnapshotStats::EdgeCount(LabelId l) const {
  return l < num_labels_ ? edge_count_[l] : 0;
}

uint64_t SnapshotStats::DistinctSources(LabelId l) const {
  return l < num_labels_ ? distinct_src_[l] : 0;
}

uint64_t SnapshotStats::DistinctTargets(LabelId l) const {
  return l < num_labels_ ? distinct_tgt_[l] : 0;
}

uint64_t SnapshotStats::NodeLabelCount(LabelId l) const {
  return l < num_labels_ ? node_label_count_[l] : 0;
}

namespace {

// Sums `per_label` over the labels a predicate admits, capped at `cap`.
uint64_t SumMatching(const LabelPred& pred,
                     const std::vector<uint64_t>& per_label, uint64_t total,
                     uint64_t cap) {
  switch (pred.kind) {
    case LabelPred::Kind::kNone:
      return 0;
    case LabelPred::Kind::kOne:
      return pred.labels[0] < per_label.size() ? per_label[pred.labels[0]] : 0;
    case LabelPred::Kind::kAny:
      return std::min(total, cap);
    case LabelPred::Kind::kNegSet: {
      uint64_t excluded = 0;
      for (LabelId l : pred.labels) {
        if (l < per_label.size()) excluded += per_label[l];
      }
      uint64_t kept = total > excluded ? total - excluded : 0;
      return std::min(kept, cap);
    }
  }
  return 0;
}

}  // namespace

uint64_t SnapshotStats::EdgesMatching(const LabelPred& pred) const {
  return SumMatching(pred, edge_count_, num_edges_, num_edges_);
}

uint64_t SnapshotStats::SourcesMatching(const LabelPred& pred) const {
  // kNegSet: subtracting per-label distinct counts can undershoot (a node
  // may source both an excluded and an admitted label), so fall back to
  // the any-label count as a safe upper bound.
  if (pred.kind == LabelPred::Kind::kNegSet) {
    return std::min<uint64_t>(any_src_, num_nodes_);
  }
  return SumMatching(pred, distinct_src_, any_src_, num_nodes_);
}

uint64_t SnapshotStats::TargetsMatching(const LabelPred& pred) const {
  if (pred.kind == LabelPred::Kind::kNegSet) {
    return std::min<uint64_t>(any_tgt_, num_nodes_);
  }
  return SumMatching(pred, distinct_tgt_, any_tgt_, num_nodes_);
}

uint64_t SnapshotStats::NodesMatching(const LabelPred& pred) const {
  if (!has_node_labels_) return num_nodes_;
  if (pred.kind == LabelPred::Kind::kOne) {
    return NodeLabelCount(pred.labels[0]);
  }
  // Node labels are not partitioned like edge labels; stay conservative
  // for the compound predicates.
  return num_nodes_;
}

}  // namespace gqzoo
