#ifndef GQZOO_PLANNER_STATS_H_
#define GQZOO_PLANNER_STATS_H_

#include <cstdint>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/csr.h"

namespace gqzoo {

/// Exact per-label statistics read off a `GraphSnapshot`, built once per
/// graph epoch next to the snapshot itself and shared read-only by every
/// plan compilation of that epoch.
///
/// The snapshot's label-partitioned CSR already holds per-label edge
/// slices, so edge counts are free; distinct source/target counts cost one
/// sort-unique per label at build time (O(E log E) total, amortized over
/// every query of the epoch). These are *exact* counts, not sketches —
/// the cost model's error comes from composing them across a regex, never
/// from the base statistics.
class SnapshotStats {
 public:
  /// Borrows `snapshot` (and its graph) for the duration of construction
  /// only; the built statistics are self-contained.
  explicit SnapshotStats(const GraphSnapshot& snapshot);

  /// Incremental patch: copies `base`'s per-label counts and recomputes
  /// only `touched_labels` (plus the cheap whole-graph aggregates) from
  /// `merged` — how the delta write path keeps statistics current without
  /// an O(E log E) rebuild per mutation. Labels absent from `touched_labels`
  /// must have the same membership in `merged` as they had under `base`
  /// (renumbering is fine; counts are id-agnostic).
  SnapshotStats(const SnapshotStats& base, const GraphSnapshot& merged,
                const std::vector<LabelId>& touched_labels);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }
  size_t num_labels() const { return num_labels_; }

  /// Number of edges carrying label `l`.
  uint64_t EdgeCount(LabelId l) const;
  /// Number of distinct source / target nodes over edges with label `l`.
  uint64_t DistinctSources(LabelId l) const;
  uint64_t DistinctTargets(LabelId l) const;
  /// Number of nodes carrying node label `l` (0 when the snapshot was
  /// built without node labels; see `has_node_labels`).
  uint64_t NodeLabelCount(LabelId l) const;
  bool has_node_labels() const { return has_node_labels_; }

  /// Lifts the per-label counts to automaton transition predicates (the
  /// label algebra of Remark 11): exact for kOne/kAny/kNone, and for
  /// kNegSet on edges; distinct-node counts for non-singleton predicates
  /// are sums capped at the node count (an upper bound — a node can source
  /// edges of several labels).
  uint64_t EdgesMatching(const LabelPred& pred) const;
  uint64_t SourcesMatching(const LabelPred& pred) const;
  uint64_t TargetsMatching(const LabelPred& pred) const;
  /// Node-label analogue for node atoms (dl-RPQs, CoreGQL node patterns);
  /// every node matches when the snapshot has no node-label index.
  uint64_t NodesMatching(const LabelPred& pred) const;

 private:
  /// The snapshot codec (storage/snapshot_format.h) serializes the count
  /// arrays raw and reconstitutes stats from a mapped file without the
  /// O(E log E) sort-unique rebuild.
  friend class storage::SnapshotCodec;
  SnapshotStats() = default;

  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  size_t num_labels_ = 0;
  bool has_node_labels_ = false;
  std::vector<uint64_t> edge_count_;
  std::vector<uint64_t> distinct_src_;
  std::vector<uint64_t> distinct_tgt_;
  std::vector<uint64_t> node_label_count_;
  uint64_t any_src_ = 0;  // distinct sources over all edges
  uint64_t any_tgt_ = 0;  // distinct targets over all edges
};

}  // namespace gqzoo

#endif  // GQZOO_PLANNER_STATS_H_
