#ifndef GQZOO_PLANNER_EXPLAIN_H_
#define GQZOO_PLANNER_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gqzoo {

/// One conjunct in the chosen execution order.
struct ExplainEntry {
  size_t conjunct = 0;  // index of the conjunct in textual order
  std::string label;    // display form (atom regex / pattern text)
  std::vector<std::string> vars;  // join variables
  uint64_t est_rows = 0;          // cost-model estimate
  /// True when the conjunct shares a variable with the relation already
  /// joined at this point (false for the first conjunct and for forced
  /// cartesian products).
  bool connected = false;
};

/// The record the conjunct planner attaches to a compiled plan: the chosen
/// join order with per-conjunct estimates, rendered by `explain` in the
/// shell and `--explain` in the batch driver. Execution follows
/// `order[i].conjunct`; when `planned` is false the order is textual (the
/// plan was compiled without statistics, or the query has a single
/// conjunct).
struct ExplainInfo {
  bool planned = false;
  std::vector<ExplainEntry> order;

  /// When the planner carved a cyclic core out for the worst-case-optimal
  /// join, the chosen variable elimination order and the conjuncts the
  /// wcoj group absorbs (the binary `order` above still lists every
  /// conjunct, so the two strategies can be read side by side). Empty
  /// when no cyclic core was detected.
  std::vector<std::string> wcoj_vars;
  std::vector<size_t> wcoj_conjuncts;

  std::string ToString() const;
};

}  // namespace gqzoo

#endif  // GQZOO_PLANNER_EXPLAIN_H_
