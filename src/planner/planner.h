#ifndef GQZOO_PLANNER_PLANNER_H_
#define GQZOO_PLANNER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/planner/explain.h"

namespace gqzoo {

/// The planner's view of one conjunct of a conjunctive query: the CRPQ /
/// dl-CRPQ atoms of Section 3.1.5 or the pattern entries of a CoreGQL
/// MATCH block. `vars` are the *join* variables (endpoint variables for
/// atoms — list variables are never shared, by condition (4); free
/// variables plus the path variable for pattern entries).
struct Conjunct {
  std::vector<std::string> vars;
  uint64_t est_rows = 1;
  std::string label;  // display form for EXPLAIN
};

/// Greedy smallest-first join ordering: start from the cheapest conjunct,
/// then repeatedly append the cheapest conjunct *connected* to the
/// already-joined variable set (sharing at least one variable), falling
/// back to the globally cheapest only when no conjunct is connected — a
/// cartesian product is then unavoidable no matter the order. Ties break
/// toward textual order, so equal estimates (in particular the no-stats
/// case) reproduce the textual plan on connected queries.
///
/// Returns the execution order as a permutation of conjunct indices and,
/// when `explain` is non-null, records the per-step entries (estimate and
/// connectedness) there with `planned = true`.
std::vector<size_t> GreedyJoinOrder(const std::vector<Conjunct>& conjuncts,
                                    ExplainInfo* explain = nullptr);

/// The identity (textual) order, recorded with `planned = false`.
std::vector<size_t> TextualJoinOrder(const std::vector<Conjunct>& conjuncts,
                                     ExplainInfo* explain = nullptr);

}  // namespace gqzoo

#endif  // GQZOO_PLANNER_PLANNER_H_
