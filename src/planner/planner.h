#ifndef GQZOO_PLANNER_PLANNER_H_
#define GQZOO_PLANNER_PLANNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/planner/explain.h"

namespace gqzoo {

/// The planner's view of one conjunct of a conjunctive query: the CRPQ /
/// dl-CRPQ atoms of Section 3.1.5 or the pattern entries of a CoreGQL
/// MATCH block. `vars` are the *join* variables (endpoint variables for
/// atoms — list variables are never shared, by condition (4); free
/// variables plus the path variable for pattern entries).
struct Conjunct {
  std::vector<std::string> vars;
  uint64_t est_rows = 1;
  std::string label;  // display form for EXPLAIN
};

/// Greedy smallest-first join ordering: start from the cheapest conjunct,
/// then repeatedly append the cheapest conjunct *connected* to the
/// already-joined variable set (sharing at least one variable), falling
/// back to the globally cheapest only when no conjunct is connected — a
/// cartesian product is then unavoidable no matter the order. Ties break
/// toward textual order, so equal estimates (in particular the no-stats
/// case) reproduce the textual plan on connected queries.
///
/// Returns the execution order as a permutation of conjunct indices and,
/// when `explain` is non-null, records the per-step entries (estimate and
/// connectedness) there with `planned = true`.
std::vector<size_t> GreedyJoinOrder(const std::vector<Conjunct>& conjuncts,
                                    ExplainInfo* explain = nullptr);

/// The identity (textual) order, recorded with `planned = false`.
std::vector<size_t> TextualJoinOrder(const std::vector<Conjunct>& conjuncts,
                                     ExplainInfo* explain = nullptr);

/// A conjunct eligible for the worst-case-optimal join: a single-label
/// forward edge atom between two distinct non-constant variables (the
/// shape whose relation is exactly one per-label CSR slice family). The
/// per-endpoint distinct counts come from `SnapshotStats` and drive the
/// variable elimination order.
struct WcojCandidate {
  size_t conjunct = 0;  // index in textual order
  std::string from;
  std::string to;
  uint64_t distinct_from = 1;  // distinct sources carrying the label
  uint64_t distinct_to = 1;    // distinct targets carrying the label
};

/// A detected cyclic core: the candidate conjuncts it absorbs (textual
/// order) and the chosen variable elimination order.
struct WcojCore {
  std::vector<size_t> conjuncts;
  std::vector<std::string> var_order;
};

/// Detects a cyclic core among the eligible conjuncts and picks its
/// elimination order. The candidates' variable graph is deduplicated to a
/// simple graph (parallel atoms between the same pair never make a core
/// by themselves — binary joins handle them without intermediate blowup)
/// and pruned to its 2-core by iteratively deleting degree <= 1
/// variables. If a 2-core survives, the connected component containing
/// the textually-first surviving candidate becomes the wcoj group: every
/// candidate with both endpoints in the component. The elimination order
/// is greedy smallest-first over the component's variables: each
/// variable's cost is the smallest distinct count any incident group atom
/// gives it, the first variable is the global minimum and each next
/// variable must touch the already-ordered set (ties break toward the
/// lexicographically smaller name, so the order is deterministic).
/// Returns nullopt when the variable graph is acyclic.
std::optional<WcojCore> DetectWcojCore(
    const std::vector<WcojCandidate>& candidates);

}  // namespace gqzoo

#endif  // GQZOO_PLANNER_PLANNER_H_
