#include "src/planner/planner.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace gqzoo {

namespace {

void Record(const std::vector<Conjunct>& conjuncts,
            const std::vector<size_t>& order,
            const std::vector<bool>& connected, bool planned,
            ExplainInfo* explain) {
  if (explain == nullptr) return;
  explain->planned = planned;
  explain->order.clear();
  for (size_t step = 0; step < order.size(); ++step) {
    const Conjunct& c = conjuncts[order[step]];
    ExplainEntry entry;
    entry.conjunct = order[step];
    entry.label = c.label;
    entry.vars = c.vars;
    entry.est_rows = c.est_rows;
    entry.connected = connected[step];
    explain->order.push_back(std::move(entry));
  }
}

}  // namespace

std::vector<size_t> GreedyJoinOrder(const std::vector<Conjunct>& conjuncts,
                                    ExplainInfo* explain) {
  const size_t n = conjuncts.size();
  std::vector<size_t> order;
  std::vector<bool> connected_at(n, false);
  std::vector<bool> used(n, false);
  std::set<std::string> bound;

  for (size_t step = 0; step < n; ++step) {
    size_t best = SIZE_MAX;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected =
          step > 0 && std::any_of(conjuncts[i].vars.begin(),
                                  conjuncts[i].vars.end(),
                                  [&](const std::string& v) {
                                    return bound.count(v) > 0;
                                  });
      // Prefer connected over cartesian, then cheaper, then textual.
      if (best == SIZE_MAX || (connected && !best_connected) ||
          (connected == best_connected &&
           conjuncts[i].est_rows < conjuncts[best].est_rows)) {
        best = i;
        best_connected = connected;
      }
    }
    used[best] = true;
    connected_at[step] = best_connected;
    order.push_back(best);
    bound.insert(conjuncts[best].vars.begin(), conjuncts[best].vars.end());
  }
  Record(conjuncts, order, connected_at, /*planned=*/true, explain);
  return order;
}

std::vector<size_t> TextualJoinOrder(const std::vector<Conjunct>& conjuncts,
                                     ExplainInfo* explain) {
  const size_t n = conjuncts.size();
  std::vector<size_t> order(n);
  std::vector<bool> connected_at(n, false);
  std::set<std::string> bound;
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
    connected_at[i] =
        i > 0 && std::any_of(conjuncts[i].vars.begin(), conjuncts[i].vars.end(),
                             [&](const std::string& v) {
                               return bound.count(v) > 0;
                             });
    bound.insert(conjuncts[i].vars.begin(), conjuncts[i].vars.end());
  }
  Record(conjuncts, order, connected_at, /*planned=*/false, explain);
  return order;
}

std::string ExplainInfo::ToString() const {
  std::ostringstream out;
  out << "join order (" << (planned ? "planner" : "textual") << "):\n";
  for (size_t step = 0; step < order.size(); ++step) {
    const ExplainEntry& e = order[step];
    out << "  " << step + 1 << ". [" << e.conjunct << "] " << e.label;
    out << "  est_rows=" << e.est_rows;
    if (step > 0) out << (e.connected ? "" : "  CARTESIAN");
    if (!e.vars.empty()) {
      out << "  vars=(";
      for (size_t i = 0; i < e.vars.size(); ++i) {
        if (i > 0) out << ", ";
        out << e.vars[i];
      }
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace gqzoo
