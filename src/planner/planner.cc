#include "src/planner/planner.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace gqzoo {

namespace {

void Record(const std::vector<Conjunct>& conjuncts,
            const std::vector<size_t>& order,
            const std::vector<bool>& connected, bool planned,
            ExplainInfo* explain) {
  if (explain == nullptr) return;
  explain->planned = planned;
  explain->order.clear();
  for (size_t step = 0; step < order.size(); ++step) {
    const Conjunct& c = conjuncts[order[step]];
    ExplainEntry entry;
    entry.conjunct = order[step];
    entry.label = c.label;
    entry.vars = c.vars;
    entry.est_rows = c.est_rows;
    entry.connected = connected[step];
    explain->order.push_back(std::move(entry));
  }
}

}  // namespace

std::vector<size_t> GreedyJoinOrder(const std::vector<Conjunct>& conjuncts,
                                    ExplainInfo* explain) {
  const size_t n = conjuncts.size();
  std::vector<size_t> order;
  std::vector<bool> connected_at(n, false);
  std::vector<bool> used(n, false);
  std::set<std::string> bound;

  for (size_t step = 0; step < n; ++step) {
    size_t best = SIZE_MAX;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected =
          step > 0 && std::any_of(conjuncts[i].vars.begin(),
                                  conjuncts[i].vars.end(),
                                  [&](const std::string& v) {
                                    return bound.count(v) > 0;
                                  });
      // Prefer connected over cartesian, then cheaper, then textual.
      if (best == SIZE_MAX || (connected && !best_connected) ||
          (connected == best_connected &&
           conjuncts[i].est_rows < conjuncts[best].est_rows)) {
        best = i;
        best_connected = connected;
      }
    }
    used[best] = true;
    connected_at[step] = best_connected;
    order.push_back(best);
    bound.insert(conjuncts[best].vars.begin(), conjuncts[best].vars.end());
  }
  Record(conjuncts, order, connected_at, /*planned=*/true, explain);
  return order;
}

std::vector<size_t> TextualJoinOrder(const std::vector<Conjunct>& conjuncts,
                                     ExplainInfo* explain) {
  const size_t n = conjuncts.size();
  std::vector<size_t> order(n);
  std::vector<bool> connected_at(n, false);
  std::set<std::string> bound;
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
    connected_at[i] =
        i > 0 && std::any_of(conjuncts[i].vars.begin(), conjuncts[i].vars.end(),
                             [&](const std::string& v) {
                               return bound.count(v) > 0;
                             });
    bound.insert(conjuncts[i].vars.begin(), conjuncts[i].vars.end());
  }
  Record(conjuncts, order, connected_at, /*planned=*/false, explain);
  return order;
}

std::optional<WcojCore> DetectWcojCore(
    const std::vector<WcojCandidate>& candidates) {
  // Simple variable graph: vertices are variable names, one edge per
  // distinct unordered endpoint pair.
  std::map<std::string, std::set<std::string>> adj;
  for (const WcojCandidate& c : candidates) {
    if (c.from == c.to) continue;  // self-loop atoms never extend a cycle
    adj[c.from].insert(c.to);
    adj[c.to].insert(c.from);
  }

  // 2-core: iteratively strip degree <= 1 variables.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = adj.begin(); it != adj.end();) {
      if (it->second.size() <= 1) {
        for (const std::string& n : it->second) adj[n].erase(it->first);
        it = adj.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  if (adj.empty()) return std::nullopt;

  // The group is the 2-core component of the textually-first candidate
  // whose endpoints both survived.
  const WcojCandidate* seed = nullptr;
  for (const WcojCandidate& c : candidates) {
    if (adj.count(c.from) > 0 && adj.count(c.to) > 0) {
      seed = &c;
      break;
    }
  }
  if (seed == nullptr) return std::nullopt;
  std::set<std::string> core;
  std::vector<std::string> frontier = {seed->from};
  core.insert(seed->from);
  while (!frontier.empty()) {
    std::string v = std::move(frontier.back());
    frontier.pop_back();
    for (const std::string& n : adj[v]) {
      if (core.insert(n).second) frontier.push_back(n);
    }
  }

  WcojCore out;
  // est[v]: the cheapest candidate list any group atom offers v.
  std::map<std::string, uint64_t> est;
  std::map<std::string, std::set<std::string>> group_adj;
  for (const WcojCandidate& c : candidates) {
    if (c.from == c.to) continue;
    if (core.count(c.from) == 0 || core.count(c.to) == 0) continue;
    out.conjuncts.push_back(c.conjunct);
    auto relax = [&](const std::string& v, uint64_t cost) {
      auto [it, fresh] = est.emplace(v, cost);
      if (!fresh && cost < it->second) it->second = cost;
    };
    relax(c.from, c.distinct_from);
    relax(c.to, c.distinct_to);
    if (c.from != c.to) {
      group_adj[c.from].insert(c.to);
      group_adj[c.to].insert(c.from);
    }
  }

  // Greedy smallest-first elimination order, connected after the first.
  std::set<std::string> ordered;
  while (ordered.size() < core.size()) {
    std::string best;
    for (const auto& [v, cost] : est) {
      if (ordered.count(v) > 0) continue;
      if (!ordered.empty()) {
        bool touches = false;
        for (const std::string& n : group_adj[v]) {
          if (ordered.count(n) > 0) {
            touches = true;
            break;
          }
        }
        if (!touches) continue;
      }
      if (best.empty() || cost < est[best] ||
          (cost == est[best] && v < best)) {
        best = v;
      }
    }
    if (best.empty()) break;  // unreachable: the component is connected
    out.var_order.push_back(best);
    ordered.insert(best);
  }
  if (out.var_order.size() != core.size()) return std::nullopt;
  return out;
}

std::string ExplainInfo::ToString() const {
  std::ostringstream out;
  out << "join order (" << (planned ? "planner" : "textual") << "):\n";
  if (!wcoj_vars.empty()) {
    out << "  wcoj(";
    for (size_t i = 0; i < wcoj_vars.size(); ++i) {
      if (i > 0) out << ", ";
      out << wcoj_vars[i];
    }
    out << ")  conjuncts=[";
    for (size_t i = 0; i < wcoj_conjuncts.size(); ++i) {
      if (i > 0) out << ", ";
      out << wcoj_conjuncts[i];
    }
    out << "]  replaces the binary order below\n";
  }
  for (size_t step = 0; step < order.size(); ++step) {
    const ExplainEntry& e = order[step];
    out << "  " << step + 1 << ". [" << e.conjunct << "] " << e.label;
    out << "  est_rows=" << e.est_rows;
    if (step > 0) out << (e.connected ? "" : "  CARTESIAN");
    if (!e.vars.empty()) {
      out << "  vars=(";
      for (size_t i = 0; i < e.vars.size(); ++i) {
        if (i > 0) out << ", ";
        out << e.vars[i];
      }
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace gqzoo
