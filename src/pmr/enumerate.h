#ifndef GQZOO_PMR_ENUMERATE_H_
#define GQZOO_PMR_ENUMERATE_H_

#include <functional>
#include <optional>

#include "src/graph/path_binding.h"
#include "src/pmr/pmr.h"
#include "src/util/biguint.h"
#include "src/util/cancellation.h"

namespace gqzoo {

/// Bounds for enumerating the (possibly infinite) SPaths of a PMR.
struct EnumerationLimits {
  /// Stop after this many results.
  size_t max_results = SIZE_MAX;
  /// Skip (and stop extending) PMR walks longer than this many edges.
  size_t max_length = SIZE_MAX;
  /// Optional cooperative governance (deadline, cancel, resource budgets);
  /// enumeration stops — and reports `cancelled` — as soon as the context
  /// trips. Emitted bindings are charged against the row and memory
  /// budgets; the ordered enumerator also charges its frontier. Not owned.
  const CancellationToken* cancel = nullptr;
};

/// Outcome of an enumeration: whether the limits cut it short.
struct EnumerationStats {
  size_t emitted = 0;
  bool truncated = false;
  /// The cancellation token tripped mid-enumeration; results are partial.
  bool cancelled = false;
};

/// Enumerates SPaths(pmr) together with their capture bindings, by DFS over
/// the trimmed PMR (call `Trim()` first for the output-linear-delay
/// guarantee; on a trimmed PMR every DFS step lies on some S→T walk).
/// The callback may return false to stop early.
EnumerationStats EnumeratePathBindings(
    const Pmr& pmr, const EnumerationLimits& limits,
    const std::function<bool(const PathBinding&)>& emit);

/// All results as a vector (deduplicated, sorted — set semantics; two
/// distinct PMR walks can map to the same (path, µ)).
std::vector<PathBinding> CollectPathBindings(const Pmr& pmr,
                                             const EnumerationLimits& limits,
                                             EnumerationStats* stats = nullptr);

/// Enumerates SPaths in nondecreasing length order — the k-shortest-paths
/// flavor of Section 7.1's "Evaluation Algorithms" (the Eppstein
/// direction), running directly on the succinct representation. Works on
/// PMRs with infinitely many paths: the first `limits.max_results` results
/// stream out in order. Best-first search over partial walks (memory grows
/// with the frontier, unlike the DFS enumerator). Distinct PMR walks that
/// map to the same (path, µ) are emitted separately, exactly as in
/// EnumeratePathBindings.
EnumerationStats EnumeratePathBindingsByLength(
    const Pmr& pmr, const EnumerationLimits& limits,
    const std::function<bool(const PathBinding&)>& emit);

/// The k shortest distinct results, in nondecreasing length order (ties in
/// deterministic walk order). Convenience wrapper over the ordered
/// enumerator with on-the-fly deduplication; `ctx` (optional) governs the
/// search like `EnumerationLimits::cancel`.
std::vector<PathBinding> KShortestPathBindings(const Pmr& pmr, size_t k,
                                               const QueryContext* ctx =
                                                   nullptr);

/// Number of S→T walks in the PMR, or nullopt if infinite. (This counts
/// PMR walks, which upper-bounds |SPaths|; on PMRs built by BuildPmr from
/// an unambiguous NFA it equals the number of distinct matching paths.)
std::optional<BigUint> CountPmrWalks(const Pmr& pmr);

}  // namespace gqzoo

#endif  // GQZOO_PMR_ENUMERATE_H_
