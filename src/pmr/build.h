#ifndef GQZOO_PMR_BUILD_H_
#define GQZOO_PMR_BUILD_H_

#include <optional>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/csr.h"
#include "src/pmr/pmr.h"
#include "src/rpq/product_graph.h"

namespace gqzoo {

/// Builds a (trimmed) PMR representing exactly the paths from `sources` to
/// `targets` whose label word is in L(nfa) — the product-graph-as-PMR
/// construction the paper describes for PathFinder-style engines (Section
/// 6.4). Capture annotations of the NFA are carried onto PMR edges, so the
/// result also represents the l-RPQ bindings.
///
/// When `sources` (`targets`) is empty, all graph nodes qualify.
///
/// The `GraphSnapshot` overloads build the underlying product graph via
/// label slices (each NFA transition pulls exactly its matching edges);
/// the resulting PMR — node ids, edge order, everything — is identical to
/// the seed path's.
Pmr BuildPmr(const EdgeLabeledGraph& g, const Nfa& nfa,
             const std::vector<NodeId>& sources,
             const std::vector<NodeId>& targets);
Pmr BuildPmr(const GraphSnapshot& s, const Nfa& nfa,
             const std::vector<NodeId>& sources,
             const std::vector<NodeId>& targets);

/// Convenience: single endpoint pair (σ_{u,v}([[R]]_G) as a PMR).
Pmr BuildPmrBetween(const EdgeLabeledGraph& g, const Nfa& nfa, NodeId u,
                    NodeId v);
Pmr BuildPmrBetween(const GraphSnapshot& s, const Nfa& nfa, NodeId u,
                    NodeId v);

}  // namespace gqzoo

#endif  // GQZOO_PMR_BUILD_H_
