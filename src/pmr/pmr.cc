#include "src/pmr/pmr.h"

#include <cassert>
#include <deque>
#include <limits>

namespace gqzoo {

uint32_t Pmr::AddNode(NodeId gamma) {
  uint32_t id = static_cast<uint32_t>(gamma_nodes_.size());
  gamma_nodes_.push_back(gamma);
  out_.emplace_back();
  is_target_.push_back(false);
  return id;
}

uint32_t Pmr::AddEdge(uint32_t from, uint32_t to, EdgeId gamma,
                      uint32_t capture) {
  assert(base_->Src(gamma) == gamma_nodes_[from] &&
         base_->Tgt(gamma) == gamma_nodes_[to] &&
         "PMR edge violates the homomorphism condition");
  uint32_t id = static_cast<uint32_t>(edges_.size());
  edges_.push_back({from, to, gamma, capture});
  out_[from].push_back(id);
  return id;
}

std::vector<bool> Pmr::ForwardReachable() const {
  std::vector<bool> seen(NumNodes(), false);
  std::deque<uint32_t> queue;
  for (uint32_t s : sources_) {
    if (!seen[s]) {
      seen[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    uint32_t n = queue.front();
    queue.pop_front();
    for (uint32_t e : out_[n]) {
      uint32_t to = edges_[e].to;
      if (!seen[to]) {
        seen[to] = true;
        queue.push_back(to);
      }
    }
  }
  return seen;
}

std::vector<bool> Pmr::BackwardReachable() const {
  std::vector<std::vector<uint32_t>> in(NumNodes());
  for (const Edge& e : edges_) in[e.to].push_back(e.from);
  std::vector<bool> seen(NumNodes(), false);
  std::deque<uint32_t> queue;
  for (uint32_t t : targets_) {
    if (!seen[t]) {
      seen[t] = true;
      queue.push_back(t);
    }
  }
  while (!queue.empty()) {
    uint32_t n = queue.front();
    queue.pop_front();
    for (uint32_t p : in[n]) {
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return seen;
}

Pmr Pmr::Restrict(const std::vector<bool>& keep_node,
                  const std::vector<bool>& keep_edge) const {
  Pmr out(*base_);
  out.capture_names_ = capture_names_;
  std::vector<uint32_t> remap(NumNodes(), UINT32_MAX);
  for (uint32_t n = 0; n < NumNodes(); ++n) {
    if (keep_node[n]) remap[n] = out.AddNode(gamma_nodes_[n]);
  }
  for (uint32_t e = 0; e < NumEdges(); ++e) {
    const Edge& edge = edges_[e];
    if (keep_edge[e] && keep_node[edge.from] && keep_node[edge.to]) {
      out.AddEdge(remap[edge.from], remap[edge.to], edge.gamma, edge.capture);
    }
  }
  for (uint32_t s : sources_) {
    if (keep_node[s]) out.AddSource(remap[s]);
  }
  for (uint32_t t : targets_) {
    if (keep_node[t]) out.AddTarget(remap[t]);
  }
  return out;
}

Pmr Pmr::Trim() const {
  std::vector<bool> fwd = ForwardReachable();
  std::vector<bool> bwd = BackwardReachable();
  std::vector<bool> keep_node(NumNodes());
  for (uint32_t n = 0; n < NumNodes(); ++n) keep_node[n] = fwd[n] && bwd[n];
  std::vector<bool> keep_edge(NumEdges(), true);
  return Restrict(keep_node, keep_edge);
}

Pmr Pmr::ShortestRestriction() const {
  constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> dist(NumNodes(), kInf);
  std::deque<uint32_t> queue;
  for (uint32_t s : sources_) {
    if (dist[s] == kInf) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    uint32_t n = queue.front();
    queue.pop_front();
    for (uint32_t e : out_[n]) {
      uint32_t to = edges_[e].to;
      if (dist[to] == kInf) {
        dist[to] = dist[n] + 1;
        queue.push_back(to);
      }
    }
  }
  std::vector<std::vector<uint32_t>> in(NumNodes());
  for (uint32_t e = 0; e < NumEdges(); ++e) in[edges_[e].to].push_back(e);
  std::vector<uint32_t> rdist(NumNodes(), kInf);
  for (uint32_t t : targets_) {
    if (rdist[t] == kInf) {
      rdist[t] = 0;
      queue.push_back(t);
    }
  }
  while (!queue.empty()) {
    uint32_t n = queue.front();
    queue.pop_front();
    for (uint32_t e : in[n]) {
      uint32_t from = edges_[e].from;
      if (rdist[from] == kInf) {
        rdist[from] = rdist[n] + 1;
        queue.push_back(from);
      }
    }
  }
  uint32_t best = kInf;
  for (uint32_t t : targets_) {
    if (dist[t] != kInf) best = std::min(best, dist[t]);
  }
  std::vector<bool> keep_node(NumNodes(), false);
  std::vector<bool> keep_edge(NumEdges(), false);
  if (best == kInf) return Restrict(keep_node, keep_edge);  // no S→T path
  for (uint32_t n = 0; n < NumNodes(); ++n) {
    keep_node[n] = dist[n] != kInf && rdist[n] != kInf &&
                   dist[n] + rdist[n] == best;
  }
  for (uint32_t e = 0; e < NumEdges(); ++e) {
    const Edge& edge = edges_[e];
    keep_edge[e] = dist[edge.from] != kInf && rdist[edge.to] != kInf &&
                   dist[edge.from] + 1 + rdist[edge.to] == best;
  }
  // Drop targets that are not at the global optimum; keep sources at 0.
  Pmr restricted = Restrict(keep_node, keep_edge);
  return restricted;
}

bool Pmr::RepresentsInfinitelyManyPaths() const {
  Pmr trimmed = Trim();
  // Cycle detection by iterative DFS coloring.
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(trimmed.NumNodes(), kWhite);
  for (uint32_t start = 0; start < trimmed.NumNodes(); ++start) {
    if (color[start] != kWhite) continue;
    // Stack of (node, next out-edge index).
    std::vector<std::pair<uint32_t, size_t>> stack = {{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [n, i] = stack.back();
      if (i < trimmed.Out(n).size()) {
        uint32_t to = trimmed.GetEdge(trimmed.Out(n)[i++]).to;
        if (color[to] == kGray) return true;
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.push_back({to, 0});
        }
      } else {
        color[n] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace gqzoo
