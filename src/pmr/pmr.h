#ifndef GQZOO_PMR_PMR_H_
#define GQZOO_PMR_PMR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace gqzoo {

/// A path multiset representation (Section 6.4): an auxiliary graph
/// `(N, E, src, tgt)` with a homomorphism γ into a base graph and sets S, T
/// of source/target nodes. The represented set of paths is
///
///     SPaths(R) = { γ(ρ) | ρ is a path from S to T in R }.
///
/// PMRs can be exponentially (even infinitely) more succinct than the path
/// sets they represent (experiments E3, E13).
///
/// Edges carry an optional capture variable so that a PMR built from an
/// l-RPQ product also represents the bindings µ: traversing an edge with
/// capture `z` appends γ(edge) to µ(z).
class Pmr {
 public:
  static constexpr uint32_t kNoCapture = UINT32_MAX;

  struct Edge {
    uint32_t from;
    uint32_t to;
    EdgeId gamma;      // γ(edge): an edge of the base graph
    uint32_t capture;  // index into capture_names(), or kNoCapture
  };

  explicit Pmr(const EdgeLabeledGraph& base) : base_(&base) {}

  /// Adds a PMR node with γ(node) = `gamma`.
  uint32_t AddNode(NodeId gamma);
  /// Adds a PMR edge; endpoints must satisfy the homomorphism condition
  /// (src(γ(e)) = γ(from), tgt(γ(e)) = γ(to)); asserted in debug builds.
  uint32_t AddEdge(uint32_t from, uint32_t to, EdgeId gamma,
                   uint32_t capture = kNoCapture);

  void AddSource(uint32_t node) { sources_.push_back(node); }
  void AddTarget(uint32_t node) {
    targets_.push_back(node);
    is_target_[node] = true;
  }

  size_t NumNodes() const { return gamma_nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  NodeId GammaNode(uint32_t n) const { return gamma_nodes_[n]; }
  const Edge& GetEdge(uint32_t e) const { return edges_[e]; }
  const std::vector<uint32_t>& Out(uint32_t n) const { return out_[n]; }
  const std::vector<uint32_t>& sources() const { return sources_; }
  const std::vector<uint32_t>& targets() const { return targets_; }
  bool IsTarget(uint32_t n) const { return is_target_[n]; }

  const EdgeLabeledGraph& base() const { return *base_; }

  std::vector<std::string>& capture_names() { return capture_names_; }
  const std::vector<std::string>& capture_names() const {
    return capture_names_;
  }

  /// Returns the sub-PMR of nodes both reachable from S and co-reachable
  /// to T (trimming preserves SPaths and makes enumeration output-linear).
  Pmr Trim() const;

  /// Restricts to the union of shortest S→T paths: keeps a node `n` iff
  /// dist(S, n) + dist(n, T) equals the global S→T distance, and an edge
  /// iff it lies on such a geodesic. Use on a PMR built for one endpoint
  /// pair to implement the `shortest` mode (Section 3.1.5 applies modes
  /// after endpoint selection, Example 17).
  Pmr ShortestRestriction() const;

  /// True if the trimmed PMR has a cycle, i.e. SPaths is infinite.
  bool RepresentsInfinitelyManyPaths() const;

 private:
  std::vector<bool> ForwardReachable() const;
  std::vector<bool> BackwardReachable() const;
  Pmr Restrict(const std::vector<bool>& keep_node,
               const std::vector<bool>& keep_edge) const;

  const EdgeLabeledGraph* base_;
  std::vector<NodeId> gamma_nodes_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<Edge> edges_;
  std::vector<uint32_t> sources_;
  std::vector<uint32_t> targets_;
  std::vector<bool> is_target_;
  std::vector<std::string> capture_names_;
};

}  // namespace gqzoo

#endif  // GQZOO_PMR_PMR_H_
