#include "src/pmr/enumerate.h"

#include <algorithm>
#include <queue>
#include <set>

#include "src/util/failpoint.h"

namespace gqzoo {

namespace {

class Enumerator {
 public:
  Enumerator(const Pmr& pmr, const EnumerationLimits& limits,
             const std::function<bool(const PathBinding&)>& emit)
      : pmr_(pmr), limits_(limits), emit_(emit) {}

  EnumerationStats Run() {
    for (uint32_t s : pmr_.sources()) {
      if (stopped_) break;
      current_.path = Path::OfNode(pmr_.GammaNode(s));
      current_.mu = Binding();
      Dfs(s, 0);
    }
    return stats_;
  }

 private:
  void Dfs(uint32_t node, size_t depth) {
    if (stopped_) return;
    if (ShouldStop(limits_.cancel)) {
      stats_.cancelled = true;
      stats_.truncated = true;
      stopped_ = true;
      return;
    }
    if (pmr_.IsTarget(node)) {
      if (limits_.cancel != nullptr &&
          Failpoint::ShouldFail("pmr.enumerate.emit")) {
        limits_.cancel->RequestCancel();
        stats_.cancelled = true;
        stats_.truncated = true;
        stopped_ = true;
        return;
      }
      // Each emitted binding is charged against the row and memory budgets;
      // Figure 5's 2^n paths run out of budget here, not of address space.
      if (!ChargeRows(limits_.cancel) ||
          !ChargeMemory(limits_.cancel, ApproxBytes(current_))) {
        stats_.cancelled = true;
        stats_.truncated = true;
        stopped_ = true;
        return;
      }
      ++stats_.emitted;
      if (!emit_(current_)) {
        stopped_ = true;
        return;
      }
      if (stats_.emitted >= limits_.max_results) {
        stats_.truncated = true;
        stopped_ = true;
        return;
      }
    }
    if (depth >= limits_.max_length) {
      if (!pmr_.Out(node).empty()) stats_.truncated = true;
      return;
    }
    for (uint32_t e : pmr_.Out(node)) {
      const Pmr::Edge& edge = pmr_.GetEdge(e);
      // Extend γ(walk): the base edge and its target node.
      current_.path.AppendObject(pmr_.base(), ObjectRef::Edge(edge.gamma));
      current_.path.AppendObject(pmr_.base(),
                                 ObjectRef::Node(pmr_.GammaNode(edge.to)));
      const bool captured = edge.capture != Pmr::kNoCapture;
      if (captured) {
        current_.mu.Append(pmr_.capture_names()[edge.capture],
                           ObjectRef::Edge(edge.gamma));
      }
      Dfs(edge.to, depth + 1);
      // Backtrack.
      if (captured) {
        const std::string& var = pmr_.capture_names()[edge.capture];
        ObjectList& list = current_.mu.lists[var];
        list.pop_back();
        if (list.empty()) current_.mu.lists.erase(var);
      }
      std::vector<ObjectRef> objs = current_.path.objects();
      objs.resize(objs.size() - 2);
      current_.path = Path::MakeUnchecked(std::move(objs));
      if (stopped_) return;
    }
  }

  const Pmr& pmr_;
  const EnumerationLimits& limits_;
  const std::function<bool(const PathBinding&)>& emit_;
  PathBinding current_;
  EnumerationStats stats_;
  bool stopped_ = false;
};

}  // namespace

EnumerationStats EnumeratePathBindings(
    const Pmr& pmr, const EnumerationLimits& limits,
    const std::function<bool(const PathBinding&)>& emit) {
  Enumerator enumerator(pmr, limits, emit);
  return enumerator.Run();
}

std::vector<PathBinding> CollectPathBindings(const Pmr& pmr,
                                             const EnumerationLimits& limits,
                                             EnumerationStats* stats) {
  std::vector<PathBinding> results;
  EnumerationStats local = EnumeratePathBindings(
      pmr, limits, [&results](const PathBinding& pb) {
        results.push_back(pb);
        return true;
      });
  // A cancelled enumeration is partial and gets discarded by deadline-aware
  // callers; don't burn post-deadline time ordering it.
  if (!local.cancelled) {
    std::sort(results.begin(), results.end());
    results.erase(std::unique(results.begin(), results.end()), results.end());
  }
  if (stats != nullptr) *stats = local;
  return results;
}

namespace {

// A partial S→T walk in the best-first frontier of the ordered enumerator.
struct PartialWalk {
  size_t length;        // number of PMR edges so far
  uint64_t sequence;    // tie-breaker: insertion order (FIFO within length)
  uint32_t node;        // current PMR node
  std::vector<ObjectRef> objects;  // γ(walk) so far
  Binding mu;

  bool operator>(const PartialWalk& o) const {
    if (length != o.length) return length > o.length;
    return sequence > o.sequence;
  }
};

}  // namespace

EnumerationStats EnumeratePathBindingsByLength(
    const Pmr& pmr, const EnumerationLimits& limits,
    const std::function<bool(const PathBinding&)>& emit) {
  EnumerationStats stats;
  std::priority_queue<PartialWalk, std::vector<PartialWalk>,
                      std::greater<PartialWalk>>
      frontier;
  // The best-first frontier is this enumerator's dominant memory term
  // (the DFS enumerator holds one walk; this one holds a queue of them) —
  // charge it walk-by-walk, releasing as walks are popped.
  ScopedMemoryCharge frontier_bytes(limits.cancel);
  auto walk_bytes = [](const PartialWalk& w) {
    uint64_t bytes = 96 + w.objects.size() * sizeof(ObjectRef);
    for (const auto& [var, list] : w.mu.lists) {
      bytes += 48 + var.size() + list.size() * sizeof(ObjectRef);
    }
    return bytes;
  };
  auto out_of_budget = [&stats] {
    stats.cancelled = true;
    stats.truncated = true;
    return stats;
  };
  uint64_t sequence = 0;
  for (uint32_t s : pmr.sources()) {
    PartialWalk start{0, sequence++, s,
                      {ObjectRef::Node(pmr.GammaNode(s))},
                      Binding()};
    if (!frontier_bytes.Charge(walk_bytes(start))) return out_of_budget();
    frontier.push(std::move(start));
  }
  while (!frontier.empty()) {
    if (ShouldStop(limits.cancel)) {
      stats.cancelled = true;
      stats.truncated = true;
      return stats;
    }
    PartialWalk walk = frontier.top();
    frontier.pop();
    frontier_bytes.Release(walk_bytes(walk));
    if (pmr.IsTarget(walk.node)) {
      if (!ChargeRows(limits.cancel)) return out_of_budget();
      ++stats.emitted;
      PathBinding pb{Path::MakeUnchecked(walk.objects), walk.mu};
      if (!emit(pb)) return stats;
      if (stats.emitted >= limits.max_results) {
        stats.truncated = !frontier.empty();
        return stats;
      }
    }
    if (walk.length >= limits.max_length) {
      if (!pmr.Out(walk.node).empty()) stats.truncated = true;
      continue;
    }
    for (uint32_t e : pmr.Out(walk.node)) {
      const Pmr::Edge& edge = pmr.GetEdge(e);
      PartialWalk next = walk;
      next.length = walk.length + 1;
      next.sequence = sequence++;
      next.node = edge.to;
      next.objects.push_back(ObjectRef::Edge(edge.gamma));
      next.objects.push_back(ObjectRef::Node(pmr.GammaNode(edge.to)));
      if (edge.capture != Pmr::kNoCapture) {
        next.mu.Append(pmr.capture_names()[edge.capture],
                       ObjectRef::Edge(edge.gamma));
      }
      if (!frontier_bytes.Charge(walk_bytes(next))) return out_of_budget();
      frontier.push(std::move(next));
    }
  }
  return stats;
}

std::vector<PathBinding> KShortestPathBindings(const Pmr& pmr, size_t k,
                                               const QueryContext* ctx) {
  std::vector<PathBinding> out;
  std::set<PathBinding> seen;
  EnumerationLimits limits;  // bounded by the emit callback below
  limits.cancel = ctx;
  EnumeratePathBindingsByLength(pmr, limits, [&](const PathBinding& pb) {
    if (seen.insert(pb).second) out.push_back(pb);
    return out.size() < k;
  });
  return out;
}

std::optional<BigUint> CountPmrWalks(const Pmr& pmr) {
  Pmr trimmed = pmr.Trim();
  if (trimmed.RepresentsInfinitelyManyPaths()) return std::nullopt;
  // DAG DP: f(n) = [n ∈ T] + Σ_{n→m} f(m), computed by memoized DFS.
  std::vector<std::optional<BigUint>> memo(trimmed.NumNodes());
  // Iterative post-order to avoid recursion depth issues on long chains.
  std::function<const BigUint&(uint32_t)> f = [&](uint32_t n) -> const BigUint& {
    if (!memo[n].has_value()) {
      BigUint total(trimmed.IsTarget(n) ? 1 : 0);
      for (uint32_t e : trimmed.Out(n)) {
        total += f(trimmed.GetEdge(e).to);
      }
      memo[n] = std::move(total);
    }
    return *memo[n];
  };
  BigUint total;
  for (uint32_t s : trimmed.sources()) total += f(s);
  return total;
}

}  // namespace gqzoo
