#include "src/pmr/build.h"

#include <cassert>

namespace gqzoo {

namespace {

// Product graph -> PMR, shared by both adjacency substrates.
Pmr PmrFromProduct(const ProductGraph& product, const Nfa& nfa,
                   const std::vector<NodeId>& sources,
                   const std::vector<NodeId>& targets) {
  const EdgeLabeledGraph& g = product.graph();
  Pmr pmr(g);
  pmr.capture_names() = nfa.capture_names();
  // PMR node i corresponds to product node i; γ projects to the graph node.
  for (uint32_t id = 0; id < product.num_product_nodes(); ++id) {
    pmr.AddNode(product.GraphNode(id));
  }
  for (uint32_t id = 0; id < product.num_product_nodes(); ++id) {
    for (const ProductGraph::Arc& arc : product.Out(id)) {
      pmr.AddEdge(id, arc.to, arc.edge, arc.capture);
    }
  }
  auto add_source = [&](NodeId u) {
    pmr.AddSource(product.Encode(u, nfa.initial()));
  };
  auto add_target = [&](NodeId v) {
    for (uint32_t q = 0; q < nfa.num_states(); ++q) {
      if (nfa.accepting(q)) pmr.AddTarget(product.Encode(v, q));
    }
  };
  if (sources.empty()) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) add_source(u);
  } else {
    for (NodeId u : sources) add_source(u);
  }
  if (targets.empty()) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) add_target(v);
  } else {
    for (NodeId v : targets) add_target(v);
  }
  return pmr.Trim();
}

}  // namespace

Pmr BuildPmr(const EdgeLabeledGraph& g, const Nfa& nfa,
             const std::vector<NodeId>& sources,
             const std::vector<NodeId>& targets) {
  // PMRs represent one-way paths (Remark 9): inverse transitions have no
  // path witness in this model.
  assert(!nfa.HasInverse() && "PMRs require one-way automata");
  ProductGraph product(g, nfa);
  return PmrFromProduct(product, nfa, sources, targets);
}

Pmr BuildPmr(const GraphSnapshot& s, const Nfa& nfa,
             const std::vector<NodeId>& sources,
             const std::vector<NodeId>& targets) {
  assert(!nfa.HasInverse() && "PMRs require one-way automata");
  ProductGraph product(s, nfa);
  return PmrFromProduct(product, nfa, sources, targets);
}

Pmr BuildPmrBetween(const EdgeLabeledGraph& g, const Nfa& nfa, NodeId u,
                    NodeId v) {
  return BuildPmr(g, nfa, {u}, {v});
}

Pmr BuildPmrBetween(const GraphSnapshot& s, const Nfa& nfa, NodeId u,
                    NodeId v) {
  return BuildPmr(s, nfa, {u}, {v});
}

}  // namespace gqzoo
