#ifndef GQZOO_NESTED_REGULAR_QUERIES_H_
#define GQZOO_NESTED_REGULAR_QUERIES_H_

#include <string>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/crpq/eval.h"
#include "src/util/result.h"

namespace gqzoo {

/// Nested CRPQs / regular queries (Section 3.1.3, after Reutter, Romero &
/// Vardi's Datalog-like syntax): a sequence of *rules*, each defining a
/// binary virtual edge label by a CRPQ over the base labels and previously
/// defined rules, plus a main CRPQ that may use all of them. Because rules
/// can appear under Kleene star in later RPQs, this closes CRPQs under the
/// transitive closure that flat CRPQs lack (Examples 14–15; Proposition 24
/// identifies this as what CoreGQL is missing for NLOGSPACE).
struct RegularQueryRule {
  std::string name;  // the virtual edge label being defined
  Crpq query;        // must have exactly two head variables
};

struct RegularQuery {
  std::vector<RegularQueryRule> rules;
  Crpq main;
};

/// Parses the Datalog-like syntax; rules separated by `;`, the last query
/// (with any head) is the main one. Rule names may be used as labels in
/// later rules' regexes:
///
///     twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;
///     q(u, v) := twoWay*(u, v)
Result<RegularQuery> ParseRegularQuery(const std::string& text);

/// Evaluates by stratum: each rule is materialized as virtual edges (named
/// "name#i") added to a working copy of the graph, in order; then the main
/// CRPQ runs on the extended graph. Rules must not reference later rules
/// or themselves (checked).
Result<CrpqResult> EvalRegularQuery(const EdgeLabeledGraph& g,
                                    const RegularQuery& query,
                                    const CrpqEvalOptions& options = {});

}  // namespace gqzoo

#endif  // GQZOO_NESTED_REGULAR_QUERIES_H_
