#include "src/nested/regular_queries.h"

#include <set>

#include "src/crpq/crpq_parser.h"

namespace gqzoo {

namespace {

void CollectAtomLabels(const Regex& r, std::set<std::string>* out) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return;
    case Regex::Op::kAtom:
      for (const std::string& l : r.atom().labels) out->insert(l);
      return;
    case Regex::Op::kConcat:
    case Regex::Op::kUnion:
      CollectAtomLabels(*r.left(), out);
      CollectAtomLabels(*r.right(), out);
      return;
    case Regex::Op::kStar:
    case Regex::Op::kPlus:
    case Regex::Op::kOptional:
      CollectAtomLabels(*r.child(), out);
      return;
  }
}

std::set<std::string> LabelsUsedBy(const Crpq& q) {
  std::set<std::string> labels;
  for (const CrpqAtom& atom : q.atoms) {
    CollectAtomLabels(*atom.regex, &labels);
  }
  return labels;
}

}  // namespace

Result<RegularQuery> ParseRegularQuery(const std::string& text) {
  // Split on ';' (the lexer has no string literals spanning rules in this
  // syntax, but respect quotes anyway by simple scanning).
  std::vector<std::string> parts;
  std::string current;
  bool in_string = false;
  char quote = '\0';
  for (char c : text) {
    if (in_string) {
      current += c;
      if (c == quote) in_string = false;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
      current += c;
      continue;
    }
    if (c == ';') {
      parts.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) parts.push_back(current);
  // Drop whitespace-only parts.
  std::erase_if(parts, [](const std::string& s) {
    return s.find_first_not_of(" \t\r\n") == std::string::npos;
  });
  if (parts.empty()) return Error("empty regular query");

  RegularQuery query;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    Result<Crpq> rule = ParseCrpq(parts[i]);
    if (!rule.ok()) return rule.error();
    if (rule.value().head.size() != 2) {
      return Error("rule '" + rule.value().name +
                   "' must have exactly two head variables");
    }
    query.rules.push_back({rule.value().name, std::move(rule).value()});
  }
  Result<Crpq> main = ParseCrpq(parts.back());
  if (!main.ok()) return main.error();
  query.main = std::move(main).value();

  // Stratification check: a rule may only use earlier rules' names.
  std::set<std::string> defined;
  for (const RegularQueryRule& rule : query.rules) {
    for (const std::string& label : LabelsUsedBy(rule.query)) {
      bool is_later_rule = false;
      bool found = defined.count(label) > 0;
      if (!found) {
        for (const RegularQueryRule& other : query.rules) {
          if (other.name == label) {
            is_later_rule = true;
            break;
          }
        }
      }
      if (is_later_rule) {
        return Error("rule '" + rule.name + "' references rule '" + label +
                     "' which is not defined before it (regular queries are "
                     "non-recursive)");
      }
    }
    defined.insert(rule.name);
  }
  return query;
}

Result<CrpqResult> EvalRegularQuery(const EdgeLabeledGraph& g,
                                    const RegularQuery& query,
                                    const CrpqEvalOptions& options) {
  EdgeLabeledGraph working = g.MaterializePlain();
  // Each rule materializes new edges into `working`, so any snapshot the
  // caller passed describes a stale graph: evaluate rules and the main
  // query against a plain mutable copy directly (overlay and mapped
  // graphs are immutable, hence MaterializePlain).
  CrpqEvalOptions local = options;
  local.snapshot = nullptr;
  local.pool = nullptr;
  for (const RegularQueryRule& rule : query.rules) {
    Result<CrpqResult> pairs = EvalCrpq(working, rule.query, local);
    if (!pairs.ok()) return pairs;
    if (pairs.value().head.size() != 2) {
      return Error("rule '" + rule.name + "' did not produce a binary result");
    }
    LabelId label = working.InternLabel(rule.name);
    for (const auto& row : pairs.value().rows) {
      if (!std::holds_alternative<NodeId>(row[0]) ||
          !std::holds_alternative<NodeId>(row[1])) {
        return Error("rule '" + rule.name +
                     "' head must consist of endpoint variables");
      }
      working.AddEdge(std::get<NodeId>(row[0]), std::get<NodeId>(row[1]),
                      label);
    }
  }
  return EvalCrpq(working, query.main, local);
}

}  // namespace gqzoo
