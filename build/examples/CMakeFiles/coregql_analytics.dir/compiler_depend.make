# Empty compiler generated dependencies file for coregql_analytics.
# This may be replaced when dependencies are built.
