file(REMOVE_RECURSE
  "CMakeFiles/coregql_analytics.dir/coregql_analytics.cpp.o"
  "CMakeFiles/coregql_analytics.dir/coregql_analytics.cpp.o.d"
  "coregql_analytics"
  "coregql_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coregql_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
