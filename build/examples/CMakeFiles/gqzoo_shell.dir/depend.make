# Empty dependencies file for gqzoo_shell.
# This may be replaced when dependencies are built.
