
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gqzoo_shell.cpp" "examples/CMakeFiles/gqzoo_shell.dir/gqzoo_shell.cpp.o" "gcc" "examples/CMakeFiles/gqzoo_shell.dir/gqzoo_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gqzoo_datatest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_cypher.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_lists.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_coregql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_nested.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_crpq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_pmr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
