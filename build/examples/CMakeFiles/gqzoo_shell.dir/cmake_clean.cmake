file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_shell.dir/gqzoo_shell.cpp.o"
  "CMakeFiles/gqzoo_shell.dir/gqzoo_shell.cpp.o.d"
  "gqzoo_shell"
  "gqzoo_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
