# Empty compiler generated dependencies file for travel_itineraries.
# This may be replaced when dependencies are built.
