file(REMOVE_RECURSE
  "CMakeFiles/travel_itineraries.dir/travel_itineraries.cpp.o"
  "CMakeFiles/travel_itineraries.dir/travel_itineraries.cpp.o.d"
  "travel_itineraries"
  "travel_itineraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_itineraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
