file(REMOVE_RECURSE
  "CMakeFiles/walk_logic_test.dir/walk_logic_test.cc.o"
  "CMakeFiles/walk_logic_test.dir/walk_logic_test.cc.o.d"
  "walk_logic_test"
  "walk_logic_test.pdb"
  "walk_logic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
