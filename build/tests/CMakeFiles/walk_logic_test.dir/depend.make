# Empty dependencies file for walk_logic_test.
# This may be replaced when dependencies are built.
