# Empty compiler generated dependencies file for lists_test.
# This may be replaced when dependencies are built.
