file(REMOVE_RECURSE
  "CMakeFiles/datatest_test.dir/datatest_test.cc.o"
  "CMakeFiles/datatest_test.dir/datatest_test.cc.o.d"
  "datatest_test"
  "datatest_test.pdb"
  "datatest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datatest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
