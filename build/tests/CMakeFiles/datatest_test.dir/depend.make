# Empty dependencies file for datatest_test.
# This may be replaced when dependencies are built.
