# Empty compiler generated dependencies file for pmr_test.
# This may be replaced when dependencies are built.
