file(REMOVE_RECURSE
  "CMakeFiles/pmr_test.dir/pmr_test.cc.o"
  "CMakeFiles/pmr_test.dir/pmr_test.cc.o.d"
  "pmr_test"
  "pmr_test.pdb"
  "pmr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
