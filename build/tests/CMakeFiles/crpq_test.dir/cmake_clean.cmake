file(REMOVE_RECURSE
  "CMakeFiles/crpq_test.dir/crpq_test.cc.o"
  "CMakeFiles/crpq_test.dir/crpq_test.cc.o.d"
  "crpq_test"
  "crpq_test.pdb"
  "crpq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
