file(REMOVE_RECURSE
  "libgqzoo_test_util.a"
)
