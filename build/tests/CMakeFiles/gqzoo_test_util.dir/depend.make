# Empty dependencies file for gqzoo_test_util.
# This may be replaced when dependencies are built.
