file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_test_util.dir/test_util.cc.o"
  "CMakeFiles/gqzoo_test_util.dir/test_util.cc.o.d"
  "libgqzoo_test_util.a"
  "libgqzoo_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
