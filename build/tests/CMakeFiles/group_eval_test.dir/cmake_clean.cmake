file(REMOVE_RECURSE
  "CMakeFiles/group_eval_test.dir/group_eval_test.cc.o"
  "CMakeFiles/group_eval_test.dir/group_eval_test.cc.o.d"
  "group_eval_test"
  "group_eval_test.pdb"
  "group_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
