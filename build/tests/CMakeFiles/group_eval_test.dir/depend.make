# Empty dependencies file for group_eval_test.
# This may be replaced when dependencies are built.
