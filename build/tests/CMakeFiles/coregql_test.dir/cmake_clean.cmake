file(REMOVE_RECURSE
  "CMakeFiles/coregql_test.dir/coregql_test.cc.o"
  "CMakeFiles/coregql_test.dir/coregql_test.cc.o.d"
  "coregql_test"
  "coregql_test.pdb"
  "coregql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coregql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
