# Empty compiler generated dependencies file for coregql_test.
# This may be replaced when dependencies are built.
