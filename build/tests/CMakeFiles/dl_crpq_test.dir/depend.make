# Empty dependencies file for dl_crpq_test.
# This may be replaced when dependencies are built.
