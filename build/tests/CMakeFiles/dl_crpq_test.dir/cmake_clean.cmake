file(REMOVE_RECURSE
  "CMakeFiles/dl_crpq_test.dir/dl_crpq_test.cc.o"
  "CMakeFiles/dl_crpq_test.dir/dl_crpq_test.cc.o.d"
  "dl_crpq_test"
  "dl_crpq_test.pdb"
  "dl_crpq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_crpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
