# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/rpq_test[1]_include.cmake")
include("/root/repo/build/tests/pmr_test[1]_include.cmake")
include("/root/repo/build/tests/crpq_test[1]_include.cmake")
include("/root/repo/build/tests/datatest_test[1]_include.cmake")
include("/root/repo/build/tests/coregql_test[1]_include.cmake")
include("/root/repo/build/tests/cypher_test[1]_include.cmake")
include("/root/repo/build/tests/lists_test[1]_include.cmake")
include("/root/repo/build/tests/nested_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/modes_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cardinality_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/group_eval_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/optimize_test[1]_include.cmake")
include("/root/repo/build/tests/walk_logic_test[1]_include.cmake")
include("/root/repo/build/tests/dl_crpq_test[1]_include.cmake")
