file(REMOVE_RECURSE
  "libgqzoo_automata.a"
)
