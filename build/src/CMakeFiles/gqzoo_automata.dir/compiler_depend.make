# Empty compiler generated dependencies file for gqzoo_automata.
# This may be replaced when dependencies are built.
