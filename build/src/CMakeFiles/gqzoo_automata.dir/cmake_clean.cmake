file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_automata.dir/automata/counting.cc.o"
  "CMakeFiles/gqzoo_automata.dir/automata/counting.cc.o.d"
  "CMakeFiles/gqzoo_automata.dir/automata/glushkov.cc.o"
  "CMakeFiles/gqzoo_automata.dir/automata/glushkov.cc.o.d"
  "CMakeFiles/gqzoo_automata.dir/automata/nfa.cc.o"
  "CMakeFiles/gqzoo_automata.dir/automata/nfa.cc.o.d"
  "CMakeFiles/gqzoo_automata.dir/automata/operations.cc.o"
  "CMakeFiles/gqzoo_automata.dir/automata/operations.cc.o.d"
  "libgqzoo_automata.a"
  "libgqzoo_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
