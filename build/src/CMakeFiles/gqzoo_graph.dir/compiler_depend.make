# Empty compiler generated dependencies file for gqzoo_graph.
# This may be replaced when dependencies are built.
