file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_graph.dir/graph/builtin_graphs.cc.o"
  "CMakeFiles/gqzoo_graph.dir/graph/builtin_graphs.cc.o.d"
  "CMakeFiles/gqzoo_graph.dir/graph/generators.cc.o"
  "CMakeFiles/gqzoo_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/gqzoo_graph.dir/graph/graph.cc.o"
  "CMakeFiles/gqzoo_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/gqzoo_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/gqzoo_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/gqzoo_graph.dir/graph/path.cc.o"
  "CMakeFiles/gqzoo_graph.dir/graph/path.cc.o.d"
  "libgqzoo_graph.a"
  "libgqzoo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
