file(REMOVE_RECURSE
  "libgqzoo_graph.a"
)
