
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builtin_graphs.cc" "src/CMakeFiles/gqzoo_graph.dir/graph/builtin_graphs.cc.o" "gcc" "src/CMakeFiles/gqzoo_graph.dir/graph/builtin_graphs.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/gqzoo_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/gqzoo_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/gqzoo_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/gqzoo_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/gqzoo_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/gqzoo_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/path.cc" "src/CMakeFiles/gqzoo_graph.dir/graph/path.cc.o" "gcc" "src/CMakeFiles/gqzoo_graph.dir/graph/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gqzoo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
