# Empty compiler generated dependencies file for gqzoo_pmr.
# This may be replaced when dependencies are built.
