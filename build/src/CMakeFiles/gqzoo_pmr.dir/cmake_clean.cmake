file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_pmr.dir/pmr/build.cc.o"
  "CMakeFiles/gqzoo_pmr.dir/pmr/build.cc.o.d"
  "CMakeFiles/gqzoo_pmr.dir/pmr/enumerate.cc.o"
  "CMakeFiles/gqzoo_pmr.dir/pmr/enumerate.cc.o.d"
  "CMakeFiles/gqzoo_pmr.dir/pmr/pmr.cc.o"
  "CMakeFiles/gqzoo_pmr.dir/pmr/pmr.cc.o.d"
  "libgqzoo_pmr.a"
  "libgqzoo_pmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_pmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
