file(REMOVE_RECURSE
  "libgqzoo_pmr.a"
)
