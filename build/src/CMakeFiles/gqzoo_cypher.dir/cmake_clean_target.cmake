file(REMOVE_RECURSE
  "libgqzoo_cypher.a"
)
