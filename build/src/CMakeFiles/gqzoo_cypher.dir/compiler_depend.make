# Empty compiler generated dependencies file for gqzoo_cypher.
# This may be replaced when dependencies are built.
