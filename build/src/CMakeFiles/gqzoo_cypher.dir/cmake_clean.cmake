file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_cypher.dir/cypher/cypher_fragment.cc.o"
  "CMakeFiles/gqzoo_cypher.dir/cypher/cypher_fragment.cc.o.d"
  "libgqzoo_cypher.a"
  "libgqzoo_cypher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_cypher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
