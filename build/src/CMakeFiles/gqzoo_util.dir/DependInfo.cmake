
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/biguint.cc" "src/CMakeFiles/gqzoo_util.dir/util/biguint.cc.o" "gcc" "src/CMakeFiles/gqzoo_util.dir/util/biguint.cc.o.d"
  "/root/repo/src/util/interner.cc" "src/CMakeFiles/gqzoo_util.dir/util/interner.cc.o" "gcc" "src/CMakeFiles/gqzoo_util.dir/util/interner.cc.o.d"
  "/root/repo/src/util/value.cc" "src/CMakeFiles/gqzoo_util.dir/util/value.cc.o" "gcc" "src/CMakeFiles/gqzoo_util.dir/util/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
