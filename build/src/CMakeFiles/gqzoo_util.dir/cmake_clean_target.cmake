file(REMOVE_RECURSE
  "libgqzoo_util.a"
)
