# Empty compiler generated dependencies file for gqzoo_util.
# This may be replaced when dependencies are built.
