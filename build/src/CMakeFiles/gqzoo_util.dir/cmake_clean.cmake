file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_util.dir/util/biguint.cc.o"
  "CMakeFiles/gqzoo_util.dir/util/biguint.cc.o.d"
  "CMakeFiles/gqzoo_util.dir/util/interner.cc.o"
  "CMakeFiles/gqzoo_util.dir/util/interner.cc.o.d"
  "CMakeFiles/gqzoo_util.dir/util/value.cc.o"
  "CMakeFiles/gqzoo_util.dir/util/value.cc.o.d"
  "libgqzoo_util.a"
  "libgqzoo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
