file(REMOVE_RECURSE
  "libgqzoo_crpq.a"
)
