file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_crpq.dir/crpq/crpq.cc.o"
  "CMakeFiles/gqzoo_crpq.dir/crpq/crpq.cc.o.d"
  "CMakeFiles/gqzoo_crpq.dir/crpq/crpq_parser.cc.o"
  "CMakeFiles/gqzoo_crpq.dir/crpq/crpq_parser.cc.o.d"
  "CMakeFiles/gqzoo_crpq.dir/crpq/eval.cc.o"
  "CMakeFiles/gqzoo_crpq.dir/crpq/eval.cc.o.d"
  "CMakeFiles/gqzoo_crpq.dir/crpq/join.cc.o"
  "CMakeFiles/gqzoo_crpq.dir/crpq/join.cc.o.d"
  "CMakeFiles/gqzoo_crpq.dir/crpq/modes.cc.o"
  "CMakeFiles/gqzoo_crpq.dir/crpq/modes.cc.o.d"
  "libgqzoo_crpq.a"
  "libgqzoo_crpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_crpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
