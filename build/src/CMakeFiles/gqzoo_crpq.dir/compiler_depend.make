# Empty compiler generated dependencies file for gqzoo_crpq.
# This may be replaced when dependencies are built.
