# Empty compiler generated dependencies file for gqzoo_nested.
# This may be replaced when dependencies are built.
