file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_nested.dir/nested/regular_queries.cc.o"
  "CMakeFiles/gqzoo_nested.dir/nested/regular_queries.cc.o.d"
  "libgqzoo_nested.a"
  "libgqzoo_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
