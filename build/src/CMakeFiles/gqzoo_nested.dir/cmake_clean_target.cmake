file(REMOVE_RECURSE
  "libgqzoo_nested.a"
)
