file(REMOVE_RECURSE
  "libgqzoo_lists.a"
)
