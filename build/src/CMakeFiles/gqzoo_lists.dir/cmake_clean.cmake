file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_lists.dir/lists/aggregate_paths.cc.o"
  "CMakeFiles/gqzoo_lists.dir/lists/aggregate_paths.cc.o.d"
  "CMakeFiles/gqzoo_lists.dir/lists/forall_subpattern.cc.o"
  "CMakeFiles/gqzoo_lists.dir/lists/forall_subpattern.cc.o.d"
  "CMakeFiles/gqzoo_lists.dir/lists/list_functions.cc.o"
  "CMakeFiles/gqzoo_lists.dir/lists/list_functions.cc.o.d"
  "libgqzoo_lists.a"
  "libgqzoo_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
