
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lists/aggregate_paths.cc" "src/CMakeFiles/gqzoo_lists.dir/lists/aggregate_paths.cc.o" "gcc" "src/CMakeFiles/gqzoo_lists.dir/lists/aggregate_paths.cc.o.d"
  "/root/repo/src/lists/forall_subpattern.cc" "src/CMakeFiles/gqzoo_lists.dir/lists/forall_subpattern.cc.o" "gcc" "src/CMakeFiles/gqzoo_lists.dir/lists/forall_subpattern.cc.o.d"
  "/root/repo/src/lists/list_functions.cc" "src/CMakeFiles/gqzoo_lists.dir/lists/list_functions.cc.o" "gcc" "src/CMakeFiles/gqzoo_lists.dir/lists/list_functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gqzoo_coregql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
