# Empty compiler generated dependencies file for gqzoo_lists.
# This may be replaced when dependencies are built.
