# Empty dependencies file for gqzoo_regex.
# This may be replaced when dependencies are built.
