file(REMOVE_RECURSE
  "libgqzoo_regex.a"
)
