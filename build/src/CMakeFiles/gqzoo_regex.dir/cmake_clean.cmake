file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_regex.dir/regex/ast.cc.o"
  "CMakeFiles/gqzoo_regex.dir/regex/ast.cc.o.d"
  "CMakeFiles/gqzoo_regex.dir/regex/lexer.cc.o"
  "CMakeFiles/gqzoo_regex.dir/regex/lexer.cc.o.d"
  "CMakeFiles/gqzoo_regex.dir/regex/parser.cc.o"
  "CMakeFiles/gqzoo_regex.dir/regex/parser.cc.o.d"
  "CMakeFiles/gqzoo_regex.dir/regex/printer.cc.o"
  "CMakeFiles/gqzoo_regex.dir/regex/printer.cc.o.d"
  "CMakeFiles/gqzoo_regex.dir/regex/rewrite.cc.o"
  "CMakeFiles/gqzoo_regex.dir/regex/rewrite.cc.o.d"
  "libgqzoo_regex.a"
  "libgqzoo_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
