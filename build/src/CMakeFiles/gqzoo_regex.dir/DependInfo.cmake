
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/ast.cc" "src/CMakeFiles/gqzoo_regex.dir/regex/ast.cc.o" "gcc" "src/CMakeFiles/gqzoo_regex.dir/regex/ast.cc.o.d"
  "/root/repo/src/regex/lexer.cc" "src/CMakeFiles/gqzoo_regex.dir/regex/lexer.cc.o" "gcc" "src/CMakeFiles/gqzoo_regex.dir/regex/lexer.cc.o.d"
  "/root/repo/src/regex/parser.cc" "src/CMakeFiles/gqzoo_regex.dir/regex/parser.cc.o" "gcc" "src/CMakeFiles/gqzoo_regex.dir/regex/parser.cc.o.d"
  "/root/repo/src/regex/printer.cc" "src/CMakeFiles/gqzoo_regex.dir/regex/printer.cc.o" "gcc" "src/CMakeFiles/gqzoo_regex.dir/regex/printer.cc.o.d"
  "/root/repo/src/regex/rewrite.cc" "src/CMakeFiles/gqzoo_regex.dir/regex/rewrite.cc.o" "gcc" "src/CMakeFiles/gqzoo_regex.dir/regex/rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gqzoo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
