file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_datatest.dir/datatest/dl_eval.cc.o"
  "CMakeFiles/gqzoo_datatest.dir/datatest/dl_eval.cc.o.d"
  "CMakeFiles/gqzoo_datatest.dir/datatest/dl_rpq.cc.o"
  "CMakeFiles/gqzoo_datatest.dir/datatest/dl_rpq.cc.o.d"
  "libgqzoo_datatest.a"
  "libgqzoo_datatest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_datatest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
