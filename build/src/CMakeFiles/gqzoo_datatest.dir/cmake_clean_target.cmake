file(REMOVE_RECURSE
  "libgqzoo_datatest.a"
)
