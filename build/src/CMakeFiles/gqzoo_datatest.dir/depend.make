# Empty dependencies file for gqzoo_datatest.
# This may be replaced when dependencies are built.
