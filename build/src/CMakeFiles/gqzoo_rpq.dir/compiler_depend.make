# Empty compiler generated dependencies file for gqzoo_rpq.
# This may be replaced when dependencies are built.
