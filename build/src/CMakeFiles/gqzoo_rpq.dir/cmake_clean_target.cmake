file(REMOVE_RECURSE
  "libgqzoo_rpq.a"
)
