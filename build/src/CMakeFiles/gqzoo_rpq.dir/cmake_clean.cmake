file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_rpq.dir/rpq/bag_semantics.cc.o"
  "CMakeFiles/gqzoo_rpq.dir/rpq/bag_semantics.cc.o.d"
  "CMakeFiles/gqzoo_rpq.dir/rpq/cardinality.cc.o"
  "CMakeFiles/gqzoo_rpq.dir/rpq/cardinality.cc.o.d"
  "CMakeFiles/gqzoo_rpq.dir/rpq/product_graph.cc.o"
  "CMakeFiles/gqzoo_rpq.dir/rpq/product_graph.cc.o.d"
  "CMakeFiles/gqzoo_rpq.dir/rpq/rpq_eval.cc.o"
  "CMakeFiles/gqzoo_rpq.dir/rpq/rpq_eval.cc.o.d"
  "libgqzoo_rpq.a"
  "libgqzoo_rpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_rpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
