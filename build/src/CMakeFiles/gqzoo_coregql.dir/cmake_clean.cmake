file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_coregql.dir/coregql/algebra.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/algebra.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/group_eval.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/group_eval.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/optimize.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/optimize.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/pattern.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/pattern.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/pattern_eval.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/pattern_eval.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/pattern_parser.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/pattern_parser.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/query.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/query.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/query_parser.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/query_parser.cc.o.d"
  "CMakeFiles/gqzoo_coregql.dir/coregql/relation.cc.o"
  "CMakeFiles/gqzoo_coregql.dir/coregql/relation.cc.o.d"
  "libgqzoo_coregql.a"
  "libgqzoo_coregql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_coregql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
