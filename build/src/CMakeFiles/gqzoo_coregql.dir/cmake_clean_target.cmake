file(REMOVE_RECURSE
  "libgqzoo_coregql.a"
)
