
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coregql/algebra.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/algebra.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/algebra.cc.o.d"
  "/root/repo/src/coregql/group_eval.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/group_eval.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/group_eval.cc.o.d"
  "/root/repo/src/coregql/optimize.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/optimize.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/optimize.cc.o.d"
  "/root/repo/src/coregql/pattern.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/pattern.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/pattern.cc.o.d"
  "/root/repo/src/coregql/pattern_eval.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/pattern_eval.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/pattern_eval.cc.o.d"
  "/root/repo/src/coregql/pattern_parser.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/pattern_parser.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/pattern_parser.cc.o.d"
  "/root/repo/src/coregql/query.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/query.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/query.cc.o.d"
  "/root/repo/src/coregql/query_parser.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/query_parser.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/query_parser.cc.o.d"
  "/root/repo/src/coregql/relation.cc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/relation.cc.o" "gcc" "src/CMakeFiles/gqzoo_coregql.dir/coregql/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gqzoo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gqzoo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
