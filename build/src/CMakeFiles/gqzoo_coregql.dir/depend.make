# Empty dependencies file for gqzoo_coregql.
# This may be replaced when dependencies are built.
