file(REMOVE_RECURSE
  "libgqzoo_logic.a"
)
