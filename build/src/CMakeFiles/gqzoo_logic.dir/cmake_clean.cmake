file(REMOVE_RECURSE
  "CMakeFiles/gqzoo_logic.dir/logic/walk_logic.cc.o"
  "CMakeFiles/gqzoo_logic.dir/logic/walk_logic.cc.o.d"
  "libgqzoo_logic.a"
  "libgqzoo_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqzoo_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
