# Empty compiler generated dependencies file for gqzoo_logic.
# This may be replaced when dependencies are built.
