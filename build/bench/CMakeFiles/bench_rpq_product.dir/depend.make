# Empty dependencies file for bench_rpq_product.
# This may be replaced when dependencies are built.
