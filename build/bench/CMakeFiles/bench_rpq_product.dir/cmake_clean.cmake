file(REMOVE_RECURSE
  "CMakeFiles/bench_rpq_product.dir/bench_rpq_product.cc.o"
  "CMakeFiles/bench_rpq_product.dir/bench_rpq_product.cc.o.d"
  "bench_rpq_product"
  "bench_rpq_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpq_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
