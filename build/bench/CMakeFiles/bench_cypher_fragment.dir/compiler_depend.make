# Empty compiler generated dependencies file for bench_cypher_fragment.
# This may be replaced when dependencies are built.
