file(REMOVE_RECURSE
  "CMakeFiles/bench_cypher_fragment.dir/bench_cypher_fragment.cc.o"
  "CMakeFiles/bench_cypher_fragment.dir/bench_cypher_fragment.cc.o.d"
  "bench_cypher_fragment"
  "bench_cypher_fragment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cypher_fragment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
