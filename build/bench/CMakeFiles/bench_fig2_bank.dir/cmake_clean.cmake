file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bank.dir/bench_fig2_bank.cc.o"
  "CMakeFiles/bench_fig2_bank.dir/bench_fig2_bank.cc.o.d"
  "bench_fig2_bank"
  "bench_fig2_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
