# Empty dependencies file for bench_fig2_bank.
# This may be replaced when dependencies are built.
