# Empty dependencies file for bench_unambiguous_counting.
# This may be replaced when dependencies are built.
