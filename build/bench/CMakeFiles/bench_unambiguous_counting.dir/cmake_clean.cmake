file(REMOVE_RECURSE
  "CMakeFiles/bench_unambiguous_counting.dir/bench_unambiguous_counting.cc.o"
  "CMakeFiles/bench_unambiguous_counting.dir/bench_unambiguous_counting.cc.o.d"
  "bench_unambiguous_counting"
  "bench_unambiguous_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unambiguous_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
