file(REMOVE_RECURSE
  "CMakeFiles/bench_bag_semantics.dir/bench_bag_semantics.cc.o"
  "CMakeFiles/bench_bag_semantics.dir/bench_bag_semantics.cc.o.d"
  "bench_bag_semantics"
  "bench_bag_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bag_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
