# Empty dependencies file for bench_bag_semantics.
# This may be replaced when dependencies are built.
