# Empty compiler generated dependencies file for bench_pmr_enumeration.
# This may be replaced when dependencies are built.
