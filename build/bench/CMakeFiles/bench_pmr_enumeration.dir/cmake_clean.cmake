file(REMOVE_RECURSE
  "CMakeFiles/bench_pmr_enumeration.dir/bench_pmr_enumeration.cc.o"
  "CMakeFiles/bench_pmr_enumeration.dir/bench_pmr_enumeration.cc.o.d"
  "bench_pmr_enumeration"
  "bench_pmr_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pmr_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
