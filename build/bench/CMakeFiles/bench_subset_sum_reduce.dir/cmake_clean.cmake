file(REMOVE_RECURSE
  "CMakeFiles/bench_subset_sum_reduce.dir/bench_subset_sum_reduce.cc.o"
  "CMakeFiles/bench_subset_sum_reduce.dir/bench_subset_sum_reduce.cc.o.d"
  "bench_subset_sum_reduce"
  "bench_subset_sum_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subset_sum_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
