# Empty compiler generated dependencies file for bench_subset_sum_reduce.
# This may be replaced when dependencies are built.
