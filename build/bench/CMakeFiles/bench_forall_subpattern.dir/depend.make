# Empty dependencies file for bench_forall_subpattern.
# This may be replaced when dependencies are built.
