file(REMOVE_RECURSE
  "CMakeFiles/bench_forall_subpattern.dir/bench_forall_subpattern.cc.o"
  "CMakeFiles/bench_forall_subpattern.dir/bench_forall_subpattern.cc.o.d"
  "bench_forall_subpattern"
  "bench_forall_subpattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forall_subpattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
