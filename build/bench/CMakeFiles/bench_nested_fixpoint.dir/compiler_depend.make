# Empty compiler generated dependencies file for bench_nested_fixpoint.
# This may be replaced when dependencies are built.
