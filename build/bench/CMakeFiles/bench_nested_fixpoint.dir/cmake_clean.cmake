file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_fixpoint.dir/bench_nested_fixpoint.cc.o"
  "CMakeFiles/bench_nested_fixpoint.dir/bench_nested_fixpoint.cc.o.d"
  "bench_nested_fixpoint"
  "bench_nested_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
