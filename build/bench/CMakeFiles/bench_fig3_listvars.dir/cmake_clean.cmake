file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_listvars.dir/bench_fig3_listvars.cc.o"
  "CMakeFiles/bench_fig3_listvars.dir/bench_fig3_listvars.cc.o.d"
  "bench_fig3_listvars"
  "bench_fig3_listvars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_listvars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
