file(REMOVE_RECURSE
  "CMakeFiles/bench_shortest_datafilter.dir/bench_shortest_datafilter.cc.o"
  "CMakeFiles/bench_shortest_datafilter.dir/bench_shortest_datafilter.cc.o.d"
  "bench_shortest_datafilter"
  "bench_shortest_datafilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shortest_datafilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
