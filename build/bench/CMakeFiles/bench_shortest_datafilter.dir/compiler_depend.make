# Empty compiler generated dependencies file for bench_shortest_datafilter.
# This may be replaced when dependencies are built.
