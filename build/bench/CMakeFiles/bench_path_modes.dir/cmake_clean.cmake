file(REMOVE_RECURSE
  "CMakeFiles/bench_path_modes.dir/bench_path_modes.cc.o"
  "CMakeFiles/bench_path_modes.dir/bench_path_modes.cc.o.d"
  "bench_path_modes"
  "bench_path_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
