# Empty dependencies file for bench_path_modes.
# This may be replaced when dependencies are built.
