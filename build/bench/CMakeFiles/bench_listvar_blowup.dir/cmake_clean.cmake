file(REMOVE_RECURSE
  "CMakeFiles/bench_listvar_blowup.dir/bench_listvar_blowup.cc.o"
  "CMakeFiles/bench_listvar_blowup.dir/bench_listvar_blowup.cc.o.d"
  "bench_listvar_blowup"
  "bench_listvar_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listvar_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
