# Empty compiler generated dependencies file for bench_listvar_blowup.
# This may be replaced when dependencies are built.
