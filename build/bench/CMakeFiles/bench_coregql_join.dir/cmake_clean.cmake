file(REMOVE_RECURSE
  "CMakeFiles/bench_coregql_join.dir/bench_coregql_join.cc.o"
  "CMakeFiles/bench_coregql_join.dir/bench_coregql_join.cc.o.d"
  "bench_coregql_join"
  "bench_coregql_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coregql_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
