# Empty dependencies file for bench_coregql_join.
# This may be replaced when dependencies are built.
