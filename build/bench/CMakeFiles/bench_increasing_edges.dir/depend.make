# Empty dependencies file for bench_increasing_edges.
# This may be replaced when dependencies are built.
