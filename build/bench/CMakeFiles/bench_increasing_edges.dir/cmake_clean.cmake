file(REMOVE_RECURSE
  "CMakeFiles/bench_increasing_edges.dir/bench_increasing_edges.cc.o"
  "CMakeFiles/bench_increasing_edges.dir/bench_increasing_edges.cc.o.d"
  "bench_increasing_edges"
  "bench_increasing_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_increasing_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
