// Fraud-ring hunting: the money-transfer scenario that motivates the
// paper's Figures 2-3. We look for
//   (1) transfer cycles back to a suspect account under `trail` mode (no
//       transfer is counted twice — the mode keeps results finite),
//   (2) structuring ("smurfing"): cycles in which every hop stays under a
//       reporting threshold, expressed as a dl-RPQ data filter,
//   (3) the blocked-account detour: shortest path that must route through
//       a cheap transfer (Section 6.3's detour effect).
//
// All queries run on a synthetic transfer network plus the Figure 3 graph.

#include <cstdio>
#include <random>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/regex/parser.h"

using namespace gqzoo;

namespace {

// A transfer network with a planted 4-account laundering ring whose hops
// all stay under the 10k reporting threshold.
PropertyGraph BuildNetwork() {
  PropertyGraph g;
  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> amount(15000, 90000);
  const size_t kAccounts = 40;
  for (size_t i = 0; i < kAccounts; ++i) {
    NodeId n = g.AddNode("acct" + std::to_string(i), "Account");
    g.SetProperty(ObjectRef::Node(n), "owner",
                  Value("Customer" + std::to_string(i)));
  }
  // Background traffic.
  std::uniform_int_distribution<size_t> pick(0, kAccounts - 1);
  for (size_t e = 0; e < 120; ++e) {
    NodeId a = static_cast<NodeId>(pick(rng));
    NodeId b = static_cast<NodeId>(pick(rng));
    if (a == b) continue;
    EdgeId edge = g.AddEdge(a, b, "Transfer");
    g.SetProperty(ObjectRef::Edge(edge), "amount", Value(amount(rng)));
  }
  // The planted ring: 3 -> 17 -> 23 -> 31 -> 3, all hops 9.5k.
  const NodeId ring[] = {3, 17, 23, 31, 3};
  for (int i = 0; i < 4; ++i) {
    EdgeId e = g.AddEdge(ring[i], ring[i + 1], "Transfer",
                         "ring" + std::to_string(i));
    g.SetProperty(ObjectRef::Edge(e), "amount", Value(9500.0));
  }
  return g;
}

}  // namespace

int main() {
  PropertyGraph net = BuildNetwork();
  printf("Transfer network: %zu accounts, %zu transfers.\n\n", net.NumNodes(),
         net.NumEdges());

  // (1) Transfer cycles at acct3 under trail mode (l-CRPQ, Section 3.1.5).
  Crpq cycles = ParseCrpq(
                    "rings(z) := trail (Transfer^z Transfer^z Transfer^z "
                    "Transfer^z) (@acct3, @acct3)")
                    .ValueOrDie();
  CrpqResult r = EvalCrpq(net.skeleton(), cycles).ValueOrDie();
  printf("(1) 4-hop transfer cycles at acct3 (trail mode): %zu\n",
         r.rows.size());
  for (const auto& row : r.rows) {
    printf("    z -> %s\n",
           CrpqValueToString(net.skeleton(), row[0]).c_str());
  }

  // (2) Structuring: every hop below the 10k threshold — a dl-RPQ. The
  // symmetric node/edge atoms make the per-edge amount test direct.
  DlNfa structuring = DlNfa::FromRegex(
      *ParseRegex("( ()[Transfer][amount < 10000] ){3,8} ()",
                  RegexDialect::kDl)
           .ValueOrDie(),
      net);
  DlEvaluator evaluator(net, structuring);
  NodeId acct3 = *net.FindNode("acct3");
  EnumerationLimits limits;
  limits.max_length = 8;
  auto suspicious =
      evaluator.CollectModePaths(acct3, acct3, PathMode::kTrail, limits);
  printf("\n(2) sub-threshold cycles at acct3 (dl-RPQ, trail): %zu\n",
         suspicious.size());
  for (const PathBinding& pb : suspicious) {
    printf("    %s\n", pb.path.ToString(net.skeleton()).c_str());
  }

  // (3) Figure 3's detour: shortest Mike -> Rebecca with one cheap hop.
  PropertyGraph fig3 = Figure3Graph();
  DlNfa detour = DlNfa::FromRegex(
      *ParseRegex("( ()[Transfer] )* ()[Transfer][amount < 4500000] "
                  "( ()[Transfer] )* ()",
                  RegexDialect::kDl)
           .ValueOrDie(),
      fig3);
  DlEvaluator fig3_eval(fig3, detour);
  EnumerationLimits fig3_limits;
  fig3_limits.max_length = 12;
  printf("\n(3) shortest Mike->Rebecca path with a sub-4.5M transfer "
         "(paper: length 3 detour):\n");
  for (const PathBinding& pb : fig3_eval.CollectModePaths(
           *fig3.FindNode("a3"), *fig3.FindNode("a5"), PathMode::kShortest,
           fig3_limits)) {
    printf("    %s\n", pb.path.ToString(fig3.skeleton()).c_str());
  }
  return 0;
}
