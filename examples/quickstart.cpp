// Quickstart: the paper's running examples on the Figure 2 / Figure 3 bank
// graphs, end to end — build a graph, parse queries, evaluate, print.
//
// Covers: RPQs (Example 12), CRPQs (Example 13), l-RPQs with list
// variables (Example 16), shortest mode grouped by endpoints (Example 17),
// and dl-RPQs with data tests (Example 21).

#include <cstdio>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"
#include "src/rpq/rpq_eval.h"

using namespace gqzoo;

int main() {
  // ---- The data: Figures 2 and 3 ---------------------------------------
  EdgeLabeledGraph fig2 = Figure2Graph();
  PropertyGraph fig3 = Figure3Graph();
  printf("Figure 2: %zu nodes, %zu edges. Figure 3: %zu nodes, %zu edges.\n\n",
         fig2.NumNodes(), fig2.NumEdges(), fig3.NumNodes(), fig3.NumEdges());

  // ---- Example 12: the RPQ Transfer* ------------------------------------
  RegexPtr transfer_star =
      ParseRegex("Transfer*", RegexDialect::kPlain).ValueOrDie();
  auto pairs = EvalRpq(fig2, *transfer_star);
  printf("Example 12 — [[Transfer*]] has %zu pairs (accounts are strongly "
         "connected).\n\n",
         pairs.size());

  // ---- Example 13: CRPQs ------------------------------------------------
  Crpq q1 = ParseCrpq("q1(x1, x2, x3) := Transfer(x1, x2), "
                      "Transfer(x1, x3), Transfer(x2, x3)")
                .ValueOrDie();
  printf("Example 13 — %s\n", q1.ToString().c_str());
  printf("%s\n", EvalCrpq(fig2, q1).ValueOrDie().ToString(fig2).c_str());

  Crpq q2 = ParseCrpq("q2(x, x1, x2) := owner(y, x1), isBlocked(y, x2), "
                      "(Transfer Transfer?)(x, y)")
                .ValueOrDie();
  printf("Example 13 — %s\n", q2.ToString().c_str());
  printf("%s\n", EvalCrpq(fig2, q2).ValueOrDie().ToString(fig2).c_str());

  // ---- Example 16: an l-RPQ and its path bindings -----------------------
  Nfa lrpq = Nfa::FromRegex(
      *ParseRegex("(Transfer^z)* isBlocked", RegexDialect::kPlain)
           .ValueOrDie(),
      fig2);
  Pmr pmr = BuildPmr(fig2, lrpq, {*fig2.FindNode("a3")}, {});
  EnumerationLimits limits;
  limits.max_length = 3;
  printf("Example 16 — (Transfer^z)* isBlocked from a3, paths of length <= "
         "3:\n");
  EnumeratePathBindings(pmr, limits, [&](const PathBinding& pb) {
    printf("  %s with z -> %s\n", pb.path.ToString(fig2).c_str(),
           ListToString(fig2, pb.mu.Get("z")).c_str());
    return true;
  });
  printf("\n");

  // ---- Example 17: shortest grouped by endpoint pair --------------------
  Crpq q17 = ParseCrpq("q(x1, x2, z) := owner(y1, x1), owner(y2, x2), "
                       "shortest (Transfer^z)+ (y1, y2)")
                 .ValueOrDie();
  printf("Example 17 — %s\n", q17.ToString().c_str());
  printf("%s\n", EvalCrpq(fig2, q17).ValueOrDie().ToString(fig2).c_str());

  // ---- Example 21: dl-RPQ with data tests (increasing dates) ------------
  DlNfa dl = DlNfa::FromRegex(
      *ParseRegex(
           "()[Transfer^z][x := date]"
           "( (_)[Transfer^z][date > x][x := date] )*()",
           RegexDialect::kDl)
           .ValueOrDie(),
      fig3);
  DlEvaluator evaluator(fig3, dl);
  printf("Example 21 — transfers with increasing dates from a1 to a5:\n");
  EnumerationLimits dl_limits;
  dl_limits.max_length = 6;
  for (const PathBinding& pb : evaluator.CollectModePaths(
           *fig3.FindNode("a1"), *fig3.FindNode("a5"), PathMode::kAll,
           dl_limits)) {
    printf("  %s\n", pb.path.ToString(fig3.skeleton()).c_str());
  }
  return 0;
}
