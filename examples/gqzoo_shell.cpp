// gqzoo_shell: an interactive shell over the whole zoo. Load a property
// graph from the text format and run queries in any of the implemented
// languages. This is the "downstream user" surface of the library.
//
// Usage:  gqzoo_shell [graph-file]      (defaults to the Figure 3 graph)
//
// Commands:
//   load <file>            load a property graph (gqzoo text format)
//   show                   print the current graph
//   rpq <regex>            evaluate an RPQ, print endpoint pairs
//   2rpq <regex>           same, regex may contain inverse atoms ~a
//   paths <from> <to> <mode> <regex>
//                          enumerate mode-restricted matching paths
//   kshortest <k> <from> <to> <regex>
//                          the k shortest matching paths
//   crpq <rule>            evaluate a CRPQ / l-CRPQ rule
//   dlcrpq <rule>          evaluate a dl-CRPQ rule (dl-dialect regexes)
//   gql <query>            run a CoreGQL MATCH/WHERE/RETURN query
//   gqlopt <query>         same, after WHERE-pushdown optimization
//   gqlgroup <pattern>     evaluate a pattern under GQL group-variable
//                          semantics (repetition collects lists)
//   regular <rules>        run a regular query (rules separated by ';')
//   help                   this text
//   quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/coregql/group_eval.h"
#include "src/coregql/optimize.h"
#include "src/coregql/pattern_parser.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/crpq/modes.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/graph_io.h"
#include "src/nested/regular_queries.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"
#include "src/rpq/rpq_eval.h"

using namespace gqzoo;

namespace {

constexpr const char* kHelp = R"(commands:
  load <file> | show | rpq <regex> | 2rpq <regex>
  paths <from> <to> <all|shortest|simple|trail> <regex>
  kshortest <k> <from> <to> <regex>
  crpq <rule> | dlcrpq <rule> | gql <query> | gqlopt <query>
  gqlgroup <pattern> | regular <rules>
  help | quit
)";

class Shell {
 public:
  Shell() : graph_(Figure3Graph()) {}

  bool LoadFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      printf("cannot open '%s'\n", path.c_str());
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<PropertyGraph> g = ParsePropertyGraph(buffer.str());
    if (!g.ok()) {
      printf("parse error: %s\n", g.error().message().c_str());
      return false;
    }
    graph_ = std::move(g).value();
    printf("loaded %zu nodes, %zu edges\n", graph_.NumNodes(),
           graph_.NumEdges());
    return true;
  }

  void Dispatch(const std::string& line) {
    std::istringstream iss(line);
    std::string command;
    iss >> command;
    std::string rest;
    std::getline(iss, rest);
    size_t start = rest.find_first_not_of(' ');
    rest = start == std::string::npos ? "" : rest.substr(start);

    if (command == "help") {
      printf("%s", kHelp);
    } else if (command == "load") {
      LoadFile(rest);
    } else if (command == "show") {
      printf("%s", PropertyGraphToText(graph_).c_str());
    } else if (command == "rpq" || command == "2rpq") {
      RunRpq(rest);
    } else if (command == "paths") {
      RunPaths(rest);
    } else if (command == "kshortest") {
      RunKShortest(rest);
    } else if (command == "crpq") {
      RunCrpq(rest, RegexDialect::kPlain);
    } else if (command == "dlcrpq") {
      RunCrpq(rest, RegexDialect::kDl);
    } else if (command == "gql") {
      RunGql(rest, /*optimize=*/false);
    } else if (command == "gqlopt") {
      RunGql(rest, /*optimize=*/true);
    } else if (command == "gqlgroup") {
      RunGqlGroup(rest);
    } else if (command == "regular") {
      RunRegular(rest);
    } else if (!command.empty()) {
      printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }

 private:
  void RunRpq(const std::string& text) {
    Result<RegexPtr> r = ParseRegex(text, RegexDialect::kPlain);
    if (!r.ok()) {
      printf("%s\n", r.error().message().c_str());
      return;
    }
    auto pairs = EvalRpq(graph_.skeleton(), *r.value());
    for (const auto& [u, v] : pairs) {
      printf("  (%s, %s)\n", graph_.NodeName(u).c_str(),
             graph_.NodeName(v).c_str());
    }
    printf("%zu pairs\n", pairs.size());
  }

  bool ResolveNode(const std::string& name, NodeId* out) {
    std::optional<NodeId> n = graph_.FindNode(name);
    if (!n.has_value()) {
      printf("unknown node '%s'\n", name.c_str());
      return false;
    }
    *out = *n;
    return true;
  }

  void RunPaths(const std::string& args) {
    std::istringstream iss(args);
    std::string from, to, mode_name;
    iss >> from >> to >> mode_name;
    std::string regex;
    std::getline(iss, regex);
    NodeId u, v;
    if (!ResolveNode(from, &u) || !ResolveNode(to, &v)) return;
    PathMode mode = mode_name == "shortest" ? PathMode::kShortest
                    : mode_name == "simple" ? PathMode::kSimple
                    : mode_name == "trail"  ? PathMode::kTrail
                                            : PathMode::kAll;
    // Try the dl dialect first (covers data tests), else plain.
    Result<RegexPtr> dl = ParseRegex(regex, RegexDialect::kDl);
    EnumerationLimits limits;
    limits.max_results = 50;
    limits.max_length = 32;
    std::vector<PathBinding> results;
    EnumerationStats stats;
    if (dl.ok()) {
      DlNfa nfa = DlNfa::FromRegex(*dl.value(), graph_);
      DlEvaluator evaluator(graph_, nfa);
      results = evaluator.CollectModePaths(u, v, mode, limits, &stats);
    } else {
      Result<RegexPtr> plain = ParseRegex(regex, RegexDialect::kPlain);
      if (!plain.ok()) {
        printf("%s\n", plain.error().message().c_str());
        return;
      }
      Nfa nfa = Nfa::FromRegex(*plain.value(), graph_.skeleton());
      results = CollectModePaths(graph_.skeleton(), nfa, u, v, mode, limits,
                                 &stats);
    }
    for (const PathBinding& pb : results) {
      printf("  %s", pb.path.ToString(graph_.skeleton()).c_str());
      if (!pb.mu.lists.empty()) {
        printf("  %s", pb.mu.ToString(graph_.skeleton()).c_str());
      }
      printf("\n");
    }
    printf("%zu paths%s\n", results.size(),
           stats.truncated ? " (truncated)" : "");
  }

  void RunKShortest(const std::string& args) {
    std::istringstream iss(args);
    size_t k = 0;
    std::string from, to;
    iss >> k >> from >> to;
    std::string regex;
    std::getline(iss, regex);
    NodeId u, v;
    if (!ResolveNode(from, &u) || !ResolveNode(to, &v)) return;
    Result<RegexPtr> r = ParseRegex(regex, RegexDialect::kPlain);
    if (!r.ok()) {
      printf("%s\n", r.error().message().c_str());
      return;
    }
    Nfa nfa = Nfa::FromRegex(*r.value(), graph_.skeleton());
    if (nfa.HasInverse()) {
      printf("kshortest requires a one-way regex\n");
      return;
    }
    Pmr pmr = BuildPmrBetween(graph_.skeleton(), nfa, u, v);
    for (const PathBinding& pb : KShortestPathBindings(pmr, k)) {
      printf("  [len %zu] %s\n", pb.path.Length(),
             pb.path.ToString(graph_.skeleton()).c_str());
    }
  }

  void RunCrpq(const std::string& text, RegexDialect dialect) {
    Result<Crpq> q = ParseCrpq(text, dialect);
    if (!q.ok()) {
      printf("%s\n", q.error().message().c_str());
      return;
    }
    Result<CrpqResult> r =
        dialect == RegexDialect::kDl
            ? EvalDlCrpq(graph_, q.value())
            : EvalCrpq(graph_.skeleton(), q.value());
    if (!r.ok()) {
      printf("%s\n", r.error().message().c_str());
      return;
    }
    printf("%s%zu rows\n", r.value().ToString(graph_.skeleton()).c_str(),
           r.value().rows.size());
  }

  void RunGql(const std::string& text, bool optimize) {
    Result<CoreGqlQuery> query = ParseCoreGqlQuery(text);
    if (!query.ok()) {
      printf("%s\n", query.error().message().c_str());
      return;
    }
    CoreGqlQuery prepared = query.value();
    if (optimize) {
      PushdownStats stats;
      prepared = PushDownConditions(prepared, &stats);
      printf("(pushdown: %zu labels, %zu selections)\n", stats.labels_pushed,
             stats.selections_pushed);
    }
    Result<CoreQueryResult> r = EvalCoreGqlQuery(graph_, prepared);
    if (!r.ok()) {
      printf("%s\n", r.error().message().c_str());
      return;
    }
    printf("%s%zu rows%s\n",
           r.value().relation.ToString(graph_.skeleton()).c_str(),
           r.value().relation.NumRows(),
           r.value().truncated ? " (truncated)" : "");
  }

  void RunGqlGroup(const std::string& text) {
    Result<CorePatternPtr> pattern = ParseCorePattern(text);
    if (!pattern.ok()) {
      printf("%s\n", pattern.error().message().c_str());
      return;
    }
    Result<GqlEvalResult> r = EvalGqlGroupPattern(graph_, *pattern.value());
    if (!r.ok()) {
      printf("%s\n", r.error().message().c_str());
      return;
    }
    size_t shown = 0;
    for (const GqlPathRow& row : r.value().rows) {
      if (++shown > 50) {
        printf("  ... (%zu rows total)\n", r.value().rows.size());
        break;
      }
      printf("  %s", row.path.ToString(graph_.skeleton()).c_str());
      for (const auto& [var, value] : row.mu) {
        printf("  %s -> %s", var.c_str(),
               value.ToString(graph_.skeleton()).c_str());
      }
      printf("\n");
    }
    printf("%zu rows%s\n", r.value().rows.size(),
           r.value().truncated ? " (truncated)" : "");
  }

  void RunRegular(const std::string& text) {
    Result<RegularQuery> q = ParseRegularQuery(text);
    if (!q.ok()) {
      printf("%s\n", q.error().message().c_str());
      return;
    }
    Result<CrpqResult> r = EvalRegularQuery(graph_.skeleton(), q.value());
    if (!r.ok()) {
      printf("%s\n", r.error().message().c_str());
      return;
    }
    printf("%s%zu rows\n", r.value().ToString(graph_.skeleton()).c_str(),
           r.value().rows.size());
  }

  PropertyGraph graph_;
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1) {
    if (!shell.LoadFile(argv[1])) return 1;
  } else {
    printf("no graph file given; starting with the paper's Figure 3 graph\n");
  }
  printf("%s", kHelp);
  std::string line;
  while (printf("gqzoo> "), std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    shell.Dispatch(line);
  }
  return 0;
}
