// gqzoo_shell: an interactive shell over the whole zoo. Load a property
// graph from the text format and run queries in any of the implemented
// languages. All query commands dispatch through the QueryEngine, so the
// shell gets plan caching, deadlines, and metrics for free.
//
// Usage:  gqzoo_shell [options] [graph-file]   (defaults to the Figure 3
//                                                graph)
//   --persist <dir>        durable mode: recover the graph from <dir>'s
//                          write-ahead log + checkpoint (creating them on
//                          first run; the graph-file argument only seeds a
//                          fresh directory), then log every mutation before
//                          acknowledging it
//   --no-fsync             do not fsync the WAL on commit (page-cache
//                          durability only: survives a process crash, not
//                          an OS crash)
//   --group-commit-ms <n>  fsync at most once per n ms; an ack may precede
//                          its fsync by up to one window
//
// Commands:
//   load <file>            load a property graph (gqzoo text format)
//   show                   print the current graph
//   rpq <regex>            evaluate an RPQ, print endpoint pairs
//   2rpq <regex>           same, regex may contain inverse atoms ~a
//   paths <from> <to> <mode> <regex>
//                          enumerate mode-restricted matching paths
//   kshortest <k> <from> <to> <regex>
//                          the k shortest matching paths
//   crpq <rule>            evaluate a CRPQ / l-CRPQ rule
//   dlcrpq <rule>          evaluate a dl-CRPQ rule (dl-dialect regexes)
//   gql <query>            run a CoreGQL MATCH/WHERE/RETURN query
//   gqlopt <query>         same, after WHERE-pushdown optimization
//   gqlgroup <pattern>     evaluate a pattern under GQL group-variable
//                          semantics (repetition collects lists)
//   regular <rules>        run a regular query (rules separated by ';')
//   explain <command...>   show the compiled plan (conjunct join order +
//                          cardinality estimates) instead of executing,
//                          e.g. `explain crpq q(x) :- a(x,y), b(y,z)`
//   add-node <name> <label>
//   add-edge <name> <src> <tgt> <label>
//   del-node <name> | del-edge <name>
//   set-label <node> <label>
//   set-prop node|edge <name> <property> <value>
//                          mutate the loaded graph through the delta
//                          overlay (no rebuild; readers see a merged view)
//   compact                fold the pending delta into a fresh base now
//   timeout <ms>           set the default per-query deadline (0 = off)
//   memlimit <bytes>       set the default per-query memory budget (0 = off)
//   wcoj on|off|default    force the worst-case-optimal join path for
//                          cyclic conjunct cores on or off for subsequent
//                          queries (default = the engine's setting)
//   batch on|off|default   same for the columnar batch join kernel
//   stats                  engine metrics + plan-cache + delta report
//   help                   this text
//   quit

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <iostream>
#include <sstream>
#include <string>

#include "src/engine/engine.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/delta/delta.h"
#include "src/graph/graph_io.h"
#include "src/util/cli_flags.h"

using namespace gqzoo;

namespace {

constexpr const char* kHelp = R"(commands:
  load <file> | show | rpq <regex> | 2rpq <regex>
  paths <from> <to> <all|shortest|simple|trail> <regex>
  kshortest <k> <from> <to> <regex>
  crpq <rule> | dlcrpq <rule> | gql <query> | gqlopt <query>
  gqlgroup <pattern> | regular <rules>
  explain <command...>   (plan + join order, no execution)
  add-node <name> <label> | add-edge <name> <src> <tgt> <label>
  del-node <name> | del-edge <name> | set-label <node> <label>
  set-prop node|edge <name> <property> <value> | compact
  timeout <ms> | memlimit <bytes> | stats | help | quit
  wcoj on|off|default | batch on|off|default   (join kernel policy)
)";

class Shell {
 public:
  /// Fails (returns a null engine inside) only when a durable directory is
  /// unrecoverable; the caller checks `ok()`.
  explicit Shell(QueryEngine::Options options) {
    const std::string dir = options.durability.dir;
    Result<std::unique_ptr<QueryEngine>> opened =
        QueryEngine::RecoverFrom(Figure3Graph(), std::move(options));
    if (!opened.ok()) {
      printf("error [%s]: %s\n", ErrorCodeName(opened.error().code()),
             opened.error().message().c_str());
      return;
    }
    engine_ = std::move(opened).value();
    if (engine_->durable()) {
      const storage::RecoveryInfo& info = engine_->recovery_info();
      if (info.recovered) {
        printf("recovered from '%s': checkpoint lsn %llu%s, %llu batches "
               "(%llu ops) replayed, last lsn %llu\n",
               dir.c_str(),
               static_cast<unsigned long long>(info.checkpoint_lsn),
               info.mapped ? " (mapped)" : "",
               static_cast<unsigned long long>(info.batches_replayed),
               static_cast<unsigned long long>(info.ops_replayed),
               static_cast<unsigned long long>(info.last_lsn));
      } else {
        printf("initialized durable directory '%s'\n", dir.c_str());
      }
      if (!info.warning.empty()) {
        printf("recovery warning: %s\n", info.warning.c_str());
      }
    }
  }

  bool ok() const { return engine_ != nullptr; }

  /// True when the durable directory already held state; a graph-file
  /// argument is ignored then so it cannot clobber recovered data.
  bool recovered() const {
    return ok() && engine_->durable() && engine_->recovery_info().recovered;
  }

  bool LoadFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      printf("cannot open '%s'\n", path.c_str());
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<PropertyGraph> g = ParsePropertyGraph(buffer.str());
    if (!g.ok()) {
      printf("parse error: %s\n", g.error().message().c_str());
      return false;
    }
    PropertyGraph graph = std::move(g).value();
    printf("loaded %zu nodes, %zu edges\n", graph.NumNodes(),
           graph.NumEdges());
    engine_->SetGraph(std::move(graph));
    return true;
  }

  void Dispatch(const std::string& line) {
    std::istringstream iss(line);
    std::string command;
    iss >> command;
    std::string rest;
    std::getline(iss, rest);
    size_t start = rest.find_first_not_of(' ');
    rest = start == std::string::npos ? "" : rest.substr(start);

    if (command == "help") {
      printf("%s", kHelp);
    } else if (command == "explain") {
      // Re-dispatch the rest of the line with the EXPLAIN flag armed; any
      // query command works (`explain crpq ...`, `explain gql ...`).
      explain_ = true;
      Dispatch(rest);
      explain_ = false;
    } else if (command == "load") {
      LoadFile(rest);
    } else if (command == "show") {
      printf("%s", PropertyGraphToText(*engine_->graph_snapshot()).c_str());
    } else if (command == "stats") {
      printf("%s", engine_->StatsReport().c_str());
    } else if (command == "timeout") {
      SetTimeout(rest);
    } else if (command == "memlimit") {
      SetMemLimit(rest);
    } else if (command == "wcoj") {
      SetKernelToggle("wcoj", rest, &use_wcoj_);
    } else if (command == "batch") {
      SetKernelToggle("batch", rest, &use_batch_kernel_);
    } else if (command == "rpq" || command == "2rpq") {
      Run(MakeRequest(QueryLanguage::kRpq, rest));
    } else if (command == "paths") {
      RunPaths(rest);
    } else if (command == "kshortest") {
      RunKShortest(rest);
    } else if (command == "crpq") {
      Run(MakeRequest(QueryLanguage::kCrpq, rest));
    } else if (command == "dlcrpq") {
      Run(MakeRequest(QueryLanguage::kDlCrpq, rest));
    } else if (command == "gql") {
      Run(MakeRequest(QueryLanguage::kCoreGql, rest));
    } else if (command == "gqlopt") {
      QueryRequest request = MakeRequest(QueryLanguage::kCoreGql, rest);
      request.optimize = true;
      Run(request);
    } else if (command == "gqlgroup") {
      Run(MakeRequest(QueryLanguage::kGqlGroup, rest));
    } else if (command == "regular") {
      Run(MakeRequest(QueryLanguage::kRegular, rest));
    } else if (command == "compact") {
      printf(engine_->CompactNow()
                 ? "compacted: delta folded into a fresh base\n"
                 : "nothing to compact\n");
    } else if (IsMutationCommand(command)) {
      RunMutation(line);
    } else if (!command.empty()) {
      printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }

 private:
  static std::string Trim(const std::string& s) {
    size_t start = s.find_first_not_of(' ');
    return start == std::string::npos ? "" : s.substr(start);
  }

  static QueryRequest MakeRequest(QueryLanguage language,
                                  const std::string& text) {
    QueryRequest request;
    request.language = language;
    request.text = Trim(text);  // identical queries share a cache entry
    return request;
  }

  /// Runs through the engine and prints either the rendered rows or the
  /// error; the REPL survives both.
  void Run(QueryRequest request) {
    request.explain = explain_;
    request.use_wcoj = use_wcoj_;
    request.use_batch_kernel = use_batch_kernel_;
    Result<QueryResponse> r = engine_->Execute(request);
    if (!r.ok()) {
      printf("error [%s]: %s\n", ErrorCodeName(r.error().code()),
             r.error().message().c_str());
      return;
    }
    printf("%s", r.value().text.c_str());
  }

  /// One mutation line through the engine's delta write path.
  void RunMutation(const std::string& line) {
    Result<MutationOp> op = ParseMutationOp(line);
    if (!op.ok()) {
      printf("error [%s]: %s\n", ErrorCodeName(op.error().code()),
             op.error().message().c_str());
      return;
    }
    MutationBatch batch;
    batch.ops.push_back(std::move(op).value());
    Result<QueryEngine::MutationResult> r = engine_->ApplyMutation(batch);
    if (!r.ok()) {
      printf("error [%s]: %s\n", ErrorCodeName(r.error().code()),
             r.error().message().c_str());
      return;
    }
    printf("ok (%llu ops pending%s%s)\n",
           static_cast<unsigned long long>(r.value().pending_ops),
           r.value().plans_invalidated > 0 ? ", plans invalidated" : "",
           r.value().compaction_scheduled ? ", compaction scheduled" : "");
  }

  /// `wcoj on|off|default` / `batch on|off|default`: a sticky per-request
  /// override of the engine's join-kernel policy (`default` restores the
  /// engine's own setting). Results are identical either way — the toggles
  /// exist so the two paths can be raced and diffed interactively.
  void SetKernelToggle(const char* name, const std::string& args,
                       std::optional<bool>* toggle) {
    const std::string value = Trim(args);
    if (value == "on") {
      *toggle = true;
    } else if (value == "off") {
      *toggle = false;
    } else if (value == "default") {
      toggle->reset();
    } else {
      printf("usage: %s on|off|default\n", name);
      return;
    }
    printf("%s: %s\n", name,
           toggle->has_value() ? (**toggle ? "forced on" : "forced off")
                               : "engine default");
  }

  void SetTimeout(const std::string& args) {
    std::istringstream iss(args);
    long long ms = -1;
    if (!(iss >> ms) || ms < 0) {
      printf("usage: timeout <ms>   (0 disables the deadline)\n");
      return;
    }
    if (ms == 0) {
      engine_->set_default_timeout(std::nullopt);
      printf("deadline disabled\n");
    } else {
      engine_->set_default_timeout(std::chrono::milliseconds(ms));
      printf("default deadline set to %lldms\n", ms);
    }
  }

  void SetMemLimit(const std::string& args) {
    std::istringstream iss(args);
    long long bytes = -1;
    if (!(iss >> bytes) || bytes < 0) {
      printf("usage: memlimit <bytes>   (0 disables the memory budget)\n");
      return;
    }
    ResourceBudgets budgets = engine_->default_budgets();
    budgets.memory_bytes = static_cast<uint64_t>(bytes);
    engine_->set_default_budgets(budgets);
    if (bytes == 0) {
      printf("memory budget disabled\n");
    } else {
      printf("default memory budget set to %lld bytes\n", bytes);
    }
  }

  void RunPaths(const std::string& args) {
    std::istringstream iss(args);
    std::string from, to, mode_name;
    iss >> from >> to >> mode_name;
    std::string regex;
    std::getline(iss, regex);
    QueryRequest request = MakeRequest(QueryLanguage::kPaths, regex);
    request.paths.from = from;
    request.paths.to = to;
    request.paths.mode = mode_name == "shortest" ? PathMode::kShortest
                         : mode_name == "simple" ? PathMode::kSimple
                         : mode_name == "trail"  ? PathMode::kTrail
                                                 : PathMode::kAll;
    Run(request);
  }

  void RunKShortest(const std::string& args) {
    std::istringstream iss(args);
    size_t k = 0;
    std::string from, to;
    if (!(iss >> k >> from >> to) || k == 0) {
      printf("usage: kshortest <k> <from> <to> <regex>\n");
      return;
    }
    std::string regex;
    std::getline(iss, regex);
    QueryRequest request = MakeRequest(QueryLanguage::kPaths, regex);
    request.paths.from = from;
    request.paths.to = to;
    request.paths.k_shortest = k;
    Run(request);
  }

  std::unique_ptr<QueryEngine> engine_;
  bool explain_ = false;  // armed by the `explain` prefix command
  // Sticky join-kernel policy overrides (`wcoj` / `batch` commands);
  // nullopt defers to the engine's Options.
  std::optional<bool> use_wcoj_;
  std::optional<bool> use_batch_kernel_;
};

}  // namespace

int main(int argc, char** argv) {
  QueryEngine::Options options;
  std::string graph_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--persist") {
      if (i + 1 >= argc) {
        printf("--persist needs a directory argument\n");
        return 1;
      }
      options.durability.dir = argv[++i];
    } else if (arg == "--no-fsync") {
      options.durability.fsync = false;
    } else if (arg == "--group-commit-ms") {
      long long ms = 0;
      if (!ParseFlagInt("--group-commit-ms", i + 1 < argc ? argv[++i] : nullptr,
                        0, 60 * 1000, &ms)) {
        return 1;
      }
      options.durability.group_commit_window_ms = static_cast<uint32_t>(ms);
    } else if (!arg.empty() && arg[0] == '-') {
      printf("unknown flag '%s'\n", arg.c_str());
      return 1;
    } else {
      graph_file = arg;
    }
  }

  Shell shell(std::move(options));
  if (!shell.ok()) return 1;
  if (shell.recovered()) {
    if (!graph_file.empty()) {
      printf("ignoring '%s': the durable directory already holds a graph "
             "(use `load` to replace it explicitly)\n",
             graph_file.c_str());
    }
  } else if (!graph_file.empty()) {
    if (!shell.LoadFile(graph_file)) {
      printf("continuing with the paper's Figure 3 graph\n");
    }
  } else {
    printf("no graph file given; starting with the paper's Figure 3 graph\n");
  }
  printf("%s", kHelp);
  std::string line;
  while (printf("gqzoo> "), std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    shell.Dispatch(line);
  }
  return 0;
}
