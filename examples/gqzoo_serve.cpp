// gqzoo_serve: the network front-end. Binds a loopback TCP port, serves
// the wire protocol (src/server/wire.h) over a shared QueryEngine, and
// drains gracefully on SIGTERM/SIGINT: stop accepting, let in-flight
// queries finish against --drain-ms, cancel stragglers (their DONE
// reports UNAVAILABLE), flush the WAL, exit. Every write acked before the
// drain is durable after it.
//
// Usage:  gqzoo_serve [options]
//   --port <n>         port to bind (default 0 = ephemeral; the bound port
//                      prints on stdout as "listening on <port>")
//   --port-file <path> also write the bound port to <path> (for harnesses
//                      that need to discover an ephemeral port race-free)
//   --graph <file>     property graph to load (default: Figure 3 graph)
//   --persist <dir>    durable mode: recover from <dir> and log mutations
//   --no-fsync         page-cache durability only
//   --group-commit-ms <n>  fsync at most once per n ms
//   --threads <n>      engine pool size (default 4)
//   --capacity <n>     admission-control depth (default 256)
//   --timeout-ms <n>   default per-query deadline (0 = none)
//   --quota-qps <n>    per-tenant sustained queries/sec (0 = no quotas)
//   --quota-burst <n>  per-tenant burst allowance (0 = same as qps)
//   --drain-ms <n>     graceful-drain deadline (default 2000)
//   --max-sessions <n> concurrent connection cap (default 256)

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "src/engine/engine.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/graph_io.h"
#include "src/server/server.h"
#include "src/util/cli_flags.h"

using namespace gqzoo;

namespace {

// Signal handlers may only touch async-signal-safe state; the main loop
// polls this flag and runs the actual drain outside handler context.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--port <n>] [--port-file <path>] [--graph <file>] "
          "[--persist <dir>] [--no-fsync] [--group-commit-ms <n>] "
          "[--threads <n>] [--capacity <n>] [--timeout-ms <n>] "
          "[--quota-qps <n>] [--quota-burst <n>] [--drain-ms <n>] "
          "[--max-sessions <n>]\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long long port = 0;
  std::string port_file;
  std::string graph_file;
  std::string persist_dir;
  bool no_fsync = false;
  long long group_commit_ms = 0;
  long long threads = 4;
  long long capacity = 256;
  long long timeout_ms = 0;
  long long quota_qps = 0;
  long long quota_burst = 0;
  long long drain_ms = 2000;
  long long max_sessions = 256;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto int_flag = [&](long long min, long long max,
                        long long* out) -> bool {
      return ParseFlagInt(arg, next(), min, max, out);
    };
    if (strcmp(arg, "--port") == 0) {
      if (!int_flag(0, 65535, &port)) return Usage(argv[0]);
    } else if (strcmp(arg, "--port-file") == 0) {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      port_file = value;
    } else if (strcmp(arg, "--graph") == 0) {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      graph_file = value;
    } else if (strcmp(arg, "--persist") == 0) {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      persist_dir = value;
    } else if (strcmp(arg, "--no-fsync") == 0) {
      no_fsync = true;
    } else if (strcmp(arg, "--group-commit-ms") == 0) {
      if (!int_flag(0, 60 * 1000, &group_commit_ms)) return Usage(argv[0]);
    } else if (strcmp(arg, "--threads") == 0) {
      if (!int_flag(1, 1024, &threads)) return Usage(argv[0]);
    } else if (strcmp(arg, "--capacity") == 0) {
      if (!int_flag(0, 1 << 20, &capacity)) return Usage(argv[0]);
    } else if (strcmp(arg, "--timeout-ms") == 0) {
      if (!int_flag(0, 86400LL * 1000, &timeout_ms)) return Usage(argv[0]);
    } else if (strcmp(arg, "--quota-qps") == 0) {
      if (!int_flag(0, 1 << 20, &quota_qps)) return Usage(argv[0]);
    } else if (strcmp(arg, "--quota-burst") == 0) {
      if (!int_flag(0, 1 << 20, &quota_burst)) return Usage(argv[0]);
    } else if (strcmp(arg, "--drain-ms") == 0) {
      if (!int_flag(0, 600 * 1000, &drain_ms)) return Usage(argv[0]);
    } else if (strcmp(arg, "--max-sessions") == 0) {
      if (!int_flag(0, 1 << 16, &max_sessions)) return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }

  PropertyGraph graph = Figure3Graph();
  if (!graph_file.empty()) {
    std::ifstream in(graph_file);
    if (!in) {
      fprintf(stderr, "cannot open graph '%s'\n", graph_file.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<PropertyGraph> parsed = ParsePropertyGraph(buffer.str());
    if (!parsed.ok()) {
      fprintf(stderr, "graph parse error: %s\n",
              parsed.error().message().c_str());
      return 1;
    }
    graph = std::move(parsed).value();
  }

  QueryEngine::Options options;
  options.num_threads = static_cast<size_t>(threads);
  options.governor.admission_capacity = static_cast<size_t>(capacity);
  if (timeout_ms > 0) {
    options.default_timeout = std::chrono::milliseconds(timeout_ms);
  }
  options.durability.dir = persist_dir;
  options.durability.fsync = !no_fsync;
  options.durability.group_commit_window_ms =
      group_commit_ms > 0 ? static_cast<uint32_t>(group_commit_ms) : 0;
  Result<std::unique_ptr<QueryEngine>> opened =
      QueryEngine::RecoverFrom(std::move(graph), std::move(options));
  if (!opened.ok()) {
    fprintf(stderr, "cannot open engine [%s]: %s\n",
            ErrorCodeName(opened.error().code()),
            opened.error().message().c_str());
    return 1;
  }
  std::unique_ptr<QueryEngine> engine = std::move(opened).value();
  if (!persist_dir.empty() && engine->recovery_info().recovered) {
    fprintf(stderr, "recovered from '%s': %llu batches replayed\n",
            persist_dir.c_str(),
            static_cast<unsigned long long>(
                engine->recovery_info().batches_replayed));
  }

  server::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(port);
  server_options.quota.queries_per_sec = static_cast<double>(quota_qps);
  server_options.quota.burst = static_cast<double>(quota_burst);
  server_options.drain_deadline = std::chrono::milliseconds(drain_ms);
  server_options.max_sessions = static_cast<size_t>(max_sessions);
  server::GraphServer graph_server(engine.get(), server_options);
  Result<bool> started = graph_server.Start();
  if (!started.ok()) {
    fprintf(stderr, "cannot start server: %s\n",
            started.error().message().c_str());
    return 1;
  }
  printf("listening on %u\n", graph_server.port());
  fflush(stdout);
  if (!port_file.empty()) {
    // Write-then-rename so a watcher never reads a half-written port.
    std::string tmp = port_file + ".tmp";
    FILE* f = fopen(tmp.c_str(), "w");
    if (f != nullptr) {
      fprintf(f, "%u\n", graph_server.port());
      fclose(f);
      rename(tmp.c_str(), port_file.c_str());
    }
  }

  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  fprintf(stderr, "draining (deadline %lldms)...\n", drain_ms);
  size_t sheds = graph_server.Shutdown();
  fprintf(stderr, "drain complete: %zu queries shed\n", sheds);
  fprintf(stderr, "%s", graph_server.StatsReport().c_str());
  // ~QueryEngine flushes the WAL again; the drain already did, so every
  // acked write is on disk even if this process is SIGKILLed right now.
  return 0;
}
