// gqzoo_batch: run a file of queries through the QueryEngine on a thread
// pool and print a metrics report — the non-interactive counterpart of
// gqzoo_shell, useful for load tests and for exercising the plan cache.
//
// Usage:  gqzoo_batch [options] <request-file>
//   --graph <file>     property graph to load (default: Figure 3 graph)
//   --persist <dir>    durable mode: recover from <dir>'s WAL + checkpoint
//                      (the --graph file only seeds a fresh directory) and
//                      log every mutation before acknowledging it
//   --no-fsync         do not fsync the WAL on commit (page-cache
//                      durability only)
//   --group-commit-ms <n>  fsync at most once per n ms (acks may precede
//                      their fsync by up to one window)
//   --threads <n>      pool size (default 4)
//   --timeout-ms <n>   per-query deadline (default: none)
//   --memlimit <n>     per-query memory budget in bytes (default: none)
//   --row-budget <n>   per-query result-row budget (default: none)
//   --step-budget <n>  per-query step/fuel budget (default: none)
//   --capacity <n>     admission-control queue depth; submissions beyond it
//                      are shed with OVERLOADED (default 256, 0 = unbounded)
//   --repeat <n>       run the request file n times (default 1; repeats
//                      after the first are plan-cache hits)
//   --explain          render each query's plan (conjunct join order +
//                      cardinality estimates) instead of executing it
//   --textual-order    evaluate conjuncts in textual order, ignoring the
//                      planner (for differential runs / benchmarks)
//   --quiet            suppress per-query output, print only the report
//   --connect <host:port>  client mode: send the request file to a running
//                      gqzoo_serve over the wire protocol instead of an
//                      in-process engine (streamed rows print as chunks)
//   --tenant <name>    tenant id for --connect sessions (default "batch")
//
// Request-file format: one query or mutation per line, same surface as the
// shell.
//   # comment / blank lines are skipped
//   rpq <regex>              2rpq <regex>
//   paths <from> <to> <all|shortest|simple|trail> <regex>
//   kshortest <k> <from> <to> <regex>
//   crpq <rule>              dlcrpq <rule>
//   gql <query>              gqlopt <query>
//   gqlgroup <pattern>       regular <rules>
//   add-node <name> <label>  add-edge <name> <src> <tgt> <label>
//   del-node <name>          del-edge <name>
//   set-label <node> <label> set-prop node|edge <name> <property> <value>
//
// Mutation lines go through the engine's delta-overlay write path at their
// position in the submission order, so a file can interleave reads and
// writes; queries already in flight keep their pinned pre-write view. With
// --repeat, mutations re-apply each round (an `add-node` repeats as a
// duplicate-name error on round two — write request files accordingly).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/delta/delta.h"
#include "src/graph/graph_io.h"
#include "src/server/client.h"
#include "src/util/cli_flags.h"

using namespace gqzoo;

namespace {

std::string Trim(const std::string& s) {
  size_t start = s.find_first_not_of(" \t");
  if (start == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

/// One line of the request file: either a query (submitted to the pool) or
/// a mutation (applied through the delta write path in submission order).
struct BatchLine {
  bool is_mutation = false;
  QueryRequest request;  // when !is_mutation
  MutationOp op;         // when is_mutation
};

/// Parses one request line (shell query syntax). Returns false with
/// `*error` set on a malformed line.
bool ParseRequestLine(const std::string& line, QueryRequest* out,
                      std::string* error) {
  std::istringstream iss(line);
  std::string command;
  iss >> command;
  std::string rest;
  std::getline(iss, rest);
  rest = Trim(rest);

  QueryRequest request;
  if (command == "rpq" || command == "2rpq") {
    request.language = QueryLanguage::kRpq;
    request.text = rest;
  } else if (command == "crpq") {
    request.language = QueryLanguage::kCrpq;
    request.text = rest;
  } else if (command == "dlcrpq") {
    request.language = QueryLanguage::kDlCrpq;
    request.text = rest;
  } else if (command == "gql" || command == "gqlopt") {
    request.language = QueryLanguage::kCoreGql;
    request.text = rest;
    request.optimize = command == "gqlopt";
  } else if (command == "gqlgroup") {
    request.language = QueryLanguage::kGqlGroup;
    request.text = rest;
  } else if (command == "regular") {
    request.language = QueryLanguage::kRegular;
    request.text = rest;
  } else if (command == "paths") {
    std::istringstream args(rest);
    std::string from, to, mode_name;
    if (!(args >> from >> to >> mode_name)) {
      *error = "paths needs: <from> <to> <mode> <regex>";
      return false;
    }
    std::string regex;
    std::getline(args, regex);
    request.language = QueryLanguage::kPaths;
    request.text = Trim(regex);
    request.paths.from = from;
    request.paths.to = to;
    request.paths.mode = mode_name == "shortest" ? PathMode::kShortest
                         : mode_name == "simple" ? PathMode::kSimple
                         : mode_name == "trail"  ? PathMode::kTrail
                                                 : PathMode::kAll;
  } else if (command == "kshortest") {
    std::istringstream args(rest);
    size_t k = 0;
    std::string from, to;
    if (!(args >> k >> from >> to) || k == 0) {
      *error = "kshortest needs: <k> <from> <to> <regex>";
      return false;
    }
    std::string regex;
    std::getline(args, regex);
    request.language = QueryLanguage::kPaths;
    request.text = Trim(regex);
    request.paths.from = from;
    request.paths.to = to;
    request.paths.k_shortest = k;
  } else {
    *error = "unknown query command '" + command + "'";
    return false;
  }
  *out = std::move(request);
  return true;
}

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--graph <file>] [--persist <dir>] [--no-fsync] "
          "[--group-commit-ms <n>] [--threads <n>] [--timeout-ms <n>] "
          "[--memlimit <n>] [--row-budget <n>] [--step-budget <n>] "
          "[--capacity <n>] [--repeat <n>] [--explain] [--textual-order] "
          "[--no-wcoj] [--batch-kernel] "
          "[--quiet] [--connect <host:port>] [--tenant <name>] "
          "<request-file>\n",
          argv0);
  return 2;
}

/// Maps a parsed in-process request onto the wire options the client
/// sends, so `--connect` runs the same request file against a server.
server::ClientQueryOptions ToClientOptions(const QueryRequest& request) {
  server::ClientQueryOptions options;
  options.language = QueryLanguageName(request.language);
  if (request.timeout.has_value()) {
    options.timeout_ms = static_cast<uint32_t>(request.timeout->count());
  }
  options.explain = request.explain;
  options.optimize = request.optimize;
  options.textual_join_order = request.textual_join_order;
  options.paths_from = request.paths.from;
  options.paths_to = request.paths.to;
  options.paths_mode = request.paths.mode == PathMode::kShortest ? 1
                       : request.paths.mode == PathMode::kSimple ? 2
                       : request.paths.mode == PathMode::kTrail  ? 3
                                                                 : 0;
  options.k_shortest = static_cast<uint32_t>(request.paths.k_shortest);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_file;
  std::string persist_dir;
  bool no_fsync = false;
  long long group_commit_ms = 0;
  std::string request_file;
  size_t threads = 4;
  long long timeout_ms = 0;
  long long memlimit = 0;
  long long row_budget = 0;
  long long step_budget = 0;
  size_t capacity = 256;
  size_t repeat = 1;
  bool explain = false;
  bool textual_order = false;
  bool no_wcoj = false;
  bool batch_kernel = false;
  bool quiet = false;
  std::string connect;
  std::string tenant = "batch";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Integer flags go through ParseFlagInt: a typo'd value is a usage
    // error, not a silent 0.
    auto int_flag = [&](long long min, long long max,
                        long long* out) -> bool {
      return ParseFlagInt(arg, next(), min, max, out);
    };
    long long v = 0;
    if (strcmp(arg, "--graph") == 0) {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      graph_file = value;
    } else if (strcmp(arg, "--persist") == 0) {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      persist_dir = value;
    } else if (strcmp(arg, "--no-fsync") == 0) {
      no_fsync = true;
    } else if (strcmp(arg, "--group-commit-ms") == 0) {
      if (!int_flag(0, 60 * 1000, &group_commit_ms)) return Usage(argv[0]);
    } else if (strcmp(arg, "--threads") == 0) {
      if (!int_flag(1, 1024, &v)) return Usage(argv[0]);
      threads = static_cast<size_t>(v);
    } else if (strcmp(arg, "--timeout-ms") == 0) {
      if (!int_flag(0, 86400LL * 1000, &timeout_ms)) return Usage(argv[0]);
    } else if (strcmp(arg, "--memlimit") == 0) {
      if (!int_flag(0, INT64_MAX, &memlimit)) return Usage(argv[0]);
    } else if (strcmp(arg, "--row-budget") == 0) {
      if (!int_flag(0, INT64_MAX, &row_budget)) return Usage(argv[0]);
    } else if (strcmp(arg, "--step-budget") == 0) {
      if (!int_flag(0, INT64_MAX, &step_budget)) return Usage(argv[0]);
    } else if (strcmp(arg, "--capacity") == 0) {
      if (!int_flag(0, 1 << 20, &v)) return Usage(argv[0]);
      capacity = static_cast<size_t>(v);
    } else if (strcmp(arg, "--repeat") == 0) {
      if (!int_flag(1, 1 << 20, &v)) return Usage(argv[0]);
      repeat = static_cast<size_t>(v);
    } else if (strcmp(arg, "--connect") == 0) {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      connect = value;
    } else if (strcmp(arg, "--tenant") == 0) {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      tenant = value;
    } else if (strcmp(arg, "--explain") == 0) {
      explain = true;
    } else if (strcmp(arg, "--textual-order") == 0) {
      textual_order = true;
    } else if (strcmp(arg, "--no-wcoj") == 0) {
      no_wcoj = true;
    } else if (strcmp(arg, "--batch-kernel") == 0) {
      batch_kernel = true;
    } else if (strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else if (request_file.empty()) {
      request_file = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (request_file.empty() || threads == 0 || repeat == 0) {
    return Usage(argv[0]);
  }

  PropertyGraph graph = Figure3Graph();
  if (!graph_file.empty()) {
    std::ifstream in(graph_file);
    if (!in) {
      fprintf(stderr, "cannot open graph '%s'\n", graph_file.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<PropertyGraph> g = ParsePropertyGraph(buffer.str());
    if (!g.ok()) {
      fprintf(stderr, "graph parse error: %s\n", g.error().message().c_str());
      return 1;
    }
    graph = std::move(g).value();
  }

  std::ifstream in(request_file);
  if (!in) {
    fprintf(stderr, "cannot open requests '%s'\n", request_file.c_str());
    return 1;
  }
  std::vector<BatchLine> lines;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    BatchLine parsed;
    std::istringstream head(line);
    std::string verb;
    head >> verb;
    if (IsMutationCommand(verb)) {
      Result<MutationOp> op = ParseMutationOp(line);
      if (!op.ok()) {
        fprintf(stderr, "%s:%zu: %s\n", request_file.c_str(), lineno,
                op.error().message().c_str());
        return 1;
      }
      parsed.is_mutation = true;
      parsed.op = std::move(op).value();
    } else {
      QueryRequest request;
      std::string error;
      if (!ParseRequestLine(line, &request, &error)) {
        fprintf(stderr, "%s:%zu: %s\n", request_file.c_str(), lineno,
                error.c_str());
        return 1;
      }
      if (timeout_ms > 0) {
        request.timeout = std::chrono::milliseconds(timeout_ms);
      }
      if (memlimit > 0) {
        request.memory_budget = static_cast<uint64_t>(memlimit);
      }
      if (row_budget > 0) {
        request.row_budget = static_cast<uint64_t>(row_budget);
      }
      if (step_budget > 0) {
        request.step_budget = static_cast<uint64_t>(step_budget);
      }
      request.explain = explain;
      request.textual_join_order = textual_order;
      // Join-kernel policy (in-process runs; the wire protocol does not
      // carry these): force the wcoj path off / the batch kernel on so a
      // request file can be raced against itself across kernels.
      if (no_wcoj) request.use_wcoj = false;
      if (batch_kernel) request.use_batch_kernel = true;
      parsed.request = std::move(request);
    }
    lines.push_back(std::move(parsed));
  }
  if (lines.empty()) {
    fprintf(stderr, "no requests in '%s'\n", request_file.c_str());
    return 1;
  }

  if (!connect.empty()) {
    // Client mode: run the same request file against a gqzoo_serve
    // instance instead of an in-process engine. Requests go one at a
    // time over a single session (the server interleaves sessions; for
    // load generation see bench_server).
    size_t colon = connect.rfind(':');
    long long port = 0;
    if (colon == std::string::npos ||
        !ParseFlagInt("--connect port", connect.c_str() + colon + 1, 1,
                      65535, &port)) {
      return Usage(argv[0]);
    }
    Result<server::Client> connected = server::Client::Connect(
        connect.substr(0, colon), static_cast<uint16_t>(port));
    if (!connected.ok()) {
      fprintf(stderr, "cannot connect to '%s': %s\n", connect.c_str(),
              connected.error().message().c_str());
      return 1;
    }
    server::Client client = std::move(connected).value();
    Result<bool> hello = client.Hello(tenant);
    if (!hello.ok()) {
      fprintf(stderr, "HELLO failed: %s\n", hello.error().message().c_str());
      return 1;
    }
    size_t ok = 0, failed = 0, shed = 0, index = 0;
    const auto start = std::chrono::steady_clock::now();
    for (size_t round = 0; round < repeat; ++round) {
      for (const BatchLine& entry : lines) {
        Result<server::DoneStatus> done =
            entry.is_mutation
                ? client.Mutate({entry.op.ToString()})
                : client.Query(entry.request.text,
                               ToClientOptions(entry.request),
                               [&](std::string_view chunk) {
                                 if (!quiet) {
                                   fwrite(chunk.data(), 1, chunk.size(),
                                          stdout);
                                 }
                                 return true;
                               });
        if (!done.ok()) {
          fprintf(stderr, "connection lost at request %zu: %s\n", index,
                  done.error().message().c_str());
          return 1;
        }
        const server::DoneStatus& status = done.value();
        if (status.ok) {
          ++ok;
          if (!quiet && !entry.is_mutation) {
            printf("[%zu] -> %llu rows%s (%llu us)\n", index,
                   static_cast<unsigned long long>(status.num_rows),
                   status.truncated ? " (truncated)" : "",
                   static_cast<unsigned long long>(status.latency_us));
          }
        } else {
          ++failed;
          if (status.code == ErrorCode::kOverloaded) ++shed;
          if (!quiet) {
            printf("[%zu] -> error [%s]: %s\n", index,
                   ErrorCodeName(status.code), status.message.c_str());
          }
        }
        ++index;
      }
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    printf("\n%zu requests (%zu ok, %zu failed, %zu shed) in %.3fs over "
           "'%s'\n",
           index, ok, failed, shed, secs, connect.c_str());
    Result<std::string> stats = client.Stats();
    if (stats.ok()) printf("\n%s", stats.value().c_str());
    return failed == 0 ? 0 : 1;
  }

  QueryEngine::Options options;
  options.num_threads = threads;
  options.governor.admission_capacity = capacity;
  options.durability.dir = persist_dir;
  options.durability.fsync = !no_fsync;
  options.durability.group_commit_window_ms =
      group_commit_ms > 0 ? static_cast<uint32_t>(group_commit_ms) : 0;
  Result<std::unique_ptr<QueryEngine>> opened =
      QueryEngine::RecoverFrom(std::move(graph), std::move(options));
  if (!opened.ok()) {
    fprintf(stderr, "cannot open engine [%s]: %s\n",
            ErrorCodeName(opened.error().code()),
            opened.error().message().c_str());
    return 1;
  }
  std::unique_ptr<QueryEngine> engine_ptr = std::move(opened).value();
  QueryEngine& engine = *engine_ptr;
  if (!persist_dir.empty()) {
    const storage::RecoveryInfo& info = engine.recovery_info();
    if (info.recovered) {
      fprintf(stderr,
              "recovered from '%s': checkpoint lsn %llu%s, %llu batches "
              "(%llu ops) replayed, last lsn %llu\n",
              persist_dir.c_str(),
              static_cast<unsigned long long>(info.checkpoint_lsn),
              info.mapped ? " (mapped)" : "",
              static_cast<unsigned long long>(info.batches_replayed),
              static_cast<unsigned long long>(info.ops_replayed),
              static_cast<unsigned long long>(info.last_lsn));
    } else {
      fprintf(stderr, "initialized durable directory '%s'\n",
              persist_dir.c_str());
    }
    if (!info.warning.empty()) {
      fprintf(stderr, "recovery warning: %s\n", info.warning.c_str());
    }
  }

  // Submission pass: queries fan out to the pool; mutation lines apply
  // synchronously at their position, so writes land between the reads that
  // surround them in the file (in-flight reads keep their pinned view).
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<QueryResponse>>> futures;
  std::vector<const QueryRequest*> submitted;  // parallel to `futures`
  size_t mut_ok = 0, mut_failed = 0, mut_shed = 0;
  size_t plans_invalidated = 0, compactions_scheduled = 0;
  for (size_t round = 0; round < repeat; ++round) {
    for (const BatchLine& entry : lines) {
      if (!entry.is_mutation) {
        submitted.push_back(&entry.request);
        futures.push_back(engine.Submit(entry.request));
        continue;
      }
      MutationBatch batch;
      batch.ops.push_back(entry.op);
      Result<QueryEngine::MutationResult> r = engine.ApplyMutation(batch);
      if (r.ok()) {
        ++mut_ok;
        plans_invalidated += r.value().plans_invalidated;
        compactions_scheduled += r.value().compaction_scheduled ? 1 : 0;
      } else {
        ++mut_failed;
        if (r.error().code() == ErrorCode::kOverloaded) ++mut_shed;
        if (!quiet) {
          printf("[write] %s -> error [%s]: %s\n", entry.op.ToString().c_str(),
                 ErrorCodeName(r.error().code()),
                 r.error().message().c_str());
        }
      }
    }
  }

  size_t ok = 0, failed = 0, shed = 0;
  // Per-case failure records for the exit summary: a non-OK status must be
  // visible (and the exit code nonzero) even under --quiet.
  struct FailedCase {
    size_t index;
    ErrorCode code;
    std::string query;
    std::string message;
  };
  std::vector<FailedCase> failures;
  std::map<ErrorCode, size_t> failures_by_code;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<QueryResponse> r = futures[i].get();
    const QueryRequest& request = *submitted[i];
    if (!r.ok() && r.error().code() == ErrorCode::kOverloaded) ++shed;
    if (!r.ok()) {
      failures.push_back({i, r.error().code(),
                          std::string(QueryLanguageName(request.language)) +
                              " " + request.text,
                          r.error().message()});
      ++failures_by_code[r.error().code()];
    }
    if (r.ok()) {
      ++ok;
      if (explain && !quiet) {
        printf("[%zu] %s %s%s\n%s", i, QueryLanguageName(request.language),
               request.text.c_str(), r.value().cache_hit ? " [cached]" : "",
               r.value().text.c_str());
      } else if (!quiet) {
        printf("[%zu] %s %s -> %zu rows%s%s (%lldus)\n", i,
               QueryLanguageName(request.language), request.text.c_str(),
               r.value().num_rows, r.value().truncated ? " (truncated)" : "",
               r.value().cache_hit ? " [cached]" : "",
               static_cast<long long>(r.value().latency.count()));
      }
    } else {
      ++failed;
      if (!quiet) {
        printf("[%zu] %s %s -> error [%s]: %s\n", i,
               QueryLanguageName(request.language), request.text.c_str(),
               ErrorCodeName(r.error().code()),
               r.error().message().c_str());
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  printf("\n%zu queries (%zu ok, %zu failed, %zu shed) in %.3fs  =  "
         "%.0f queries/sec  [%zu threads]\n",
         futures.size(), ok, failed, shed, secs,
         secs > 0 ? static_cast<double>(futures.size()) / secs : 0.0,
         engine.num_threads());
  if (mut_ok + mut_failed > 0) {
    printf("%zu writes (%zu ok, %zu failed, %zu shed); "
           "%zu plans invalidated, %zu compactions scheduled\n",
           mut_ok + mut_failed, mut_ok, mut_failed, mut_shed,
           plans_invalidated, compactions_scheduled);
  }
  printf("\n%s", engine.StatsReport().c_str());

  if (!failures.empty()) {
    printf("\nFAILED: %zu of %zu queries returned a non-OK status\n",
           failures.size(), futures.size());
    for (const auto& [code, count] : failures_by_code) {
      printf("  %-20s %zu\n", ErrorCodeName(code), count);
    }
    for (const FailedCase& f : failures) {
      printf("  [%zu] %s -> [%s] %s\n", f.index, f.query.c_str(),
             ErrorCodeName(f.code), f.message.c_str());
    }
  }
  return failed == 0 && mut_failed == 0 ? 0 : 1;
}
