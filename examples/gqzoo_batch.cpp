// gqzoo_batch: run a file of queries through the QueryEngine on a thread
// pool and print a metrics report — the non-interactive counterpart of
// gqzoo_shell, useful for load tests and for exercising the plan cache.
//
// Usage:  gqzoo_batch [options] <request-file>
//   --graph <file>     property graph to load (default: Figure 3 graph)
//   --threads <n>      pool size (default 4)
//   --timeout-ms <n>   per-query deadline (default: none)
//   --memlimit <n>     per-query memory budget in bytes (default: none)
//   --row-budget <n>   per-query result-row budget (default: none)
//   --step-budget <n>  per-query step/fuel budget (default: none)
//   --capacity <n>     admission-control queue depth; submissions beyond it
//                      are shed with OVERLOADED (default 256, 0 = unbounded)
//   --repeat <n>       run the request file n times (default 1; repeats
//                      after the first are plan-cache hits)
//   --explain          render each query's plan (conjunct join order +
//                      cardinality estimates) instead of executing it
//   --textual-order    evaluate conjuncts in textual order, ignoring the
//                      planner (for differential runs / benchmarks)
//   --quiet            suppress per-query output, print only the report
//
// Request-file format: one query per line, same surface as the shell.
//   # comment / blank lines are skipped
//   rpq <regex>              2rpq <regex>
//   paths <from> <to> <all|shortest|simple|trail> <regex>
//   kshortest <k> <from> <to> <regex>
//   crpq <rule>              dlcrpq <rule>
//   gql <query>              gqlopt <query>
//   gqlgroup <pattern>       regular <rules>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/graph_io.h"

using namespace gqzoo;

namespace {

std::string Trim(const std::string& s) {
  size_t start = s.find_first_not_of(" \t");
  if (start == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

/// Parses one request line (shell query syntax). Returns false with
/// `*error` set on a malformed line.
bool ParseRequestLine(const std::string& line, QueryRequest* out,
                      std::string* error) {
  std::istringstream iss(line);
  std::string command;
  iss >> command;
  std::string rest;
  std::getline(iss, rest);
  rest = Trim(rest);

  QueryRequest request;
  if (command == "rpq" || command == "2rpq") {
    request.language = QueryLanguage::kRpq;
    request.text = rest;
  } else if (command == "crpq") {
    request.language = QueryLanguage::kCrpq;
    request.text = rest;
  } else if (command == "dlcrpq") {
    request.language = QueryLanguage::kDlCrpq;
    request.text = rest;
  } else if (command == "gql" || command == "gqlopt") {
    request.language = QueryLanguage::kCoreGql;
    request.text = rest;
    request.optimize = command == "gqlopt";
  } else if (command == "gqlgroup") {
    request.language = QueryLanguage::kGqlGroup;
    request.text = rest;
  } else if (command == "regular") {
    request.language = QueryLanguage::kRegular;
    request.text = rest;
  } else if (command == "paths") {
    std::istringstream args(rest);
    std::string from, to, mode_name;
    if (!(args >> from >> to >> mode_name)) {
      *error = "paths needs: <from> <to> <mode> <regex>";
      return false;
    }
    std::string regex;
    std::getline(args, regex);
    request.language = QueryLanguage::kPaths;
    request.text = Trim(regex);
    request.paths.from = from;
    request.paths.to = to;
    request.paths.mode = mode_name == "shortest" ? PathMode::kShortest
                         : mode_name == "simple" ? PathMode::kSimple
                         : mode_name == "trail"  ? PathMode::kTrail
                                                 : PathMode::kAll;
  } else if (command == "kshortest") {
    std::istringstream args(rest);
    size_t k = 0;
    std::string from, to;
    if (!(args >> k >> from >> to) || k == 0) {
      *error = "kshortest needs: <k> <from> <to> <regex>";
      return false;
    }
    std::string regex;
    std::getline(args, regex);
    request.language = QueryLanguage::kPaths;
    request.text = Trim(regex);
    request.paths.from = from;
    request.paths.to = to;
    request.paths.k_shortest = k;
  } else {
    *error = "unknown query command '" + command + "'";
    return false;
  }
  *out = std::move(request);
  return true;
}

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--graph <file>] [--threads <n>] [--timeout-ms <n>] "
          "[--memlimit <n>] [--row-budget <n>] [--step-budget <n>] "
          "[--capacity <n>] [--repeat <n>] [--explain] [--textual-order] "
          "[--quiet] <request-file>\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_file;
  std::string request_file;
  size_t threads = 4;
  long long timeout_ms = 0;
  long long memlimit = 0;
  long long row_budget = 0;
  long long step_budget = 0;
  size_t capacity = 256;
  size_t repeat = 1;
  bool explain = false;
  bool textual_order = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (strcmp(arg, "--graph") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      graph_file = v;
    } else if (strcmp(arg, "--threads") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = static_cast<size_t>(atoll(v));
    } else if (strcmp(arg, "--timeout-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      timeout_ms = atoll(v);
    } else if (strcmp(arg, "--memlimit") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      memlimit = atoll(v);
    } else if (strcmp(arg, "--row-budget") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      row_budget = atoll(v);
    } else if (strcmp(arg, "--step-budget") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      step_budget = atoll(v);
    } else if (strcmp(arg, "--capacity") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      capacity = static_cast<size_t>(atoll(v));
    } else if (strcmp(arg, "--repeat") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      repeat = static_cast<size_t>(atoll(v));
    } else if (strcmp(arg, "--explain") == 0) {
      explain = true;
    } else if (strcmp(arg, "--textual-order") == 0) {
      textual_order = true;
    } else if (strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else if (request_file.empty()) {
      request_file = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (request_file.empty() || threads == 0 || repeat == 0) {
    return Usage(argv[0]);
  }

  PropertyGraph graph = Figure3Graph();
  if (!graph_file.empty()) {
    std::ifstream in(graph_file);
    if (!in) {
      fprintf(stderr, "cannot open graph '%s'\n", graph_file.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<PropertyGraph> g = ParsePropertyGraph(buffer.str());
    if (!g.ok()) {
      fprintf(stderr, "graph parse error: %s\n", g.error().message().c_str());
      return 1;
    }
    graph = std::move(g).value();
  }

  std::ifstream in(request_file);
  if (!in) {
    fprintf(stderr, "cannot open requests '%s'\n", request_file.c_str());
    return 1;
  }
  std::vector<QueryRequest> requests;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    QueryRequest request;
    std::string error;
    if (!ParseRequestLine(line, &request, &error)) {
      fprintf(stderr, "%s:%zu: %s\n", request_file.c_str(), lineno,
              error.c_str());
      return 1;
    }
    if (timeout_ms > 0) request.timeout = std::chrono::milliseconds(timeout_ms);
    if (memlimit > 0) request.memory_budget = static_cast<uint64_t>(memlimit);
    if (row_budget > 0) request.row_budget = static_cast<uint64_t>(row_budget);
    if (step_budget > 0) {
      request.step_budget = static_cast<uint64_t>(step_budget);
    }
    request.explain = explain;
    request.textual_join_order = textual_order;
    requests.push_back(std::move(request));
  }
  if (requests.empty()) {
    fprintf(stderr, "no requests in '%s'\n", request_file.c_str());
    return 1;
  }

  QueryEngine::Options options;
  options.num_threads = threads;
  options.governor.admission_capacity = capacity;
  QueryEngine engine(std::move(graph), options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<QueryResponse>>> futures;
  futures.reserve(requests.size() * repeat);
  for (size_t round = 0; round < repeat; ++round) {
    for (const QueryRequest& request : requests) {
      futures.push_back(engine.Submit(request));
    }
  }

  size_t ok = 0, failed = 0, shed = 0;
  // Per-case failure records for the exit summary: a non-OK status must be
  // visible (and the exit code nonzero) even under --quiet.
  struct FailedCase {
    size_t index;
    ErrorCode code;
    std::string query;
    std::string message;
  };
  std::vector<FailedCase> failures;
  std::map<ErrorCode, size_t> failures_by_code;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<QueryResponse> r = futures[i].get();
    const QueryRequest& request = requests[i % requests.size()];
    if (!r.ok() && r.error().code() == ErrorCode::kOverloaded) ++shed;
    if (!r.ok()) {
      failures.push_back({i, r.error().code(),
                          std::string(QueryLanguageName(request.language)) +
                              " " + request.text,
                          r.error().message()});
      ++failures_by_code[r.error().code()];
    }
    if (r.ok()) {
      ++ok;
      if (explain && !quiet) {
        printf("[%zu] %s %s%s\n%s", i, QueryLanguageName(request.language),
               request.text.c_str(), r.value().cache_hit ? " [cached]" : "",
               r.value().text.c_str());
      } else if (!quiet) {
        printf("[%zu] %s %s -> %zu rows%s%s (%lldus)\n", i,
               QueryLanguageName(request.language), request.text.c_str(),
               r.value().num_rows, r.value().truncated ? " (truncated)" : "",
               r.value().cache_hit ? " [cached]" : "",
               static_cast<long long>(r.value().latency.count()));
      }
    } else {
      ++failed;
      if (!quiet) {
        printf("[%zu] %s %s -> error [%s]: %s\n", i,
               QueryLanguageName(request.language), request.text.c_str(),
               ErrorCodeName(r.error().code()),
               r.error().message().c_str());
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  printf("\n%zu queries (%zu ok, %zu failed, %zu shed) in %.3fs  =  "
         "%.0f queries/sec  [%zu threads]\n\n",
         futures.size(), ok, failed, shed, secs,
         secs > 0 ? static_cast<double>(futures.size()) / secs : 0.0,
         engine.num_threads());
  printf("%s", engine.StatsReport().c_str());

  if (!failures.empty()) {
    printf("\nFAILED: %zu of %zu queries returned a non-OK status\n",
           failures.size(), futures.size());
    for (const auto& [code, count] : failures_by_code) {
      printf("  %-20s %zu\n", ErrorCodeName(code), count);
    }
    for (const FailedCase& f : failures) {
      printf("  [%zu] %s -> [%s] %s\n", f.index, f.query.c_str(),
             ErrorCodeName(f.code), f.message.c_str());
    }
  }
  return failed == 0 ? 0 : 1;
}
