// Travel itineraries: the increasing-values-on-edges problem of Example 3
// and Section 5.2, in its natural habitat. Cities are nodes; flights are
// edges with a `day` property. A valid itinerary takes flights on strictly
// increasing days. The paper's point: this is easy for node properties but
// needs either symmetric dl-RPQs, an EXCEPT workaround, or reduce — we run
// all three and check they agree.

#include <cstdio>
#include <random>
#include <set>

#include "src/coregql/query.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/graph.h"
#include "src/lists/list_functions.h"
#include "src/regex/parser.h"

using namespace gqzoo;

namespace {

PropertyGraph BuildFlights() {
  PropertyGraph g;
  const char* cities[] = {"PAR", "BAY", "WAW", "JER", "SCL", "BER"};
  for (const char* c : cities) g.AddNode(c, "City");
  struct Flight {
    const char* from;
    const char* to;
    int64_t day;
  };
  const Flight flights[] = {
      {"PAR", "BAY", 1}, {"BAY", "WAW", 3}, {"WAW", "JER", 5},
      {"JER", "SCL", 8}, {"PAR", "WAW", 4}, {"WAW", "SCL", 2},
      {"BAY", "JER", 2}, {"JER", "BER", 9}, {"SCL", "BER", 12},
      {"PAR", "JER", 7}, {"BER", "SCL", 6},
  };
  for (const Flight& f : flights) {
    EdgeId e = g.AddEdge(*g.FindNode(f.from), *g.FindNode(f.to), "flight");
    g.SetProperty(ObjectRef::Edge(e), "day", Value(f.day));
  }
  return g;
}

}  // namespace

int main() {
  PropertyGraph g = BuildFlights();
  NodeId par = *g.FindNode("PAR");
  NodeId ber = *g.FindNode("BER");
  printf("Flight network: %zu cities, %zu flights. Itineraries PAR -> BER "
         "with strictly increasing days:\n\n",
         g.NumNodes(), g.NumEdges());

  // --- (a) The dl-RPQ way (Example 21, edge version) ---------------------
  DlNfa dl = DlNfa::FromRegex(
      *ParseRegex("()[flight^z][x := day]"
                  "( (_)[flight^z][day > x][x := day] )*()",
                  RegexDialect::kDl)
           .ValueOrDie(),
      g);
  DlEvaluator evaluator(g, dl);
  EnumerationLimits limits;
  limits.max_length = 6;
  std::set<Path> dl_paths;
  printf("(a) dl-RPQ (register automaton, one pass):\n");
  for (const PathBinding& pb :
       evaluator.CollectModePaths(par, ber, PathMode::kAll, limits)) {
    printf("    %s\n", pb.path.ToString(g.skeleton()).c_str());
    dl_paths.insert(pb.path);
  }

  // --- (b) The GQL workaround: all paths EXCEPT violating ones -----------
  CoreQueryEvalOptions options;
  options.path_options.max_path_length = 6;
  CoreQueryResult except = RunCoreGql(
                               g,
                               "MATCH p = (s) ->+ (t) RETURN p "
                               "EXCEPT "
                               "MATCH p = (s) ->* "
                               "( ( ()-[u]->()-[v]->() ) WHERE u.day >= v.day )"
                               " ->* (t) RETURN p",
                               options)
                               .ValueOrDie();
  std::set<Path> except_paths;
  for (const auto& row : except.relation.rows()) {
    const Path& p = std::get<Path>(row[0]);
    if (p.Src(g.skeleton()) == par && p.Tgt(g.skeleton()) == ber) {
      except_paths.insert(p);
    }
  }
  printf("\n(b) EXCEPT workaround found %zu PAR->BER itineraries "
         "(computed %zu paths overall to get them).\n",
         except_paths.size(), except.relation.NumRows());

  // --- (c) The Cypher list/reduce workaround ------------------------------
  auto ge0 = [](const Value& v) { return v.is_numeric() && v.ToDouble() >= 0; };
  std::vector<Path> reduce_paths = PathsWithReducePredicate(
      g, par, ber, Value(0), PropertyIota(g, "day"), IncreasingStep(g, "day"),
      ge0, {.max_path_length = 6});
  // Drop the zero-flight path (reduce over an empty edge list is ε = 0).
  std::set<Path> reduce_set;
  for (const Path& p : reduce_paths) {
    if (p.Length() > 0) reduce_set.insert(p);
  }
  printf("(c) reduce workaround found %zu itineraries.\n\n",
         reduce_set.size());

  printf("agreement: dl == except: %s, dl == reduce: %s\n",
         dl_paths == except_paths ? "yes" : "NO",
         dl_paths == reduce_set ? "yes" : "NO");

  // Node-property contrast (Example 3): increasing values on *nodes* is
  // a one-liner in plain GQL-style patterns.
  PropertyGraph hubs = BuildFlights();
  for (NodeId n = 0; n < hubs.NumNodes(); ++n) {
    hubs.SetProperty(ObjectRef::Node(n), "tier", Value(static_cast<int64_t>(n)));
  }
  CoreQueryResult node_inc =
      RunCoreGql(hubs,
                 "MATCH (x) ( ((u)->(v)) WHERE u.tier < v.tier )* (y) "
                 "RETURN x, y")
          .ValueOrDie();
  printf("\n(Example 3 contrast) node-increasing pattern answers: %zu — "
         "a single WHERE inside the star suffices for nodes.\n",
         node_inc.relation.NumRows());
  return 0;
}
