// CoreGQL analytics: Section 4's pattern-to-relation pipeline on an
// account graph — the example query of Section 4.1.3,
//     π_{x, x.s}(σ_{x1 ≠ x2 ∧ x1.p = x2.p}(R^{π1}_{Ω1} ⋈ R^{π2}_{Ω2})),
// plus set operations between MATCH blocks and a path-returning block.

#include <cstdio>

#include "src/coregql/algebra.h"
#include "src/coregql/query.h"
#include "src/graph/graph.h"

using namespace gqzoo;

namespace {

// Accounts with a `segment` (s) and devices with a `fingerprint` (p):
// two devices used by one account sharing a fingerprint is a signal.
PropertyGraph BuildAccountGraph() {
  PropertyGraph g;
  struct Account {
    const char* name;
    const char* segment;
  };
  for (const Account& a : {Account{"alice", "retail"},
                           Account{"bob", "retail"},
                           Account{"carol", "corporate"}}) {
    NodeId n = g.AddNode(a.name, "Account");
    g.SetProperty(ObjectRef::Node(n), "s", Value(a.segment));
  }
  struct Device {
    const char* name;
    int64_t fingerprint;
  };
  for (const Device& d : {Device{"d1", 7}, Device{"d2", 7}, Device{"d3", 9},
                          Device{"d4", 5}}) {
    NodeId n = g.AddNode(d.name, "Device");
    g.SetProperty(ObjectRef::Node(n), "p", Value(d.fingerprint));
  }
  auto edge = [&](const char* a, const char* d) {
    g.AddEdge(*g.FindNode(a), *g.FindNode(d), "uses");
  };
  edge("alice", "d1");
  edge("alice", "d2");  // alice uses two devices with fingerprint 7
  edge("bob", "d2");
  edge("bob", "d3");
  edge("carol", "d4");
  return g;
}

}  // namespace

int main() {
  PropertyGraph g = BuildAccountGraph();

  // The paper's query: accounts connected to two *different* devices with
  // the same fingerprint, returning the account and its segment. The
  // x1 ≠ x2 selection happens in the algebra layer, exactly as in the
  // paper's relational-algebra expression.
  CoreQueryResult matched =
      RunCoreGql(g,
                 "MATCH (x:Account)-[:uses]->(x1:Device), "
                 "      (x)-[:uses]->(x2:Device) "
                 "WHERE x1.p = x2.p RETURN x, x.s, x1, x2")
          .ValueOrDie();
  const CoreRelation& rel = matched.relation;
  size_t i1 = rel.AttrIndex("x1");
  size_t i2 = rel.AttrIndex("x2");
  CoreRelation distinct = Select(rel, [&](const std::vector<CoreCell>& row) {
    return !(row[i1] == row[i2]);
  });
  CoreRelation out = Project(distinct, {"x", "x.s"}).ValueOrDie();
  printf("Section 4.1.3 query — shared-fingerprint accounts:\n%s\n",
         out.ToString(g.skeleton()).c_str());

  // Set operations between blocks: retail accounts that are NOT flagged.
  CoreRelation flagged = Project(distinct, {"x"}).ValueOrDie();
  CoreQueryResult retail =
      RunCoreGql(g, "MATCH (x:Account) WHERE x.s = 'retail' RETURN x")
          .ValueOrDie();
  CoreRelation clean =
      DifferenceRel(retail.relation, flagged).ValueOrDie();
  printf("retail and not flagged:\n%s\n",
         clean.ToString(g.skeleton()).c_str());

  // A path-returning block (the Section 5.2 extension): device-sharing
  // chains between accounts.
  CoreQueryResult chains =
      RunCoreGql(g,
                 "MATCH p = (a:Account) (-[:uses]-> ()){1,2} RETURN p")
          .ValueOrDie();
  printf("uses-chains (paths as first-class outputs):\n%s",
         chains.relation.ToString(g.skeleton()).c_str());
  return 0;
}
